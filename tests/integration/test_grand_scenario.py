"""Grand scenario: the entire platform lifecycle in one narrative test.

charter -> newsroom -> facts -> publishing (text + media) -> cascade on
chain -> botnet planted and detected -> votes -> ranking -> promotion ->
conduct enforcement -> experts -> analytics -> audit -> proofs.

Every stage asserts invariants; the final section audits the whole
ledger.  This is the closest thing to "running the paper".
"""

import random

import numpy as np
import pytest

from repro.core import (
    TrustingNewsPlatform,
    account_report,
    bot_scores,
    detect_bot_rings,
    topic_statistics,
)
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.errors import ContractError
from repro.ml import capture_signal, tamper_signal
from repro.social import (
    CascadeRunner,
    bind_agents,
    interconnect,
    make_botnet,
    make_population,
    scale_free_follow_graph,
)


@pytest.fixture(scope="module")
def grand():
    platform = TrustingNewsPlatform(seed=7777)
    gen = CorpusGenerator(seed=7777)
    rng = random.Random(7777)
    np_rng = np.random.default_rng(7777)

    # --- governance: chartered platform -----------------------------------
    platform.register_participant("founder", role="publisher")
    for index in range(3):
        platform.register_participant(f"board-{index}", role="checker")
        # board members double as conduct adjudicators later
    platform.petition_platform("founder", "the-ledger", "charter text", quorum=3)
    for index in range(3):
        platform.review_petition(f"board-{index}", "the-ledger", approve=True)
    assert platform.finalize_petition("the-ledger") == "approved"
    platform.create_distribution_platform("founder", "the-ledger")
    platform.create_news_room("founder", "the-ledger", "desk", "elections")

    # --- ground truth + publishing (text + media) --------------------------
    fact = gen.factual(topic="elections")
    platform.seed_fact("cert-1", fact.text, "election-board", "elections")
    platform.register_participant("reporter", role="journalist")
    platform.authenticate_journalist("the-ledger", "reporter")
    signal = capture_signal(np_rng)
    platform.register_media("reporter", "clip-1", signal, "count footage")
    report = relay(fact, "reporter", 1.0)
    published = platform.publish_article(
        "reporter", "the-ledger", "desk", "story-1", report.text, "elections",
        media=[("clip-1", signal)],
    )
    tampered, _ = tamper_signal(signal, np_rng, n_segments=6)
    platform.register_participant("hack", role="journalist")
    platform.authenticate_journalist("the-ledger", "hack")
    fake = gen.insertion_fake(report, "hack", 2.0, n_insertions=4)
    platform.publish_article(
        "hack", "the-ledger", "desk", "story-2", fake.text, "elections",
        media=[("clip-1", tampered)],
    )

    # --- social cascade with a planted farm, recorded on-chain -------------
    graph = scale_free_follow_graph(250, seed=7778)
    agents = make_population(250, rng, bot_fraction=0.0)
    bind_agents(graph, agents)
    farm = make_botnet(agents, size=6, rng=rng, ring_id="farm")
    interconnect(graph, farm)
    runner = CascadeRunner(
        graph, CorpusGenerator(seed=7779),
        on_share=lambda event, article: platform.ingest_share(event, article, "elections"),
    )
    seed_share = runner.corpus.relay_derivation(fake, farm[0].agent_id, 0.0)

    class _Seed:
        agent_id = farm[0].agent_id
        parent_article_id = "story-2"
        op = "relay"

    platform.ingest_share(_Seed(), seed_share, "elections")
    start = next(n for n, a in graph.nodes(data=True) if a["agent"] is farm[0])
    cascade = runner.run([(start, seed_share)], n_rounds=7)

    # --- crowd verdicts -----------------------------------------------------
    for index in range(3):
        platform.cast_vote(f"board-{index}", "story-1", True)
        platform.cast_vote(f"board-{index}", "story-2", False)
    return platform, cascade, farm, agents, published


def test_rankings_and_promotion(grand):
    platform, *_ = grand
    good = platform.rank_article("story-1")
    bad = platform.rank_article("story-2")
    assert good.score > 0.85 > bad.score
    platform.promote_to_factual("story-1", fact_id="promoted-story-1")
    assert "promoted-story-1" in platform.facts()
    from repro.errors import PlatformError

    with pytest.raises(PlatformError):
        platform.promote_to_factual("story-2")


def test_cascade_recorded_and_traceable(grand):
    platform, cascade, *_ = grand
    assert cascade.events, "cascade must have propagated"
    graph = platform.graph
    for event in cascade.events:
        assert event.article_id in graph
    leaf = cascade.events[-1].article_id
    trace = platform.trace(leaf)
    assert trace.traceable and trace.root == "fact:cert-1"


def test_farm_detected_from_ledger(grand):
    platform, cascade, farm, agents, _ = grand
    rings = detect_bot_rings(cascade.events)
    detected = set().union(*rings) if rings else set()
    planted = {agent.agent_id for agent in farm}
    assert len(detected & planted) >= len(planted) - 1
    scores = bot_scores(cascade.events)
    for agent_id in detected & planted:
        assert scores[agent_id] > 0.6


def test_conduct_suspension_end_to_end(grand):
    platform, *_ = grand
    hack_address = platform.address_of("hack")
    for index in range(3):
        platform.chain.invoke(
            platform.account("board-0"), "conduct", "file_report",
            {"report_id": f"grand-r{index}", "accused": hack_address,
             "article_id": "story-2", "category": "fake-news", "stake": 1.0},
        )
        platform.chain.invoke(
            platform.governance, "conduct", "adjudicate",
            {"report_id": f"grand-r{index}", "upheld": True},
        )
    with pytest.raises(ContractError, match="suspended"):
        platform.publish_article("hack", "the-ledger", "desk", "story-3",
                                 "more fabrications", "elections")


def test_analytics_and_expert_views(grand):
    platform, cascade, farm, agents, _ = grand
    stats = {s.topic: s for s in topic_statistics(platform.graph)}
    assert stats["elections"].articles > 10
    assert 0 < stats["elections"].traceable_share <= 1.0
    reporter = account_report(platform.graph, platform.address_of("reporter"))
    assert reporter.articles == 1 and reporter.mean_provenance > 0.9
    hack = account_report(platform.graph, platform.address_of("hack"))
    assert hack.mean_modification > reporter.mean_modification


def test_audit_and_proofs(grand):
    platform, *_ = grand
    audit = platform.export_audit("story-2")
    assert audit["accountable_author"] == platform.address_of("hack")
    assert len(audit["votes"]) == 3
    proof = platform.prove_article("story-2")
    assert proof["verified"] is True
    # Tampering with the proof must fail verification.
    assert not proof["proof"].verify("0" * 64)


def test_whole_ledger_audits_clean(grand):
    platform, *_ = grand
    assert platform.chain.ledger.verify_chain()
    stats = platform.stats()
    assert stats["transactions"] == stats["blocks"]  # LocalChain: one tx per block
    assert stats["articles"] >= 3
