"""Factual database seeding/promotion and the newsroom workflow."""

import pytest

from repro.errors import ContractError, PlatformError


@pytest.fixture
def pub_platform(platform):
    platform.register_participant("acme", role="publisher")
    platform.create_distribution_platform("acme", "acme-news")
    platform.create_news_room("acme", "acme-news", "desk", "politics")
    platform.register_participant("journo", role="journalist")
    platform.authenticate_journalist("acme-news", "journo")
    return platform


# -- factual database ---------------------------------------------------------


def test_seed_fact_and_list(platform):
    platform.seed_fact("f-1", "official text one", "senate-record", "politics")
    platform.seed_fact("f-2", "official text two", "senate-record", "health")
    assert platform.facts() == ["f-1", "f-2"]
    assert platform.facts(topic="health") == ["f-2"]


def test_seed_fact_duplicate_rejected(platform):
    platform.seed_fact("f-1", "text", "src", "politics")
    with pytest.raises(ContractError, match="already recorded"):
        platform.chain.invoke(
            platform.governance, "factualdb", "seed_fact",
            {"fact_id": "f-1", "content_hash": "x", "source": "s", "topic": "politics"},
        )


def test_seed_requires_verified_identity(platform):
    rogue = platform.chain.new_account()
    with pytest.raises(ContractError, match="verified"):
        platform.chain.invoke(
            rogue, "factualdb", "seed_fact",
            {"fact_id": "f-9", "content_hash": "x", "source": "s", "topic": "politics"},
        )


def test_promote_enforces_threshold_on_chain(platform):
    with pytest.raises(ContractError, match="below promotion threshold"):
        platform.chain.invoke(
            platform.governance, "factualdb", "promote",
            {"fact_id": "p-1", "content_hash": "h", "topic": "politics",
             "article_id": "a-x", "score": 0.3},
        )


# -- newsroom workflow -------------------------------------------------------------


def test_platform_requires_publisher_role(platform):
    platform.register_participant("randomer", role="consumer")
    with pytest.raises(ContractError, match="may not found"):
        platform.create_distribution_platform("randomer", "pirate-news")


def test_platform_requires_verified_identity(platform):
    platform.register_participant("ghost", role="publisher", verified=False)
    with pytest.raises(ContractError, match="verified"):
        platform.create_distribution_platform("ghost", "ghost-news")


def test_duplicate_platform_rejected(pub_platform):
    with pytest.raises(ContractError, match="already exists"):
        pub_platform.create_distribution_platform("acme", "acme-news")


def test_room_only_by_owner(pub_platform):
    pub_platform.register_participant("rival", role="publisher")
    with pytest.raises(ContractError, match="owner"):
        pub_platform.chain.invoke(
            pub_platform.account("rival"), "newsroom", "create_room",
            {"platform_name": "acme-news", "room_name": "hijack", "topic": "politics"},
        )


def test_publish_pipeline_states(pub_platform):
    published = pub_platform.publish_article(
        "journo", "acme-news", "desk", "art-1", "the committee approved the bill.", "politics"
    )
    record = pub_platform.chain.query("newsroom", "get_article", {"article_id": "art-1"})
    assert record["state"] == "published"
    assert record["author"] == pub_platform.address_of("journo")
    assert published.receipt.success


def test_unauthenticated_author_cannot_draft(pub_platform):
    pub_platform.register_participant("outsider", role="journalist")
    with pytest.raises(ContractError, match="not authenticated"):
        pub_platform.publish_article(
            "outsider", "acme-news", "desk", "art-2", "text", "politics"
        )


def test_draft_in_unknown_room_rejected(pub_platform):
    with pytest.raises(ContractError, match="no such room"):
        pub_platform.publish_article("journo", "acme-news", "nowhere", "art-3", "text", "politics")


def test_reject_records_reason(pub_platform):
    journo = pub_platform.account("journo")
    chain = pub_platform.chain
    chain.invoke(journo, "newsroom", "submit_draft",
                 {"article_id": "art-4", "platform_name": "acme-news",
                  "room_name": "desk", "content_hash": "h"})
    chain.invoke(journo, "newsroom", "start_review", {"article_id": "art-4"})
    chain.invoke(pub_platform.account("acme"), "newsroom", "reject",
                 {"article_id": "art-4", "reason": "unverifiable sourcing"})
    record = chain.query("newsroom", "get_article", {"article_id": "art-4"})
    assert record["state"] == "rejected"
    events = [e for e in chain.ledger.events(kind="article-rejected")]
    assert events[0]["reason"] == "unverifiable sourcing"


def test_publish_requires_review_state(pub_platform):
    journo = pub_platform.account("journo")
    chain = pub_platform.chain
    chain.invoke(journo, "newsroom", "submit_draft",
                 {"article_id": "art-5", "platform_name": "acme-news",
                  "room_name": "desk", "content_hash": "h"})
    with pytest.raises(ContractError, match="expected 'in_review'"):
        chain.invoke(pub_platform.account("acme"), "newsroom", "publish",
                     {"article_id": "art-5"})


def test_only_author_starts_review(pub_platform):
    journo = pub_platform.account("journo")
    chain = pub_platform.chain
    chain.invoke(journo, "newsroom", "submit_draft",
                 {"article_id": "art-6", "platform_name": "acme-news",
                  "room_name": "desk", "content_hash": "h"})
    with pytest.raises(ContractError, match="only the author"):
        chain.invoke(pub_platform.account("acme"), "newsroom", "start_review",
                     {"article_id": "art-6"})


def test_unknown_platform_raises_platform_error(platform):
    platform.register_participant("solo", role="journalist")
    with pytest.raises(PlatformError):
        platform.publish_article("solo", "missing", "room", "a", "t", "politics")
