"""Crash-recovery benchmark: deep catch-up latency and throughput.

A 4-validator PBFT network loses one replica for 20+ blocks — far
beyond the engine's ``HEIGHT_WINDOW`` round buffer — then brings it
back under lossy links (25% message drop during the recovery phase), in
both comeback modes:

- **pause**   — crash-pause: in-memory state intact, only behind;
- **restart** — crash-restart: mempool/rounds/timers wiped, world state
  replayed from the durable ledger, then the same catch-up.

Reported per scenario: blocks missed, catch-up latency (from the fault
injector's log to the head that existed at comeback), sync throughput
(blocks/s while lagging), and the retry machinery's counters (timeouts,
retries, provider failovers) proving the loss was real and survived.
The victim's fetch batch is shrunk so the gap takes many round-trips —
that is what gives the drop rate something to kill.

Besides the usual ``emit`` table, the run writes a JSON perf record to
``benchmarks/latest_recovery.json`` for machine consumption.

``test_cold_start_recovery`` measures the other half of the story: how
long a single peer takes to get its chain *back* after the process dies.
It populates a durable store with a synthetic chain (dummy signatures —
the cost under test is storage, not Ed25519), then cold-starts two ways:
full log replay (the seed's restart semantics: every record re-decoded,
re-verified, re-applied) versus snapshot+tail (load the newest
world-state snapshot, replay only the records above it).  Both must
recover the byte-identical tip, state digest, and receipt set; at the
largest size the snapshot path must be strictly faster — that gap is the
entire point of shipping snapshots.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import statistics
import time

from benchmarks.conftest import emit
from repro.chain import BlockchainNetwork, DurableStore, InvariantAuditor
from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction, TxReceipt
from repro.crypto.hashing import sha256_hex
from repro.simnet import FailureSchedule, UniformLatency
from repro.simnet.disk import SimDisk

JSON_PATH = pathlib.Path(__file__).parent / "latest_recovery.json"

SEEDS = range(3)
N_TXS = 26
RECOVERY_DROP = 0.25

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
# Chain sizes for the cold-start comparison; the gate (snapshot+tail
# strictly faster) only applies to the largest full-mode size, where the
# replay cost dominates any constant-factor noise.  The 100k size is the
# explorer-scale chain bench_explorer.py queries — restart must stay
# snapshot-bound there too.
COLD_START_SIZES = (100, 400) if _SMOKE else (1_000, 10_000, 100_000)


def _run(mode: str, seed: int) -> dict:
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=UniformLatency(0.01, 0.05), seed=seed,
        view_timeout=4.0, drop_probability=0.0,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)
    schedule = FailureSchedule(network.sim, network.net)
    victim = network.peers[3]
    victim.sync.MAX_BATCH = 4  # many round-trips: give the drop rate targets
    schedule.crash_at(1.0, victim.node_id)
    client = network.client()
    for _ in range(N_TXS):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.run_for(0.8)
    gap = max(p.ledger.height for p in network.peers) - victim.ledger.height
    network.net.drop_probability = RECOVERY_DROP
    comeback = network.sim.now + 0.5
    if mode == "restart":
        schedule.restart_at(comeback, victim.node_id)
    else:
        schedule.recover_at(comeback, victim.node_id)
    network.run_for(90.0)
    network.stop()
    auditor.final_check(failures=schedule.log, sync_window=90.0)

    latencies = [lat for _, lat in auditor.catchup_latencies(schedule.log)]
    metrics = victim.sync.metrics
    synced_blocks = sum(blocks for blocks, _ in metrics.sync_durations)
    synced_time = sum(seconds for _, seconds in metrics.sync_durations)
    return {
        "mode": mode,
        "seed": seed,
        "blocks_missed": gap,
        "drop_probability": RECOVERY_DROP,
        "catchup_latency_s": latencies[0] if latencies else None,
        "sync_blocks_per_s": (synced_blocks / synced_time) if synced_time else None,
        "blocks_synced": metrics.blocks_synced,
        "requests": metrics.requests_sent,
        "timeouts": metrics.timeouts,
        "retries": metrics.retries,
        "provider_failovers": metrics.provider_failovers,
        "restarts": victim.metrics.restarts,
        "final_height": victim.ledger.height,
        "violations": len(auditor.violations),
    }


def _sweep() -> list[dict]:
    return [_run(mode, seed) for mode in ("pause", "restart") for seed in SEEDS]


def test_recovery(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [f"{'mode':>8} {'seed':>4} {'missed':>6} {'latency(s)':>10} "
            f"{'blk/s':>7} {'req':>4} {'t/o':>4} {'retry':>5} {'failover':>8}"]
    for r in results:
        latency = f"{r['catchup_latency_s']:.2f}" if r["catchup_latency_s"] is not None else "-"
        rate = f"{r['sync_blocks_per_s']:.1f}" if r["sync_blocks_per_s"] else "-"
        rows.append(
            f"{r['mode']:>8} {r['seed']:>4} {r['blocks_missed']:>6} {latency:>10} "
            f"{rate:>7} {r['requests']:>4} {r['timeouts']:>4} "
            f"{r['retries']:>5} {r['provider_failovers']:>8}"
        )
    latencies = [r["catchup_latency_s"] for r in results]
    rows.append(
        f"catch-up latency over {len(latencies)} faults: "
        f"p50={statistics.median(latencies):.2f}s max={max(latencies):.2f}s "
        f"at {RECOVERY_DROP:.0%} message drop"
    )
    rows.append("shape: every latency finite (the deep gap always closes), "
                "restart no slower than pause by more than the replay cost, "
                "retries nonzero (the loss was real)")
    emit(benchmark, "Recovery — deep catch-up under message loss", rows)
    JSON_PATH.write_text(json.dumps({"scenarios": results}, indent=2) + "\n",
                         encoding="utf-8")

    for r in results:
        assert r["blocks_missed"] >= 20, r
        assert r["catchup_latency_s"] is not None, f"never caught up: {r}"
        assert r["violations"] == 0, r
        assert r["final_height"] >= r["blocks_missed"]
    # The lossy recovery phase genuinely exercised the retry machinery.
    assert sum(r["timeouts"] + r["retries"] for r in results) > 0
    assert any(r["restarts"] == 1 for r in results if r["mode"] == "restart")


# -- cold-start: full replay vs snapshot+tail -------------------------------


def _bench_tx(nonce: int) -> Transaction:
    """A structurally complete transaction with a dummy signature.

    ``Ledger.append`` verifies block structure (Merkle over tx ids), not
    client signatures, so the cold-start numbers measure the storage
    engine rather than 20k Ed25519 signing operations during setup.
    """
    tx_id = sha256_hex(f"cold-start-tx-{nonce}".encode("utf-8"))
    return Transaction(
        sender="bench-sender", public_key_hex="00", contract="counter",
        method="increment", args={"n": nonce}, nonce=nonce, timestamp=0.0,
        signature_hex="00", tx_id=tx_id,
        write_set={f"counter/{nonce % 97}": nonce},
    )


def _populate_store(n_blocks: int, snapshot_interval: int) -> tuple[SimDisk, dict]:
    """Commit *n_blocks* synthetic blocks through a DurableStore and
    return the disk plus the uninterrupted run's reference state."""
    disk = SimDisk(f"cold-{n_blocks}-{snapshot_interval}", rng=random.Random(1))
    store = DurableStore(disk=disk, snapshot_interval=snapshot_interval)
    ledger, state, receipts = Ledger(), WorldState(), {}
    nonce = 0
    for height in range(1, n_blocks + 1):
        txs = [_bench_tx(nonce), _bench_tx(nonce + 1)]
        nonce += 2
        block = Block.build(height, ledger.head.block_hash, float(height), "p", txs)
        validity = [True] * len(txs)
        ledger.append(block, validity)
        for tx in block.transactions:
            state.apply_write_set(tx.write_set)
            receipts[tx.tx_id] = TxReceipt(
                tx_id=tx.tx_id, block_height=height, success=True,
                return_value=None, events=(), error=None,
            )
        store.on_commit(block, validity, proof=None)
        store.maybe_snapshot(ledger, state, receipts)
    reference = {
        "height": ledger.height,
        "tip": ledger.head.block_hash,
        "state_digest": state.state_digest(),
        "n_receipts": len(receipts),
    }
    return disk, reference


def _cold_start(disk: SimDisk, backend: str, n_blocks: int) -> dict:
    """Time one cold start: a fresh store instance recovering the chain
    purely from the durable disk image."""
    started = time.perf_counter()
    store = DurableStore(disk=disk)
    recovered = store.recover()
    elapsed = time.perf_counter() - started
    report = recovered.report
    assert report.degradations == [], f"clean image degraded: {report.summary()}"
    return {
        "backend": backend,
        "n_blocks": n_blocks,
        "mode": report.mode,
        "recovery_s": elapsed,
        "height": recovered.ledger.height,
        "tip": recovered.ledger.head.block_hash,
        "state_digest": recovered.state.state_digest(),
        "n_receipts": len(recovered.receipts),
        "snapshot_height": report.snapshot_height,
        "tail_records": report.tail_records,
        "log_bytes": disk.size(store.log.name),
    }


def _cold_start_sweep() -> list[dict]:
    results = []
    for n_blocks in COLD_START_SIZES:
        # "memory" reproduces the seed's restart: no snapshots exist, so
        # recovery is a full replay of every record — the disk-backed
        # equivalent of rebuilding world state from the in-memory ledger.
        replay_disk, reference = _populate_store(n_blocks, snapshot_interval=n_blocks + 1)
        # A non-dividing interval so the newest snapshot sits *below* the
        # tip: the timed path is snapshot load + genuine tail replay.
        snap_disk, snap_reference = _populate_store(
            n_blocks, snapshot_interval=max(33, n_blocks // 20 + 7)
        )
        assert reference == snap_reference  # identical synthetic chains
        for backend, disk in (("memory-replay", replay_disk), ("durable-snapshot", snap_disk)):
            result = _cold_start(disk, backend, n_blocks)
            for key in ("height", "tip", "state_digest", "n_receipts"):
                assert result[key] == reference[key], (
                    f"{backend}@{n_blocks}: recovered {key} diverges from the "
                    f"uninterrupted run: {result[key]!r} != {reference[key]!r}"
                )
            results.append(result)
    return results


def test_cold_start_recovery(benchmark):
    results = benchmark.pedantic(_cold_start_sweep, rounds=1, iterations=1)
    rows = [f"{'backend':>16} {'blocks':>7} {'mode':>13} {'snap@':>6} "
            f"{'tail':>5} {'recover(s)':>10}"]
    metrics: dict[str, dict] = {}
    for r in results:
        rows.append(
            f"{r['backend']:>16} {r['n_blocks']:>7} {r['mode']:>13} "
            f"{r['snapshot_height']:>6} {r['tail_records']:>5} {r['recovery_s']:>10.3f}"
        )
        metrics.setdefault(str(r["n_blocks"]), {})[r["backend"]] = {
            "mode": r["mode"],
            "recovery_s": round(r["recovery_s"], 4),
            "tail_records": r["tail_records"],
            "state_digest": r["state_digest"],
        }
    for n_blocks in COLD_START_SIZES:
        pair = {r["backend"]: r for r in results if r["n_blocks"] == n_blocks}
        speedup = pair["memory-replay"]["recovery_s"] / pair["durable-snapshot"]["recovery_s"]
        metrics[str(n_blocks)]["replay_over_snapshot_speedup"] = round(speedup, 2)
        rows.append(f"{n_blocks} blocks: snapshot+tail is {speedup:.1f}x the replay cold start")
    rows.append("shape: identical tip/state/receipts both ways (recovery is "
                "exact), snapshot+tail strictly faster at the largest size")
    emit(benchmark, "Recovery — cold start: full replay vs snapshot+tail", rows,
         metrics=metrics)

    for r in results:
        expected = "full-replay" if r["backend"] == "memory-replay" else "snapshot+tail"
        assert r["mode"] == expected, r
    if not _SMOKE:
        largest = max(COLD_START_SIZES)
        pair = {r["backend"]: r for r in results if r["n_blocks"] == largest}
        assert (pair["durable-snapshot"]["recovery_s"]
                < pair["memory-replay"]["recovery_s"]), (
            f"snapshot+tail not faster at {largest} blocks: {pair}"
        )
