"""Endorsement policies: who must simulate a transaction, and how many
must agree, before it may be ordered.

The platform's two-layer trust design (§V: the distribution platform
vouches for creators, the editing platform for content) maps naturally
onto per-contract endorsement policies — e.g. the factual-database
contract can demand endorsement from a majority of fact-checker peers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.transaction import Transaction
from repro.errors import EndorsementError

__all__ = ["EndorsementPolicy", "check_endorsements"]


@dataclass(frozen=True)
class EndorsementPolicy:
    """Require *required* matching endorsements from *endorsers*.

    An empty ``endorsers`` tuple means "any peer may endorse" (the
    default policy for application contracts in a single-org deployment).
    """

    required: int = 1
    endorsers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.required < 1:
            raise EndorsementError("endorsement policy must require >= 1 endorsement")
        if self.endorsers and self.required > len(self.endorsers):
            raise EndorsementError(
                f"policy requires {self.required} endorsements but only "
                f"{len(self.endorsers)} peers are eligible"
            )

    def eligible(self, peer_id: str) -> bool:
        return not self.endorsers or peer_id in self.endorsers


def check_endorsements(tx: Transaction, policy: EndorsementPolicy) -> None:
    """Validate a transaction's endorsements against *policy*.

    Checks: enough endorsements, each from an eligible distinct peer,
    each signature valid, and every endorsement committing to the same
    read/write-set digest the transaction carries (a divergent digest
    means endorsers simulated different outcomes — the transaction must
    not commit).
    """
    digest = tx.rwset_digest
    seen: set[str] = set()
    valid = 0
    for endorsement in tx.endorsements:
        if endorsement.peer_id in seen:
            continue
        if not policy.eligible(endorsement.peer_id):
            continue
        if endorsement.digest != digest:
            raise EndorsementError(
                f"tx {tx.tx_id[:12]}: endorser {endorsement.peer_id} signed a "
                "different rw-set (non-deterministic execution?)"
            )
        if not endorsement.verify(tx.tx_id):
            raise EndorsementError(
                f"tx {tx.tx_id[:12]}: bad endorsement signature from {endorsement.peer_id}"
            )
        seen.add(endorsement.peer_id)
        valid += 1
    if valid < policy.required:
        raise EndorsementError(
            f"tx {tx.tx_id[:12]}: {valid} valid endorsements, policy requires {policy.required}"
        )
