"""Community identification from propagation structure (§VI).

"The construction of news blockchain supply chain graph as well as the
topic based news rooms is very useful in identifying the
groups/communities persons belong to" — and §VII's personalization
needs those groups to target interventions and "build bridges across
communities".

Inputs are share events (who re-published whose content); the
interaction graph they induce is clustered with greedy modularity, and
*bridge* accounts — those whose interactions span communities — are
surfaced as the natural carriers of cross-group corrections.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
from networkx.algorithms import community as nx_community

from repro.social.cascade import ShareEvent

__all__ = ["interaction_graph", "detect_communities", "find_bridges", "BridgeAccount"]


def interaction_graph(events: list[ShareEvent]) -> nx.Graph:
    """Undirected weighted graph of who-shared-from-whom.

    Edge weight counts interactions; repeated sharing between the same
    pair strengthens their tie, which is what modularity clustering
    keys on.
    """
    graph = nx.Graph()
    for event in events:
        a, b = event.source_agent_id, event.agent_id
        if a == b:
            continue
        if graph.has_edge(a, b):
            graph[a][b]["weight"] += 1
        else:
            graph.add_edge(a, b, weight=1)
    return graph


def detect_communities(graph: nx.Graph, max_communities: int | None = None) -> dict[str, int]:
    """Assign each account a community index by greedy modularity.

    Deterministic for a given graph.  Singletons (accounts with no
    interactions) are absent from the result — they belong to no group.
    """
    if graph.number_of_nodes() == 0:
        return {}
    kwargs = {"weight": "weight"}
    if max_communities is not None:
        kwargs["cutoff"] = kwargs["best_n"] = max_communities
    groups = nx_community.greedy_modularity_communities(graph, **kwargs)
    assignment: dict[str, int] = {}
    # Stable indexing: order communities by (size desc, smallest member).
    ordered = sorted(groups, key=lambda g: (-len(g), min(g)))
    for index, group in enumerate(ordered):
        for node in group:
            assignment[node] = index
    return assignment


@dataclass(frozen=True)
class BridgeAccount:
    """An account whose ties span communities."""

    agent_id: str
    community: int
    cross_ties: int
    total_ties: int

    @property
    def bridge_score(self) -> float:
        return self.cross_ties / self.total_ties if self.total_ties else 0.0


def find_bridges(
    graph: nx.Graph, assignment: dict[str, int], min_cross_ties: int = 1
) -> list[BridgeAccount]:
    """Accounts with ties into other communities, strongest bridges first.

    These are the paper's "bridges across communities/groups" — the
    accounts through which a correction can reach an echo chamber from
    a source it does not reflexively distrust.
    """
    bridges = []
    for node in graph.nodes():
        home = assignment.get(node)
        if home is None:
            continue
        cross = total = 0
        for neighbor in graph.neighbors(node):
            weight = graph[node][neighbor].get("weight", 1)
            total += weight
            if assignment.get(neighbor, home) != home:
                cross += weight
        if cross >= min_cross_ties:
            bridges.append(
                BridgeAccount(agent_id=node, community=home, cross_ties=cross, total_ties=total)
            )
    bridges.sort(key=lambda b: (-b.bridge_score, -b.cross_ties, b.agent_id))
    return bridges
