"""Known-bad SIM corpus — analyzed as if it were a repro.chain module."""

import time
from datetime import datetime
from time import monotonic


def stamp_block() -> float:
    return time.time()  # SIM001


def round_deadline() -> float:
    return monotonic() + 5.0  # SIM001 (aliased via from-import)


def profile_commit() -> float:
    return time.perf_counter()  # SIM001


def block_timestamp() -> str:
    return datetime.now().isoformat()  # SIM002
