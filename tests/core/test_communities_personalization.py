"""Community detection, bridge accounts, personalized correction."""

import random

import pytest

from repro.core import (
    PersonalizedCampaign,
    Receptivity,
    assign_receptivity,
    correction_acceptance,
    detect_communities,
    find_bridges,
    interaction_graph,
)
from repro.social import CascadeRunner, bind_agents, make_population, polarized_follow_graph
from repro.social.cascade import ShareEvent


def _event(src: str, dst: str, index: int = 0) -> ShareEvent:
    return ShareEvent(
        time=0.0, round_index=0, agent_id=dst, source_agent_id=src,
        article_id=f"a-{src}-{dst}-{index}", parent_article_id="root", op="relay",
    )


def test_interaction_graph_weights():
    events = [_event("a", "b", 0), _event("a", "b", 1), _event("b", "c", 0)]
    graph = interaction_graph(events)
    assert graph["a"]["b"]["weight"] == 2
    assert graph["b"]["c"]["weight"] == 1


def test_interaction_graph_ignores_self_shares():
    graph = interaction_graph([_event("a", "a")])
    assert graph.number_of_edges() == 0


def test_detect_communities_two_cliques():
    events = []
    for group, members in enumerate((["a", "b", "c", "d"], ["x", "y", "z", "w"])):
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                events.append(_event(u, v, group))
    events.append(_event("a", "x"))  # one weak cross tie
    assignment = detect_communities(interaction_graph(events))
    assert assignment["a"] == assignment["b"] == assignment["c"] == assignment["d"]
    assert assignment["x"] == assignment["y"] == assignment["z"] == assignment["w"]
    assert assignment["a"] != assignment["x"]


def test_detect_communities_empty():
    import networkx as nx

    assert detect_communities(nx.Graph()) == {}


def test_bridges_found_on_cross_ties():
    events = []
    for group, members in enumerate((["a", "b", "c"], ["x", "y", "z"])):
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                events.append(_event(u, v, group))
    events.append(_event("a", "x", 7))
    graph = interaction_graph(events)
    assignment = detect_communities(graph)
    bridges = find_bridges(graph, assignment)
    bridge_ids = {b.agent_id for b in bridges}
    assert bridge_ids == {"a", "x"}
    assert all(0 < b.bridge_score <= 1 for b in bridges)


def test_cascade_on_polarized_graph_recovers_communities():
    """Structure found from share events should align with the planted
    two-community world far better than chance."""
    rng = random.Random(5)
    graph = polarized_follow_graph(200, p_within=0.06, seed=5)
    agents = make_population(200, rng)
    bind_agents(graph, agents)
    from repro.corpus import CorpusGenerator

    corpus = CorpusGenerator(seed=6)
    hubs = sorted(graph.nodes(), key=lambda n: graph.out_degree(n), reverse=True)[:4]
    seeds = [(hub, corpus.insertion_fake(corpus.factual(), "t", 0.0)) for hub in hubs]
    result = CascadeRunner(graph, corpus).run(seeds, n_rounds=8)
    igraph = interaction_graph(result.events)
    assignment = detect_communities(igraph, max_communities=2)
    if len(assignment) < 30:
        pytest.skip("cascade too small to test alignment")
    by_id = {a.agent_id: a for a in agents}
    agreement = 0
    pairs = 0
    ids = sorted(assignment)
    for i in range(0, len(ids) - 1, 2):
        u, v = ids[i], ids[i + 1]
        same_detected = assignment[u] == assignment[v]
        same_true = by_id[u].community == by_id[v].community
        agreement += int(same_detected == same_true)
        pairs += 1
    assert agreement / pairs > 0.6


# -- personalization ----------------------------------------------------------


def test_acceptance_probabilities_ordering():
    # In-group always >= out-group; evidence helps the sensitive class.
    for receptivity in Receptivity:
        assert correction_acceptance(receptivity, True, 0.8) >= correction_acceptance(
            receptivity, False, 0.8
        )
    weak = correction_acceptance(Receptivity.EVIDENCE_SENSITIVE, True, 0.1)
    strong = correction_acceptance(Receptivity.EVIDENCE_SENSITIVE, True, 0.9)
    assert strong > weak
    assert correction_acceptance(Receptivity.ENTRENCHED, False, 1.0) < 0.05


def test_acceptance_validates_evidence():
    with pytest.raises(ValueError):
        correction_acceptance(Receptivity.OPEN, True, 1.5)


def test_assign_receptivity_fractions():
    rng = random.Random(7)
    agents = make_population(1000, rng)
    classes = assign_receptivity(agents, rng, open_fraction=0.3, evidence_fraction=0.4)
    counts = {r: 0 for r in Receptivity}
    for value in classes.values():
        counts[value] += 1
    assert 250 < counts[Receptivity.OPEN] < 350
    assert 350 < counts[Receptivity.EVIDENCE_SENSITIVE] < 450
    assert 250 < counts[Receptivity.ENTRENCHED] < 360


def test_assign_receptivity_validates():
    with pytest.raises(ValueError):
        assign_receptivity([], random.Random(0), open_fraction=0.7, evidence_fraction=0.5)


def test_personalized_beats_blanket():
    rng = random.Random(9)
    agents = make_population(600, random.Random(10))
    for index, agent in enumerate(agents):
        agent.community = index % 3  # three communities, messengers cover one
    receptivity = assign_receptivity(agents, random.Random(11))
    campaign = PersonalizedCampaign(evidence_strength=0.8)
    blanket = campaign.run(agents, receptivity, messenger_communities={0},
                           rng=random.Random(12), personalize=False)
    personalized = campaign.run(agents, receptivity, messenger_communities={0},
                                rng=random.Random(12), personalize=True)
    assert personalized > blanket


def test_campaign_empty_exposed():
    campaign = PersonalizedCampaign()
    assert campaign.run([], {}, set(), random.Random(0)) == 0.0
