"""A validating peer: mempool + ledger + world state + contracts + consensus.

The peer implements Fabric's *validate* phase at commit time: every
transaction in a decided block is checked for (1) client signature,
(2) endorsement policy, (3) MVCC read-set freshness; only then is its
write set applied.  All peers run the same deterministic checks over the
same block sequence, so their world states stay identical — asserted by
``BlockchainNetwork.assert_convergence`` in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


from repro.chain.consensus.base import ConsensusEngine
from repro.chain.consensus.sharded import ShardedExecutor
from repro.chain.contracts import ContractRegistry, EndorsementPolicy, check_endorsements
from repro.chain.contracts.runtime import ExecutionResult
from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.mempool import Mempool
from repro.chain.state import WorldState
from repro.chain.transaction import Endorsement, Transaction, TxReceipt, rwset_digest
from repro.crypto.keys import KeyPair
from repro.errors import EndorsementError, InvalidTransactionError
from repro.simnet.network import Message, NetworkNode

__all__ = ["Peer", "PeerMetrics"]

_KIND_TX = "tx-gossip"


@dataclass
class PeerMetrics:
    """Per-peer counters the experiments read."""

    txs_committed_valid: int = 0
    txs_committed_invalid: int = 0
    mvcc_conflicts: int = 0
    endorsement_failures: int = 0
    signature_failures: int = 0
    commit_latency_total: float = 0.0
    commit_latency_count: int = 0
    blocks_committed: int = 0
    commit_times: list[float] = field(default_factory=list)

    @property
    def mean_commit_latency(self) -> float:
        if not self.commit_latency_count:
            return 0.0
        return self.commit_latency_total / self.commit_latency_count


class Peer(NetworkNode):
    """One blockchain node on the simulated network."""

    def __init__(
        self,
        node_id: str,
        keypair: KeyPair,
        registry: ContractRegistry,
        engine: ConsensusEngine,
        default_policy: EndorsementPolicy | None = None,
        sharded_executor: ShardedExecutor | None = None,
        byzantine: bool = False,
    ):
        super().__init__(node_id)
        self.keypair = keypair
        self.registry = registry
        self.engine = engine
        self.ledger = Ledger()
        self.state = WorldState()
        self.mempool = Mempool()
        self.receipts: dict[str, TxReceipt] = {}
        self.policies: dict[str, EndorsementPolicy] = {}
        self.default_policy = default_policy or EndorsementPolicy(required=1)
        self.sharded_executor = sharded_executor
        self.byzantine = byzantine
        self.metrics = PeerMetrics()
        #: Called as ``listener(peer, block)`` after every committed
        #: block — the invariant auditor's hook point.
        self.commit_listeners: list[Callable[["Peer", Block], None]] = []
        engine.attach(self)

    # -- configuration --------------------------------------------------------

    def set_policy(self, contract: str, policy: EndorsementPolicy) -> None:
        self.policies[contract] = policy

    def policy_for(self, contract: str) -> EndorsementPolicy:
        return self.policies.get(contract, self.default_policy)

    # -- endorsement (executed on behalf of clients) ----------------------------

    def endorse(self, tx: Transaction) -> tuple[Endorsement, ExecutionResult] | None:
        """Simulate *tx* against current state and sign the rw-set.

        Returns ``(endorsement, execution_result)``, or ``None`` if this
        peer is crashed or not eligible under the contract's policy.
        Failed executions still come back (with ``success=False`` and no
        endorsement use) so clients can surface the contract error.
        """
        if self.crashed or not self.policy_for(tx.contract).eligible(self.node_id):
            return None
        result = self.registry.execute(
            self.state,
            tx.contract,
            tx.method,
            tx.args,
            caller=tx.sender,
            timestamp=tx.timestamp,
            tx_id=tx.tx_id,
        )
        digest = rwset_digest(result.read_set, result.write_set)
        endorsement = Endorsement.create(self.keypair, self.node_id, tx.tx_id, digest)
        return endorsement, result

    # -- transaction admission ---------------------------------------------------

    def submit(self, tx: Transaction, gossip: bool = True) -> bool:
        """Admit an endorsed transaction into the mempool (and gossip it)."""
        try:
            tx.validate_structure()
        except InvalidTransactionError:
            self.metrics.signature_failures += 1
            return False
        admitted = self.mempool.add(tx)
        if admitted:
            self.engine.on_transaction_admitted()
            if gossip:
                self.broadcast(_KIND_TX, tx)
        return admitted

    # -- commit path ----------------------------------------------------------------

    def commit_block(self, block: Block) -> None:
        """Validate and apply a decided block (the Fabric validate phase)."""
        validity: list[bool] = []
        valid_txs: list[Transaction] = []
        for tx in block.transactions:
            verdict, error = self._validate_transaction(tx)
            validity.append(verdict)
            receipt = TxReceipt(
                tx_id=tx.tx_id,
                block_height=block.height,
                success=verdict,
                return_value=tx.return_value if verdict else None,
                events=tx.events if verdict else (),
                error=error,
            )
            self.receipts[tx.tx_id] = receipt
            if verdict:
                self.state.apply_write_set(tx.write_set)
                valid_txs.append(tx)
                self.metrics.txs_committed_valid += 1
                self.metrics.commit_latency_total += self.sim.now - tx.timestamp
                self.metrics.commit_latency_count += 1
            else:
                self.metrics.txs_committed_invalid += 1
        self.ledger.append(block, validity)
        self.mempool.remove([tx.tx_id for tx in block.transactions])
        self.metrics.blocks_committed += 1
        self.metrics.commit_times.append(self.sim.now)
        if self.sharded_executor is not None and valid_txs:
            self.sharded_executor.plan_block(valid_txs)
        for listener in self.commit_listeners:
            listener(self, block)

    def _validate_transaction(self, tx: Transaction) -> tuple[bool, str | None]:
        try:
            tx.validate_structure()
        except InvalidTransactionError as exc:
            self.metrics.signature_failures += 1
            return False, str(exc)
        try:
            check_endorsements(tx, self.policy_for(tx.contract))
        except EndorsementError as exc:
            self.metrics.endorsement_failures += 1
            return False, str(exc)
        if not self.state.validate_read_set(tx.read_set):
            self.metrics.mvcc_conflicts += 1
            return False, "MVCC conflict: stale read set"
        return True, None

    # -- network ------------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == _KIND_TX:
            self.submit(message.payload, gossip=False)
            return
        self.engine.on_message(message)
