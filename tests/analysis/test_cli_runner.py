"""The analyzer as a tool: CLI exit codes, JSON schema, baseline flags,
and the ``repro-news lint`` forwarding path CI actually runs."""

import json
import pathlib
import subprocess
import sys

from repro.analysis import main as lint_main
from repro.analysis.runner import collect_files, module_name_for
from repro.cli import main as cli_main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO = pathlib.Path(__file__).parents[2]


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("import math\nprint(math.tau)\n")
    assert lint_main([str(clean), "--no-baseline"]) == 0
    assert "0 errors" in capsys.readouterr().out


def test_exit_one_on_error_finding(capsys):
    # Absolute fixture path: outside the tests/ warn cap, so the DET
    # errors keep their severity — this is the "CI fails on a new
    # error-severity violation" guarantee.
    bad = str((FIXTURES / "det_bad.py").resolve())
    assert lint_main([bad, "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "[error]" in out


def test_exit_two_on_syntax_error(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n")
    assert lint_main([str(broken), "--no-baseline"]) == 2
    assert "PARSE ERROR" in capsys.readouterr().out


def test_json_output_schema(tmp_path, capsys):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import random\nx = random.random()\n")
    code = lint_main([str(bad), "--no-baseline", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    summary = payload["summary"]
    assert summary["files_checked"] == 1
    assert summary["active_errors"] == 1
    assert summary["by_rule"] == {"DET001": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule", "severity", "path", "line", "col", "message", "context", "baselined",
    }
    assert finding["rule"] == "DET001" and finding["line"] == 2


def test_out_flag_writes_report(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("print('hi')\n")
    out_file = tmp_path / "report.json"
    lint_main([str(clean), "--no-baseline", "--format", "json", "--out", str(out_file)])
    capsys.readouterr()
    assert json.loads(out_file.read_text())["summary"]["total"] == 0


def test_update_baseline_then_clean_exit(tmp_path, capsys, monkeypatch):
    project = tmp_path / "src"
    project.mkdir()
    (project / "mod.py").write_text("import random\nx = random.random()\n")
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src"]) == 1  # fails before baselining
    assert lint_main(["src", "--update-baseline"]) == 0
    assert lint_main(["src"]) == 0  # grandfathered now
    out = capsys.readouterr().out
    assert "baselined" in out


def test_cli_lint_subcommand_forwards(capsys):
    bad = str((FIXTURES / "det_bad.py").resolve())
    assert cli_main(["lint", bad, "--no-baseline"]) == 1
    assert "DET001" in capsys.readouterr().out


def test_cli_lint_forwards_leading_flags(capsys):
    # Options before the first path must reach the analyzer too —
    # `repro-news lint --format json src` is the CI invocation shape.
    bad = str((FIXTURES / "det_bad.py").resolve())
    assert cli_main(["lint", "--no-baseline", bad]) == 1
    assert "DET001" in capsys.readouterr().out


def test_python_dash_m_entry_point(tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("print('ok')\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(clean), "--no-baseline"],
        capture_output=True, text=True,
        cwd=str(REPO), env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "0 errors" in proc.stdout


def test_repo_tree_is_clean():
    # The dogfood criterion: `repro-news lint` over this repository's
    # own src/ reports no active errors.
    report_code = lint_main([str(REPO / "src"), "--no-baseline"])
    assert report_code == 0


def test_collect_files_skips_fixture_dirs():
    files = collect_files([str(REPO / "tests")])
    assert files, "tests/ should contain python files"
    assert not [p for p in files if "fixtures" in p.parts]
    # But naming a fixture file explicitly always analyzes it.
    explicit = collect_files([str(FIXTURES / "det_bad.py")])
    assert len(explicit) == 1


def test_module_name_inference():
    assert module_name_for(REPO / "src" / "repro" / "chain" / "peer.py") == "repro.chain.peer"
    assert module_name_for(REPO / "src" / "repro" / "obs" / "__init__.py") == "repro.obs"
    # A top-level script is importable under its bare stem — no package
    # prefix means it can never match a `repro.*` sim domain.
    assert module_name_for(REPO / "setup.py") == "setup"
