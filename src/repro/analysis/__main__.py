"""``python -m repro.analysis`` — same CLI as ``repro-news lint``."""

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main(prog="python -m repro.analysis"))
