"""Always-on consensus invariant auditing.

:class:`InvariantAuditor` hooks a :class:`~repro.chain.network.
BlockchainNetwork` and re-verifies the safety properties the platform's
trust argument rests on — after every committed block (incremental
checks, cheap) and again at end-of-run (full-ledger forensics):

- **agreement** — no two honest peers ever commit different blocks at
  the same height, crashed peers included (a commit is permanent, so a
  peer that forked before crashing still violated safety);
- **certificate validity** — every PBFT commit certificate names at
  least 2f+1 *distinct validators*, no non-validator signers, and the
  certified digest matches the block that actually committed (this is
  the invariant the validator-membership rule in
  :mod:`repro.chain.consensus.pbft` exists to protect);
- **tx durability** — every admitted transaction is eventually committed
  or still pending in some honest mempool (catches the silent tx-drop
  where a deposed primary's in-flight round was discarded on view
  change);
- **state convergence** — the existing
  :meth:`~repro.chain.network.BlockchainNetwork.assert_convergence`
  prefix/app-hash check, surfaced as a structured violation.

Violations raise (or, with ``strict=False``, collect) structured
:class:`AuditViolation` errors carrying full round forensics.  The
chaos harness in :mod:`repro.simnet.chaos` generates the fault schedules
these invariants are audited under; ``benchmarks/bench_chaos_audit.py``
reports violation counts and recovery latency across seeds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.chain.block import Block
from repro.errors import ChainError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.network import BlockchainNetwork
    from repro.chain.peer import Peer
    from repro.chain.transaction import Transaction
    from repro.simnet.failure import FailureEvent

__all__ = ["AuditViolation", "InvariantAuditor", "recovery_latencies"]


class AuditViolation(ChainError):
    """A consensus invariant failed, with forensics attached.

    Attributes:
        invariant: which check failed (``"agreement"``,
            ``"certificate"``, ``"durability"``, ``"convergence"``).
        height: block height the violation anchors to, if any.
        peers: node ids implicated.
        forensics: free-form structured context (digests, certificates,
            views, timestamps) for the failing round.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        height: int | None = None,
        peers: tuple[str, ...] = (),
        forensics: dict[str, Any] | None = None,
    ):
        self.invariant = invariant
        self.detail = detail
        self.height = height
        self.peers = tuple(peers)
        self.forensics = dict(forensics or {})
        location = f" at height {height}" if height is not None else ""
        involved = f" [{', '.join(self.peers)}]" if self.peers else ""
        super().__init__(f"invariant '{invariant}' violated{location}{involved}: {detail}")


class InvariantAuditor:
    """Continuously audits a :class:`BlockchainNetwork`'s safety invariants.

    Attach with ``auditor = InvariantAuditor(network)`` *before* driving
    traffic; the auditor registers itself on every peer's commit path and
    on the network's admission path.  ``strict=True`` (default) raises on
    the first violation; ``strict=False`` collects into ``violations``
    so chaos benchmarks can count rather than abort.
    """

    def __init__(self, network: "BlockchainNetwork", strict: bool = True):
        self.network = network
        self.strict = strict
        self.violations: list[AuditViolation] = []
        self.blocks_audited = 0
        self.checks_run = 0
        #: tx_id -> simulated admission time, for the durability check.
        self.tracked_txs: dict[str, float] = {}
        #: height -> {digest: first honest peer that committed it}.
        self._height_digests: dict[int, dict[str, str]] = {}
        self._watched: set[str] = set()
        network.auditors.append(self)
        for peer in network.peers:
            self.watch_peer(peer)

    # -- hook registration -------------------------------------------------

    def watch_peer(self, peer: "Peer") -> None:
        """Subscribe to *peer*'s commits (idempotent; used by join_peer)."""
        if peer.node_id in self._watched:
            return
        self._watched.add(peer.node_id)
        peer.commit_listeners.append(self._on_block_committed)

    def on_tx_admitted(self, tx: "Transaction") -> None:
        """Record an admitted transaction for the durability invariant."""
        self.tracked_txs.setdefault(tx.tx_id, self.network.sim.now)

    def track_tx(self, tx_id: str) -> None:
        """Manually track a tx submitted directly to a peer (bypassing
        ``BlockchainNetwork.submit``), as chaos tests do."""
        self.tracked_txs.setdefault(tx_id, self.network.sim.now)

    # -- incremental checks (after every committed block) ------------------

    def _on_block_committed(self, peer: "Peer", block: Block) -> None:
        self.blocks_audited += 1
        if peer.byzantine:
            return  # a byzantine ledger carries no guarantees to audit
        self._check_agreement_incremental(peer, block)
        self._check_certificate(peer, block)

    def _check_agreement_incremental(self, peer: "Peer", block: Block) -> None:
        self.checks_run += 1
        digests = self._height_digests.setdefault(block.height, {})
        digests.setdefault(block.block_hash, peer.node_id)
        if len(digests) > 1:
            self._violate(
                "agreement",
                f"honest peers committed {len(digests)} distinct blocks",
                height=block.height,
                peers=tuple(sorted(digests.values())) + (peer.node_id,),
                forensics={
                    "digests": dict(digests),
                    "latest_peer": peer.node_id,
                    "latest_digest": block.block_hash,
                    "time": self.network.sim.now,
                },
            )

    def _check_certificate(self, peer: "Peer", block: Block) -> None:
        engine = peer.engine
        certificates = getattr(engine, "commit_certificates", None)
        if certificates is None:
            return  # engine issues no certificates (e.g. PoA ordering)
        entry = certificates.get(block.height)
        if entry is None:
            # Synchronous state-transfer replay (join_peer bootstrap)
            # commits without a certificate; the source peer's was audited.
            return
        self.checks_run += 1
        digest, certificate = entry
        validators = set(engine.validators)
        quorum = engine.quorum
        distinct = set(certificate)
        forensics = {
            "certificate": sorted(certificate),
            "validators": sorted(validators),
            "quorum": quorum,
            "view": getattr(engine, "view", None),
            "digest": digest,
            "block_digest": block.block_hash,
            "time": self.network.sim.now,
        }
        outsiders = distinct - validators
        if outsiders:
            self._violate(
                "certificate",
                f"certificate contains non-validator signer(s) {sorted(outsiders)}",
                height=block.height, peers=(peer.node_id,), forensics=forensics,
            )
        if len(distinct & validators) < quorum:
            self._violate(
                "certificate",
                f"only {len(distinct & validators)} distinct validator signers, "
                f"quorum is {quorum}",
                height=block.height, peers=(peer.node_id,), forensics=forensics,
            )
        if digest != block.block_hash:
            self._violate(
                "certificate",
                "certified digest does not match the committed block",
                height=block.height, peers=(peer.node_id,), forensics=forensics,
            )

    # -- end-of-run checks -------------------------------------------------

    def final_check(self) -> list[AuditViolation]:
        """Run the full audit; returns (and with ``strict`` raises) violations."""
        self.check_agreement()
        self.check_certificates()
        self.check_durability()
        self.check_convergence()
        return list(self.violations)

    def check_agreement(self) -> None:
        """Full-ledger prefix agreement across honest peers, crashed included.

        Every honest chain must be a prefix of the longest honest chain
        (prefix-of-reference implies pairwise agreement on common
        prefixes, so one reference suffices).
        """
        self.checks_run += 1
        honest = [p for p in self.network.peers if not p.byzantine]
        if not honest:
            return
        reference = max(honest, key=lambda p: p.ledger.height)
        for peer in honest:
            if peer is reference:
                continue
            for height in range(1, peer.ledger.height + 1):
                a = reference.ledger.block(height).block_hash
                b = peer.ledger.block(height).block_hash
                if a != b:
                    self._violate(
                        "agreement",
                        f"{peer.node_id} diverges from {reference.node_id}",
                        height=height,
                        peers=(reference.node_id, peer.node_id),
                        forensics={
                            "reference_digest": a,
                            "peer_digest": b,
                            "crashed": peer.crashed,
                        },
                    )
                    break  # deeper heights on this fork add no information

    def check_certificates(self) -> None:
        """Re-validate every recorded commit certificate on honest peers."""
        for peer in self.network.peers:
            if peer.byzantine:
                continue
            certificates = getattr(peer.engine, "commit_certificates", None)
            if not certificates:
                continue
            for height, (digest, certificate) in sorted(certificates.items()):
                if height > peer.ledger.height:
                    continue
                block = peer.ledger.block(height)
                self._check_certificate_entry(peer, height, digest, certificate, block)

    def _check_certificate_entry(
        self, peer: "Peer", height: int, digest: str,
        certificate: tuple[str, ...], block: Block,
    ) -> None:
        self.checks_run += 1
        engine = peer.engine
        validators = set(engine.validators)
        distinct = set(certificate)
        problems = []
        if distinct - validators:
            problems.append(f"non-validator signers {sorted(distinct - validators)}")
        if len(distinct & validators) < engine.quorum:
            problems.append(
                f"{len(distinct & validators)} validator signers < quorum {engine.quorum}"
            )
        if digest != block.block_hash:
            problems.append("certified digest mismatches committed block")
        if problems:
            self._violate(
                "certificate",
                "; ".join(problems),
                height=height,
                peers=(peer.node_id,),
                forensics={
                    "certificate": sorted(certificate),
                    "validators": sorted(validators),
                    "digest": digest,
                    "block_digest": block.block_hash,
                },
            )

    def check_durability(self) -> None:
        """Every admitted tx is committed or still pending somewhere honest.

        "Pending" covers a peer's mempool *and* its engine's open
        consensus rounds (``pending_txs``): a transaction taken into an
        in-flight proposal is retained state, not a drop.  A tx that
        appears in none of receipts / mempools / open rounds has been
        silently lost — exactly what the seed engine did when a view
        change discarded a deposed primary's round.
        """
        self.checks_run += 1
        honest = [p for p in self.network.peers if not p.byzantine]
        in_flight: set[str] = set()
        for peer in honest:
            pending = getattr(peer.engine, "pending_txs", None)
            if pending is not None:
                in_flight |= pending()
        lost = [
            (tx_id, admitted_at)
            for tx_id, admitted_at in self.tracked_txs.items()
            if tx_id not in in_flight
            and not any(tx_id in p.receipts for p in honest)
            and not any(tx_id in p.mempool for p in honest)
        ]
        if lost:
            self._violate(
                "durability",
                f"{len(lost)} admitted transaction(s) vanished "
                "(neither committed nor pending in any honest mempool)",
                forensics={
                    "lost": [
                        {"tx_id": tx_id, "admitted_at": admitted_at}
                        for tx_id, admitted_at in lost[:20]
                    ],
                    "lost_total": len(lost),
                    "tracked_total": len(self.tracked_txs),
                },
            )

    def check_convergence(self) -> None:
        """State convergence (prefix + app-hash), as a structured violation."""
        self.checks_run += 1
        try:
            self.network.assert_convergence()
        except AuditViolation:
            raise
        except ChainError as exc:
            self._violate(
                "convergence",
                str(exc),
                forensics={"heights": self.network.committed_heights()},
            )

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Counters for benchmark tables."""
        by_invariant: dict[str, int] = {}
        for violation in self.violations:
            by_invariant[violation.invariant] = by_invariant.get(violation.invariant, 0) + 1
        return {
            "blocks_audited": self.blocks_audited,
            "checks_run": self.checks_run,
            "txs_tracked": len(self.tracked_txs),
            "violations": len(self.violations),
            "violations_by_invariant": by_invariant,
        }

    def _violate(
        self,
        invariant: str,
        detail: str,
        *,
        height: int | None = None,
        peers: tuple[str, ...] = (),
        forensics: dict[str, Any] | None = None,
    ) -> None:
        violation = AuditViolation(
            invariant, detail, height=height, peers=peers, forensics=forensics
        )
        self.violations.append(violation)
        if self.strict:
            raise violation


def recovery_latencies(
    network: "BlockchainNetwork", failures: list["FailureEvent"]
) -> list[tuple["FailureEvent", float | None]]:
    """For each injected fault, time until the next honest commit.

    Measures how quickly consensus regains liveness after each
    crash/partition/chaos event: the gap between the fault firing and the
    first block committed by any honest peer afterwards (``None`` if the
    run ended first).  Heal/recover events are included — their latency
    shows the cost of catching up.
    """
    commit_times = sorted(
        t
        for peer in network.peers
        if not peer.byzantine
        for t in peer.metrics.commit_times
    )
    out: list[tuple[FailureEvent, float | None]] = []
    for event in failures:
        after = next((t for t in commit_times if t > event.time), None)
        out.append((event, after - event.time if after is not None else None))
    return out
