"""Text vectorizers: bag-of-words, TF-IDF, and feature hashing.

From-scratch NumPy implementations with the familiar fit/transform
shape.  Matrices are dense ``float64`` arrays — corpora in these
experiments are thousands of documents with vocabularies of a few
thousand terms, where dense NumPy is both simpler and faster than a
hand-rolled sparse format.
"""

from __future__ import annotations


from collections import Counter

import numpy as np

from repro.corpus.lexicon import tokenize
from repro.errors import MLError

__all__ = ["CountVectorizer", "TfidfVectorizer", "HashingVectorizer", "StandardScaler", "ScaledVectorizer"]


class StandardScaler:
    """Column-wise (x - mean) / std standardization."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self.std_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise MLError("scaler is not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class ScaledVectorizer:
    """Compose any vectorizer with standardization of its output.

    Needed for low-dimensional dense feature extractors (stylometric
    features span wildly different ranges), harmless for already-
    normalized TF-IDF.
    """

    def __init__(self, inner):
        self.inner = inner
        self.scaler = StandardScaler()

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        return self.scaler.fit_transform(self.inner.fit_transform(texts))

    def fit(self, texts: list[str]) -> "ScaledVectorizer":
        self.fit_transform(texts)
        return self

    def transform(self, texts: list[str]) -> np.ndarray:
        return self.scaler.transform(self.inner.transform(texts))


class CountVectorizer:
    """Bag-of-words counts over a corpus-fitted vocabulary."""

    def __init__(self, min_df: int = 1, max_features: int | None = None):
        if min_df < 1:
            raise MLError("min_df must be >= 1")
        self.min_df = min_df
        self.max_features = max_features
        self.vocabulary_: dict[str, int] = {}

    def fit(self, texts: list[str]) -> "CountVectorizer":
        document_frequency: Counter[str] = Counter()
        for text in texts:
            document_frequency.update(set(tokenize(text)))
        terms = [t for t, df in document_frequency.items() if df >= self.min_df]
        # Keep the highest-DF terms when capped; ties broken alphabetically
        # so fitting is deterministic.
        terms.sort(key=lambda t: (-document_frequency[t], t))
        if self.max_features is not None:
            terms = terms[: self.max_features]
        self.vocabulary_ = {term: index for index, term in enumerate(sorted(terms))}
        return self

    def transform(self, texts: list[str]) -> np.ndarray:
        if not self.vocabulary_:
            raise MLError("vectorizer is not fitted")
        matrix = np.zeros((len(texts), len(self.vocabulary_)), dtype=np.float64)
        for row, text in enumerate(texts):
            for term, count in Counter(tokenize(text)).items():
                column = self.vocabulary_.get(term)
                if column is not None:
                    matrix[row, column] = count
        return matrix

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)


class TfidfVectorizer:
    """TF-IDF with smoothed IDF and L2 row normalization."""

    def __init__(self, min_df: int = 1, max_features: int | None = None):
        self._counts = CountVectorizer(min_df=min_df, max_features=max_features)
        self.idf_: np.ndarray | None = None

    @property
    def vocabulary_(self) -> dict[str, int]:
        return self._counts.vocabulary_

    def fit(self, texts: list[str]) -> "TfidfVectorizer":
        counts = self._counts.fit_transform(texts)
        n_docs = counts.shape[0]
        document_frequency = np.count_nonzero(counts, axis=0)
        self.idf_ = np.log((1 + n_docs) / (1 + document_frequency)) + 1.0
        return self

    def transform(self, texts: list[str]) -> np.ndarray:
        if self.idf_ is None:
            raise MLError("vectorizer is not fitted")
        weighted = self._counts.transform(texts) * self.idf_
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return weighted / norms

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)


class HashingVectorizer:
    """Stateless vectorizer: terms hashed into a fixed number of buckets.

    No fitting pass and no stored vocabulary, which is what a streaming
    platform component would use; the cost is hash collisions, visible as
    a small accuracy drop in E5.
    """

    def __init__(self, n_features: int = 2048, normalize: bool = True):
        if n_features < 2:
            raise MLError("n_features must be >= 2")
        self.n_features = n_features
        self.normalize = normalize

    def _bucket(self, term: str) -> tuple[int, float]:
        # SHA-based bucketing: Python's builtin str hash is salted per
        # process, which would make runs irreproducible.
        from repro.crypto.hashing import sha256_bytes

        digest = sha256_bytes(f"repro-hash-vec:{term}".encode("utf-8"))
        value = int.from_bytes(digest[:8], "big")
        bucket = value % self.n_features
        sign = 1.0 if (value >> 60) & 1 else -1.0
        return bucket, sign

    def transform(self, texts: list[str]) -> np.ndarray:
        matrix = np.zeros((len(texts), self.n_features), dtype=np.float64)
        for row, text in enumerate(texts):
            for term, count in Counter(tokenize(text)).items():
                bucket, sign = self._bucket(term)
                matrix[row, bucket] += sign * count
        if self.normalize:
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            matrix /= norms
        return matrix

    # fit/fit_transform provided for API symmetry; fitting is a no-op.
    def fit(self, texts: list[str]) -> "HashingVectorizer":
        return self

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        return self.transform(texts)
