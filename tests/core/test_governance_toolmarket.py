"""Platform-charter petitions and the AI tool marketplace."""

import pytest

from repro.errors import ContractError


@pytest.fixture
def world(platform):
    platform.register_participant("founder", role="publisher")
    for index in range(4):
        platform.register_participant(f"checker-{index}", role="checker")
    platform.register_participant("dev", role="developer")
    platform.register_participant("civilian", role="consumer")
    return platform


# -- governance ---------------------------------------------------------------


def test_petition_review_finalize_approved(world):
    world.petition_platform("founder", "new-wire", "independent local news", quorum=3)
    for index in range(3):
        world.review_petition(f"checker-{index}", "new-wire", approve=True)
    assert world.finalize_petition("new-wire") == "approved"
    assert world.is_chartered("new-wire")


def test_petition_rejected_by_quorum(world):
    world.petition_platform("founder", "spam-wire", "definitely not spam", quorum=2)
    world.review_petition("checker-0", "spam-wire", approve=False)
    world.review_petition("checker-1", "spam-wire", approve=False)
    assert world.finalize_petition("spam-wire") == "rejected"
    assert not world.is_chartered("spam-wire")


def test_finalize_before_quorum_fails(world):
    world.petition_platform("founder", "early-wire", "charter", quorum=3)
    world.review_petition("checker-0", "early-wire", approve=True)
    with pytest.raises(ContractError, match="quorum not yet reached"):
        world.finalize_petition("early-wire")


def test_only_checkers_review(world):
    world.petition_platform("founder", "wire-x", "charter", quorum=1)
    with pytest.raises(ContractError, match="only checkers"):
        world.review_petition("civilian", "wire-x", approve=True)


def test_double_review_rejected(world):
    world.petition_platform("founder", "wire-y", "charter", quorum=2)
    world.review_petition("checker-0", "wire-y", approve=True)
    with pytest.raises(ContractError, match="already reviewed"):
        world.review_petition("checker-0", "wire-y", approve=True)


def test_consumer_cannot_petition(world):
    with pytest.raises(ContractError, match="may not petition"):
        world.petition_platform("civilian", "pirate-wire", "charter")


def test_duplicate_petition_rejected(world):
    world.petition_platform("founder", "wire-z", "charter", quorum=1)
    with pytest.raises(ContractError, match="already exists"):
        world.petition_platform("founder", "wire-z", "charter two")


def test_unchartered_platform_query(world):
    assert not world.is_chartered("never-petitioned")


# -- tool marketplace ----------------------------------------------------------


def _register_tool(world, tool_id="detector-1", fee=0.5, stake=10.0):
    return world.chain.invoke(
        world.account("dev"), "toolmarket", "register_tool",
        {"tool_id": tool_id, "description": "tfidf ensemble", "fee": fee, "stake": stake},
    )


def test_tool_registration_requires_developer(world):
    with pytest.raises(ContractError, match="verified developers"):
        world.chain.invoke(
            world.account("civilian"), "toolmarket", "register_tool",
            {"tool_id": "t", "description": "d", "fee": 0.1, "stake": 1.0},
        )


def test_invocation_accrues_royalties(world):
    _register_tool(world)
    for index in range(3):
        world.chain.invoke(
            world.governance, "toolmarket", "record_invocation",
            {"tool_id": "detector-1", "article_id": f"a-{index}", "score": 0.7},
        )
    record = world.chain.query("toolmarket", "get_tool", {"tool_id": "detector-1"})
    assert record["calls"] == 3
    assert record["royalties_accrued"] == pytest.approx(1.5)


def test_outcome_settlement_tracks_accuracy(world):
    _register_tool(world)
    cases = [("a-0", 0.9, True), ("a-1", 0.2, False), ("a-2", 0.8, False)]
    for article_id, score, final_fake in cases:
        world.chain.invoke(world.governance, "toolmarket", "record_invocation",
                           {"tool_id": "detector-1", "article_id": article_id, "score": score})
        world.chain.invoke(world.governance, "toolmarket", "record_outcome",
                           {"tool_id": "detector-1", "article_id": article_id,
                            "final_fake": final_fake})
    record = world.chain.query("toolmarket", "get_tool", {"tool_id": "detector-1"})
    assert record["calls"] == 3 and record["correct"] == 2


def test_double_settlement_rejected(world):
    _register_tool(world)
    world.chain.invoke(world.governance, "toolmarket", "record_invocation",
                       {"tool_id": "detector-1", "article_id": "a-0", "score": 0.9})
    world.chain.invoke(world.governance, "toolmarket", "record_outcome",
                       {"tool_id": "detector-1", "article_id": "a-0", "final_fake": True})
    with pytest.raises(ContractError, match="already recorded"):
        world.chain.invoke(world.governance, "toolmarket", "record_outcome",
                           {"tool_id": "detector-1", "article_id": "a-0", "final_fake": True})


def test_unreliable_tool_slashed_and_delisted(world):
    _register_tool(world, tool_id="junk", stake=25.0)
    for index in range(12):
        world.chain.invoke(world.governance, "toolmarket", "record_invocation",
                           {"tool_id": "junk", "article_id": f"a-{index}", "score": 0.9})
        world.chain.invoke(world.governance, "toolmarket", "record_outcome",
                           {"tool_id": "junk", "article_id": f"a-{index}",
                            "final_fake": index % 4 == 0})  # 25% accuracy
    receipt = world.chain.invoke(world.governance, "toolmarket", "slash_if_unreliable",
                                 {"tool_id": "junk"})
    assert receipt.return_value == pytest.approx(25.0)
    record = world.chain.query("toolmarket", "get_tool", {"tool_id": "junk"})
    assert not record["listed"] and record["stake"] == 0.0
    with pytest.raises(ContractError, match="delisted"):
        world.chain.invoke(world.governance, "toolmarket", "record_invocation",
                           {"tool_id": "junk", "article_id": "a-99", "score": 0.5})


def test_slash_refused_for_accurate_tool(world):
    _register_tool(world, tool_id="good")
    for index in range(12):
        world.chain.invoke(world.governance, "toolmarket", "record_invocation",
                           {"tool_id": "good", "article_id": f"a-{index}", "score": 0.9})
        world.chain.invoke(world.governance, "toolmarket", "record_outcome",
                           {"tool_id": "good", "article_id": f"a-{index}", "final_fake": True})
    with pytest.raises(ContractError, match="above the"):
        world.chain.invoke(world.governance, "toolmarket", "slash_if_unreliable",
                           {"tool_id": "good"})


def test_slash_respects_warmup(world):
    _register_tool(world, tool_id="fresh")
    world.chain.invoke(world.governance, "toolmarket", "record_invocation",
                       {"tool_id": "fresh", "article_id": "a-0", "score": 0.9})
    with pytest.raises(ContractError, match="warm-up"):
        world.chain.invoke(world.governance, "toolmarket", "slash_if_unreliable",
                           {"tool_id": "fresh"})


def test_list_tools_ranked_by_accuracy(world):
    for tool_id, accuracy_pattern in (("hi", True), ("lo", False)):
        _register_tool(world, tool_id=tool_id)
        for index in range(4):
            world.chain.invoke(world.governance, "toolmarket", "record_invocation",
                               {"tool_id": tool_id, "article_id": f"{tool_id}-{index}",
                                "score": 0.9})
            world.chain.invoke(world.governance, "toolmarket", "record_outcome",
                               {"tool_id": tool_id, "article_id": f"{tool_id}-{index}",
                                "final_fake": accuracy_pattern})
    ranked = world.chain.query("toolmarket", "list_tools", {})
    assert ranked.index("hi") < ranked.index("lo")
