"""Corpus serialization: JSONL save/load with full ground truth.

Lets downstream users persist generated datasets (and their provenance
ground truth) and reload them for independent evaluation, instead of
re-deriving everything from seeds.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.corpus.articles import Article
from repro.corpus.generator import LabeledCorpus
from repro.errors import CorpusError

__all__ = ["article_to_dict", "article_from_dict", "save_corpus", "load_corpus"]


def article_to_dict(article: Article) -> dict:
    """Article -> JSON-serializable dict (parents become a list)."""
    record = dataclasses.asdict(article)
    record["parents"] = list(article.parents)
    return record


def article_from_dict(record: dict) -> Article:
    """Inverse of :func:`article_to_dict`; validates required fields."""
    try:
        return Article(
            article_id=record["article_id"],
            topic=record["topic"],
            text=record["text"],
            author=record["author"],
            timestamp=float(record["timestamp"]),
            parents=tuple(record.get("parents", ())),
            op=record.get("op", "original"),
            modification_degree=float(record.get("modification_degree", 0.0)),
            distortion=float(record.get("distortion", 0.0)),
            cumulative_distortion=float(record.get("cumulative_distortion", 0.0)),
            fabricated=bool(record.get("fabricated", False)),
        )
    except KeyError as exc:
        raise CorpusError(f"article record missing field {exc}") from None


def save_corpus(corpus: LabeledCorpus, path: str | pathlib.Path) -> int:
    """Write a corpus as JSONL; returns the number of articles written."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for article in corpus:
            handle.write(json.dumps(article_to_dict(article), sort_keys=True) + "\n")
    return len(corpus)


def load_corpus(path: str | pathlib.Path) -> LabeledCorpus:
    """Read a JSONL corpus back, ground truth intact."""
    path = pathlib.Path(path)
    articles = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusError(f"{path}:{line_number}: invalid JSON ({exc})") from None
            articles.append(article_from_dict(record))
    return LabeledCorpus(articles)
