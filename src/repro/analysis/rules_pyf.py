"""PYF — the pyflakes subset CI lacks (pyflakes is not vendored).

PYF001 (error)  unused import.  ``__init__.py`` files are exempt (their
                imports are the package's public re-export surface), as
                are ``import x as x`` re-export spellings and
                ``__future__`` imports.
PYF002 (error)  undefined name.  A real scope checker: module /
                function / class / comprehension scopes, parameters,
                ``global``/``nonlocal``, walrus targets, exception
                names.  Files using star-imports are skipped (their
                namespace is unknowable statically).
PYF003 (warn)   duplicate import: the same (module, name) bound twice
                at module level outside ``try`` blocks.
PYF004 (warn)   f-string with no placeholders — a plain string wearing
                an ``f`` prefix, usually a missed interpolation.

Undefined-name checking is deliberately conservative (bindings are
collected scope-wide before any lookup, so use-before-def is not
reported): on this codebase a false positive blocks CI, a false
negative is just one more thing the test suite catches.
"""

from __future__ import annotations

import ast
import builtins
import re
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register

__all__ = ["UnusedImportRule", "UndefinedNameRule", "DuplicateImportRule", "EmptyFStringRule"]

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_BUILTIN_NAMES = set(dir(builtins)) | {
    "__file__", "__name__", "__doc__", "__package__", "__spec__",
    "__loader__", "__builtins__", "__debug__", "__path__", "__cached__",
    "__annotations__", "__dict__", "__class__", "WindowsError",
}


# ---------------------------------------------------------------------------
# PYF001 — unused imports
# ---------------------------------------------------------------------------

@register
class UnusedImportRule(Rule):
    rule_id = "PYF001"
    severity = "error"
    summary = "unused import"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        if mod.path.endswith("__init__.py"):
            return  # package surface: imports are re-exports by design
        imported: dict[str, tuple[ast.stmt, str]] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname and alias.asname == alias.name:
                        continue  # `import x as x` re-export idiom
                    local = alias.asname or alias.name.split(".")[0]
                    imported[local] = (node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        return  # star import: usage is unknowable
                    if alias.asname and alias.asname == alias.name:
                        continue
                    local = alias.asname or alias.name
                    imported[local] = (node, alias.name)
        if not imported:
            return
        used: set[str] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # Strings in __all__ and forward-ref annotations like
                # "MetricsRegistry | None" count as usage: take every
                # identifier-shaped token (conservative — over-counting
                # only suppresses findings, never invents them).
                if len(node.value) < 200:
                    used.update(_IDENTIFIER_RE.findall(node.value))
        for local, (node, original) in sorted(imported.items(), key=lambda kv: kv[1][0].lineno):
            if local not in used:
                yield self.finding(mod, node, f"`{local}` imported but unused")


# ---------------------------------------------------------------------------
# PYF002 — undefined names
# ---------------------------------------------------------------------------

class _Scope:
    __slots__ = ("kind", "bindings")

    def __init__(self, kind: str):
        self.kind = kind  # "module" | "function" | "class"
        self.bindings: set[str] = set()


class _ScopeChecker:
    """Collect-then-check scope walker (no use-before-def detection)."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.module_scope = _Scope("module")
        self.undefined: list[ast.Name] = []
        self.bail = False  # star-import / exec: namespace unknowable

    # -- binding collection -------------------------------------------------

    def _bind_target(self, scope: _Scope, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            scope.bindings.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(scope, element)
        elif isinstance(target, ast.Starred):
            self._bind_target(scope, target.value)

    def _collect(self, scope: _Scope, body: list[ast.stmt]) -> None:
        """Bind every name this statement list defines in *scope*.

        Does not descend into nested function/class bodies (those get
        their own scopes later) but does descend into all other
        compound statements.
        """
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                scope.bindings.add(node.name)
                continue  # body handled by its own scope
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    scope.bindings.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        self.bail = True
                    else:
                        scope.bindings.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind_target(scope, target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                self._bind_target(scope, node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind_target(scope, node.target)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._bind_target(scope, item.optional_vars)
            elif isinstance(node, ast.ExceptHandler):
                if node.name:
                    scope.bindings.add(node.name)
            elif isinstance(node, ast.NamedExpr):
                self._bind_target(scope, node.target)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                scope.bindings.update(node.names)
                self.module_scope.bindings.update(node.names)
            elif isinstance(node, ast.MatchAs):
                if node.name:
                    scope.bindings.add(node.name)
            elif isinstance(node, ast.MatchStar):
                if node.name:
                    scope.bindings.add(node.name)
            elif isinstance(node, ast.MatchMapping):
                if node.rest:
                    scope.bindings.add(node.rest)
            stack.extend(ast.iter_child_nodes(node))

    # -- checking -----------------------------------------------------------

    def run(self) -> list[ast.Name]:
        # `global X` anywhere binds X at module level; pre-collect so a
        # module-level read above the declaring function still resolves.
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Global):
                self.module_scope.bindings.update(node.names)
        self._collect(self.module_scope, self.tree.body)
        if self.bail:
            return []
        self._check_body(self.tree.body, [self.module_scope])
        return [] if self.bail else self.undefined

    def _lookup(self, name: str, chain: list[_Scope]) -> bool:
        current = chain[-1]
        for scope in reversed(chain):
            # Class bodies are invisible to nested scopes (Python's
            # class-scope rule) — only the class body itself sees them.
            if scope.kind == "class" and scope is not current:
                continue
            if name in scope.bindings:
                return True
        return name in _BUILTIN_NAMES

    def _check_expr(self, node: ast.AST | None, chain: list[_Scope]) -> None:
        if node is None:
            return
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(current, chain)
                continue
            if isinstance(current, ast.Lambda):
                self._check_lambda(current, chain)
                continue
            if isinstance(current, ast.ClassDef):
                self._check_class(current, chain)
                continue
            if isinstance(current, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                self._check_comprehension(current, chain)
                continue
            if isinstance(current, ast.Name):
                if isinstance(current.ctx, ast.Load) and not self._lookup(current.id, chain):
                    self.undefined.append(current)
                continue
            if isinstance(current, ast.Attribute):
                stack.append(current.value)  # only the base name resolves
                continue
            if isinstance(current, (ast.AnnAssign,)):
                # Annotations may be strings / forward refs — skip them.
                if current.value is not None:
                    stack.append(current.value)
                stack.append(current.target)
                continue
            if isinstance(current, ast.arg):
                continue  # parameter annotations skipped (forward refs)
            stack.extend(ast.iter_child_nodes(current))

    def _check_body(self, body: list[ast.stmt], chain: list[_Scope]) -> None:
        for stmt in body:
            self._check_expr(stmt, chain)

    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                        chain: list[_Scope]) -> None:
        for decorator in node.decorator_list:
            self._check_expr(decorator, chain)
        for default in list(node.args.defaults) + [d for d in node.args.kw_defaults if d]:
            self._check_expr(default, chain)
        scope = _Scope("function")
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            scope.bindings.add(arg.arg)
        self._collect(scope, node.body)
        self._check_body(node.body, chain + [scope])

    def _check_lambda(self, node: ast.Lambda, chain: list[_Scope]) -> None:
        for default in list(node.args.defaults) + [d for d in node.args.kw_defaults if d]:
            self._check_expr(default, chain)
        scope = _Scope("function")
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            scope.bindings.add(arg.arg)
        self._check_expr(node.body, chain + [scope])

    def _check_class(self, node: ast.ClassDef, chain: list[_Scope]) -> None:
        for decorator in node.decorator_list:
            self._check_expr(decorator, chain)
        for base in node.bases:
            self._check_expr(base, chain)
        for keyword in node.keywords:
            self._check_expr(keyword.value, chain)
        scope = _Scope("class")
        self._collect(scope, node.body)
        self._check_body(node.body, chain + [scope])

    def _check_comprehension(self, node: ast.AST, chain: list[_Scope]) -> None:
        scope = _Scope("function")
        generators = node.generators  # type: ignore[attr-defined]
        for comp in generators:
            self._bind_target(scope, comp.target)
            # Walrus targets inside comprehensions leak to the
            # enclosing scope at runtime; binding them here is the
            # conservative choice for lookup purposes.
            for sub in ast.walk(comp.iter):
                if isinstance(sub, ast.NamedExpr):
                    self._bind_target(scope, sub.target)
            for cond in comp.ifs:
                for sub in ast.walk(cond):
                    if isinstance(sub, ast.NamedExpr):
                        self._bind_target(scope, sub.target)
        inner = chain + [scope]
        # First generator's iterable evaluates in the enclosing scope.
        self._check_expr(generators[0].iter, chain)
        for comp in generators[1:]:
            self._check_expr(comp.iter, inner)
        for comp in generators:
            for cond in comp.ifs:
                self._check_expr(cond, inner)
        if isinstance(node, ast.DictComp):
            self._check_expr(node.key, inner)
            self._check_expr(node.value, inner)
        else:
            self._check_expr(node.elt, inner)  # type: ignore[attr-defined]


@register
class UndefinedNameRule(Rule):
    rule_id = "PYF002"
    severity = "error"
    summary = "undefined name"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        checker = _ScopeChecker(mod.tree)
        for name in checker.run():
            yield self.finding(mod, name, f"undefined name `{name.id}`")


# ---------------------------------------------------------------------------
# PYF003 — duplicate imports
# ---------------------------------------------------------------------------

@register
class DuplicateImportRule(Rule):
    rule_id = "PYF003"
    severity = "warn"
    summary = "duplicate import of the same name"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        in_try: set[int] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Try):
                for sub in ast.walk(node):
                    in_try.add(id(sub))
        seen: dict[tuple[str, str], int] = {}
        for stmt in mod.tree.body:  # module level only
            if id(stmt) in in_try:
                continue
            pairs: list[tuple[str, str]] = []
            if isinstance(stmt, ast.Import):
                pairs = [(alias.name, alias.asname or alias.name.split(".")[0])
                         for alias in stmt.names]
            elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                pairs = [(f"{stmt.module}.{alias.name}", alias.asname or alias.name)
                         for alias in stmt.names if alias.name != "*"]
            for origin, local in pairs:
                key = (origin, local)
                if key in seen:
                    yield self.finding(
                        mod, stmt,
                        f"`{local}` already imported from `{origin}` "
                        f"on line {seen[key]}",
                    )
                else:
                    seen[key] = stmt.lineno


# ---------------------------------------------------------------------------
# PYF004 — f-strings with no placeholders
# ---------------------------------------------------------------------------

@register
class EmptyFStringRule(Rule):
    rule_id = "PYF004"
    severity = "warn"
    summary = "f-string without placeholders"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        # Format specs (`f"{x:>9.1f}"`) parse as *nested* JoinedStr
        # nodes under FormattedValue.format_spec — those are not
        # f-strings the author wrote, so exclude them.
        spec_ids: set[int] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.FormattedValue) and node.format_spec is not None:
                for sub in ast.walk(node.format_spec):
                    spec_ids.add(id(sub))
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.JoinedStr) and id(node) not in spec_ids:
                if not any(isinstance(part, ast.FormattedValue) for part in node.values):
                    yield self.finding(
                        mod, node,
                        "f-string has no placeholders; drop the `f` prefix "
                        "(or add the missing interpolation)",
                    )
