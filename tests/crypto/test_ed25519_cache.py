"""Regression tests for the bounded digest-keyed verification cache.

The seed memoized ``verify`` with ``functools.lru_cache``, keying on the
raw ``(public_key, message, signature)`` tuple — so every cached entry
pinned its full message bytes, and 200k kilobyte-scale payloads pinned
hundreds of MB.  The fix keys a plain bounded dict on
``sha512(pubkey ‖ message ‖ signature)`` (fixed 64-byte keys), counts
hits/misses/evictions for the obs registry, and evicts FIFO.  These
tests fail on the pre-fix code: the stats API did not exist and the
cache was not inspectable.
"""

import random

import pytest

from repro.crypto import KeyPair, ed25519


@pytest.fixture(autouse=True)
def clean_cache():
    ed25519.verify_cache_clear()
    yield
    ed25519.verify_cache_clear()


@pytest.fixture
def keypair():
    return KeyPair.generate(random.Random(11))


def test_hit_miss_accounting(keypair):
    message = b"breaking news"
    signature = keypair.sign(message)
    assert keypair.verify(message, signature)
    stats = ed25519.verify_cache_stats()
    assert stats == {"hits": 0, "misses": 1, "evictions": 0, "size": 1}
    for _ in range(3):
        assert keypair.verify(message, signature)
    stats = ed25519.verify_cache_stats()
    assert stats["hits"] == 3
    assert stats["misses"] == 1
    assert stats["size"] == 1


def test_negative_results_are_cached_separately(keypair):
    message = b"msg"
    good = keypair.sign(message)
    bad = bytes(64)
    assert keypair.verify(message, good)
    assert not keypair.verify(message, bad)
    assert not keypair.verify(message, bad)  # cached False stays False
    stats = ed25519.verify_cache_stats()
    assert stats["misses"] == 2
    assert stats["hits"] == 1
    # The cached verdicts never cross-contaminate.
    assert keypair.verify(message, good)


def test_malformed_lengths_bypass_cache(keypair):
    # Wrong-length inputs return False before touching the cache, so the
    # digest key (fixed-length inputs only) stays unambiguous.
    assert not ed25519.verify(b"short", b"m", bytes(64))
    assert not ed25519.verify(bytes(32), b"m", b"short")
    assert ed25519.verify_cache_stats()["size"] == 0


def test_cache_is_bounded_with_fifo_eviction(keypair, monkeypatch):
    monkeypatch.setattr(ed25519, "VERIFY_CACHE_MAX", 8)
    signatures = []
    for i in range(12):
        message = f"m{i}".encode()
        signatures.append((message, keypair.sign(message)))
        assert keypair.verify(*signatures[-1])
    stats = ed25519.verify_cache_stats()
    assert stats["size"] <= 8
    assert stats["evictions"] == 12 - 8
    # Oldest entries were evicted: re-verifying m0 is a miss again,
    # the newest is still a hit.
    before = ed25519.verify_cache_stats()["misses"]
    assert keypair.verify(*signatures[0])
    assert ed25519.verify_cache_stats()["misses"] == before + 1
    before_hits = ed25519.verify_cache_stats()["hits"]
    assert keypair.verify(*signatures[-1])
    assert ed25519.verify_cache_stats()["hits"] == before_hits + 1


def test_snapshot_into_registry(keypair):
    from repro.obs import MetricsRegistry, snapshot_crypto_cache

    message = b"x"
    signature = keypair.sign(message)
    keypair.verify(message, signature)
    keypair.verify(message, signature)
    registry = MetricsRegistry()
    stats = snapshot_crypto_cache(registry)
    assert registry.gauge("crypto.verify_cache_hits").value == stats["hits"] == 1
    assert registry.gauge("crypto.verify_cache_misses").value == stats["misses"] == 1
    assert registry.gauge("crypto.verify_cache_size").value == 1
