"""E9 — §VII scalability: consensus sweep + sharded parallel execution.

Workload: 120 counter-style transactions (disjoint keys) submitted to a
simulated network of N validators, N in {4, 8, 16}, under both engines:

- round-robin PoA ordering (the Fabric-style throughput bound),
- PBFT (byzantine tolerance at quadratic message cost).

Reports simulated-time throughput, mean commit latency, and message
volume per committed transaction — the shape expected: PoA latency is
flat-ish in N while PBFT latency and message cost grow, which is why the
paper needs its ICDCS'18 parallel-execution layer (A3, measured here via
the sharded executor's speedup on the same blocks).
"""

from __future__ import annotations

import pathlib

from benchmarks.conftest import emit
from repro.chain import BlockchainNetwork, Contract, contract_method
from repro.obs import export_jsonl, snapshot_crypto_cache
from repro.simnet import FixedLatency

N_TXS = 120
PEER_COUNTS = (4, 8, 16, 32)
TRACE_PATH = pathlib.Path(__file__).parent / "latest_trace.jsonl"


class KVContract(Contract):
    """Disjoint-key writes so MVCC conflicts don't confound the sweep."""

    name = "kv"

    @contract_method
    def put(self, ctx, key: str, value: str):
        ctx.put(key, value)
        return True


def _run_config(n_peers: int, consensus: str, trace: bool = False):
    network = BlockchainNetwork(
        n_peers=n_peers, consensus=consensus, block_interval=0.5,
        latency=FixedLatency(0.05), seed=900 + n_peers,
        n_shards=4,
    )
    network.install_contract(KVContract)
    client = network.client()
    tx_ids = [
        client.invoke("kv", "put", {"key": f"k-{index}", "value": "v"}, wait=False)
        for index in range(N_TXS)
    ]
    for tx_id in tx_ids:
        network.wait_for_receipt(tx_id, timeout=300.0)
    network.run_for(5.0)
    network.assert_convergence()
    peer = network.peers[0]
    committed = peer.metrics.txs_committed_valid
    elapsed = network.sim.now
    throughput = committed / elapsed
    latency = peer.metrics.mean_commit_latency
    messages_per_tx = network.net.stats.sent / max(1, committed)
    speedup = peer.sharded_executor.cumulative_speedup if peer.sharded_executor else 1.0
    if trace:
        # Durable timeline for `repro-news report`: the full per-phase
        # latency breakdown of this configuration's run.
        snapshot_crypto_cache(network.obs)
        export_jsonl(
            TRACE_PATH, network.obs, network.tracer,
            meta={"experiment": "E9", "consensus": consensus,
                  "n_peers": n_peers, "n_txs": N_TXS, "sim_time": elapsed},
        )
    return throughput, latency, messages_per_tx, speedup, committed


def _sweep():
    results = {}
    for consensus in ("poa", "pbft"):
        for n_peers in PEER_COUNTS:
            trace = consensus == "pbft" and n_peers == PEER_COUNTS[0]
            results[(consensus, n_peers)] = _run_config(n_peers, consensus, trace=trace)
    return results


def test_e9_consensus_scalability(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [f"{'engine':<6} {'peers':>5} {'tx/s(sim)':>10} {'latency(s)':>11} "
            f"{'msgs/tx':>8} {'shard-speedup':>14}"]
    for (consensus, n_peers), (throughput, latency, messages, speedup, committed) in results.items():
        rows.append(
            f"{consensus:<6} {n_peers:>5} {throughput:>10.1f} {latency:>11.3f} "
            f"{messages:>8.1f} {speedup:>14.2f}"
        )
    rows.append("shape: PoA messages/tx grow ~linearly, PBFT ~quadratically in peers; "
                "sharded execution recovers a ~constant-factor speedup (A3)")
    metrics = {
        f"{consensus}_{n_peers}": {
            "throughput_tx_per_s": throughput, "mean_latency_s": latency,
            "messages_per_tx": messages, "shard_speedup": speedup,
            "committed": committed,
        }
        for (consensus, n_peers), (throughput, latency, messages, speedup, committed)
        in results.items()
    }
    metrics["trace_path"] = str(TRACE_PATH)
    emit(benchmark, "E9 — consensus scalability sweep (4-shard parallel execution)",
         rows, metrics=metrics)
    # PBFT must cost more messages than PoA at every size, growing faster.
    for n_peers in PEER_COUNTS:
        assert results[("pbft", n_peers)][2] > results[("poa", n_peers)][2]
    poa_growth = results[("poa", 16)][2] / results[("poa", 4)][2]
    pbft_growth = results[("pbft", 16)][2] / results[("pbft", 4)][2]
    assert pbft_growth > poa_growth
    assert all(r[3] > 1.5 for r in results.values())  # sharding pays off
