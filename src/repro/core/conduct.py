"""The AI Blockchain Platform Management Act, enforced (§V).

"All participants in the AI blockchain platform agree to abide by the
AI Blockchain Platform Management Act … economic incentives to reward
individuals for flagging behaviors that do not meet the standards."

Mechanics: any registered identity may file a conduct report against
another (staking a small amount against frivolous reporting); an
adjudicator — governance here, a checker panel in a larger deployment —
upholds or dismisses it.  Upheld reports pay the reporter a bounty and
give the accused a strike; at :data:`SUSPENSION_STRIKES` strikes the
account is suspended, which the newsroom contract enforces by refusing
its drafts.  Dismissed reports forfeit the reporter's stake, so
flag-spamming is costly too.
"""

from __future__ import annotations

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.core.identity import identity_key

__all__ = ["ConductContract", "CATEGORIES", "SUSPENSION_STRIKES", "suspension_key"]

CATEGORIES = ("fake-news", "spam", "plagiarism", "harassment", "impersonation")
SUSPENSION_STRIKES = 3
REPORT_BOUNTY = 2.0


def report_key(report_id: str) -> str:
    return f"conduct:{report_id}"


def strikes_key(address: str) -> str:
    return f"strikes:{address}"


def suspension_key(address: str) -> str:
    return f"suspended:{address}"


class ConductContract(Contract):
    """Conduct reports, adjudication, strikes, and suspension."""

    name = "conduct"

    @contract_method
    def file_report(
        self,
        ctx: ContractContext,
        report_id: str,
        accused: str,
        article_id: str,
        category: str,
        stake: float,
    ):
        """Flag an account's behaviour (stake required)."""
        reporter = ctx.get(identity_key(ctx.caller))
        ctx.require(reporter is not None, "only registered identities may report")
        ctx.require(category in CATEGORIES, f"unknown category {category!r}; valid: {CATEGORIES}")
        ctx.require(stake > 0, "stake must be positive")
        ctx.require(ctx.get(identity_key(accused)) is not None, "accused is not a registered identity")
        ctx.require(accused != ctx.caller, "cannot report yourself")
        key = report_key(report_id)
        ctx.require(ctx.get(key) is None, f"report {report_id} already filed")
        record = {
            "report_id": report_id,
            "reporter": ctx.caller,
            "accused": accused,
            "article_id": article_id,
            "category": category,
            "stake": stake,
            "status": "open",
            "filed_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit("conduct-reported", report_id=report_id, accused=accused, category=category)
        return record

    @contract_method
    def adjudicate(self, ctx: ContractContext, report_id: str, upheld: bool):
        """Decide an open report.

        Upheld: reporter's stake returns plus the bounty; the accused
        takes a strike and is suspended at the threshold.  Dismissed:
        the stake is forfeited.
        """
        adjudicator = ctx.get(identity_key(ctx.caller))
        ctx.require(
            adjudicator is not None and adjudicator["verified"],
            "only verified identities may adjudicate",
        )
        key = report_key(report_id)
        record = ctx.get(key)
        ctx.require(record is not None, f"no report {report_id}")
        ctx.require(record["status"] == "open", "report already adjudicated")
        ctx.require(ctx.caller != record["reporter"], "reporters cannot adjudicate their own report")
        if upheld:
            record["status"] = "upheld"
            record["payout"] = record["stake"] + REPORT_BOUNTY
            strikes = (ctx.get(strikes_key(record["accused"])) or 0) + 1
            ctx.put(strikes_key(record["accused"]), strikes)
            if strikes >= SUSPENSION_STRIKES:
                ctx.put(suspension_key(record["accused"]), True)
                ctx.emit("account-suspended", address=record["accused"], strikes=strikes)
        else:
            record["status"] = "dismissed"
            record["payout"] = 0.0  # stake forfeited
        record["adjudicated_by"] = ctx.caller
        record["adjudicated_at"] = ctx.timestamp
        ctx.put(key, record)
        ctx.emit("conduct-adjudicated", report_id=report_id, upheld=bool(upheld))
        return record

    @contract_method
    def standing(self, ctx: ContractContext, address: str):
        """(strikes, suspended) for an account — the public record."""
        return {
            "strikes": ctx.get(strikes_key(address)) or 0,
            "suspended": bool(ctx.get(suspension_key(address))),
        }

    @contract_method
    def reinstate(self, ctx: ContractContext, address: str):
        """Lift a suspension (verified adjudicators only); strikes reset."""
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(
            caller is not None and caller["verified"],
            "only verified identities may reinstate",
        )
        ctx.require(ctx.get(suspension_key(address)), "account is not suspended")
        ctx.delete(suspension_key(address))
        ctx.put(strikes_key(address), 0)
        ctx.emit("account-reinstated", address=address)
        return True
