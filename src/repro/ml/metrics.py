"""Classification metrics: accuracy, P/R/F1, confusion matrix, ROC-AUC.

Conventions: label 1 is the positive ("fake") class; scores are higher-
means-more-positive.  AUC is computed by the Mann-Whitney rank statistic
with midrank tie handling, so it is exact for any score distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MLError

__all__ = [
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_matrix",
    "roc_auc",
    "precision_at_k",
    "ClassificationReport",
    "classification_report",
]


def _check(y_true: np.ndarray, y_other: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_other = np.asarray(y_other)
    if len(y_true) != len(y_other):
        raise MLError("length mismatch between labels and predictions/scores")
    if len(y_true) == 0:
        raise MLError("empty evaluation set")
    return y_true, y_other


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[int, int, int, int]:
    """(true_negative, false_positive, false_negative, true_positive)."""
    y_true, y_pred = _check(y_true, y_pred)
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    return tn, fp, fn, tp


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    _, fp, _, tp = confusion_matrix(y_true, y_pred)
    return tp / (tp + fp) if (tp + fp) else 0.0


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    _, _, fn, tp = confusion_matrix(y_true, y_pred)
    return tp / (tp + fn) if (tp + fn) else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Exact AUC via midranks (equivalent to the trapezoidal ROC area)."""
    y_true, scores = _check(y_true, np.asarray(scores, dtype=np.float64))
    positives = int(np.sum(y_true == 1))
    negatives = len(y_true) - positives
    if positives == 0 or negatives == 0:
        raise MLError("AUC needs both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0  # midrank, 1-based
        i = j + 1
    positive_rank_sum = float(ranks[np.asarray(y_true) == 1].sum())
    return (positive_rank_sum - positives * (positives + 1) / 2.0) / (positives * negatives)


def precision_at_k(y_true: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of the k highest-scored items that are positive."""
    y_true, scores = _check(y_true, np.asarray(scores, dtype=np.float64))
    if not 1 <= k <= len(y_true):
        raise MLError(f"k={k} out of range for {len(y_true)} items")
    top = np.argsort(-scores, kind="mergesort")[:k]
    return float(np.mean(np.asarray(y_true)[top] == 1))


@dataclass(frozen=True)
class ClassificationReport:
    """All headline metrics for one model/dataset pair."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    auc: float

    def as_row(self, name: str) -> str:
        return (
            f"{name:<24} acc={self.accuracy:.3f} p={self.precision:.3f} "
            f"r={self.recall:.3f} f1={self.f1:.3f} auc={self.auc:.3f}"
        )


def classification_report(
    y_true: np.ndarray, y_pred: np.ndarray, scores: np.ndarray
) -> ClassificationReport:
    return ClassificationReport(
        accuracy=accuracy(y_true, y_pred),
        precision=precision(y_true, y_pred),
        recall=recall(y_true, y_pred),
        f1=f1_score(y_true, y_pred),
        auc=roc_auc(y_true, scores),
    )
