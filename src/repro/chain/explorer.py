"""Chain explorer: human-readable views over blocks and transactions.

The inspection surface a block-explorer UI would sit on: summaries of
the chain head, any block, any transaction, and the event stream — all
plain dicts/strings so they serialize straight into a JSON API or a
terminal table.
"""

from __future__ import annotations

from typing import Any

from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.transaction import Transaction

__all__ = ["chain_summary", "describe_block", "describe_transaction", "find_transactions"]


def chain_summary(ledger: Ledger) -> dict[str, Any]:
    """Head-of-chain overview."""
    head = ledger.head
    valid = sum(1 for _ in ledger.transactions(valid_only=True))
    total = ledger.total_transactions()
    contracts: dict[str, int] = {}
    for committed in ledger.transactions(valid_only=False):
        name = committed.transaction.contract
        contracts[name] = contracts.get(name, 0) + 1
    return {
        "height": ledger.height,
        "head_hash": head.block_hash,
        "head_timestamp": head.timestamp,
        "blocks": len(ledger),
        "transactions": total,
        "valid_transactions": valid,
        "invalid_transactions": total - valid,
        "transactions_by_contract": dict(sorted(contracts.items())),
    }


def describe_block(block: Block) -> dict[str, Any]:
    """One block's header plus transaction digest lines."""
    return {
        "height": block.height,
        "hash": block.block_hash,
        "prev_hash": block.prev_hash,
        "merkle_root": block.merkle_root,
        "timestamp": block.timestamp,
        "proposer": block.proposer,
        "tx_count": len(block),
        "transactions": [
            f"{tx.tx_id[:12]} {tx.contract}.{tx.method} from {tx.sender[:14]}"
            for tx in block.transactions
        ],
    }


def describe_transaction(ledger: Ledger, tx_id: str) -> dict[str, Any] | None:
    """Full commitment record for one transaction (None if unknown)."""
    committed = ledger.get_transaction(tx_id)
    if committed is None:
        return None
    tx: Transaction = committed.transaction
    return {
        "tx_id": tx.tx_id,
        "block_height": committed.block_height,
        "index_in_block": committed.tx_index,
        "valid": committed.valid,
        "sender": tx.sender,
        "contract": tx.contract,
        "method": tx.method,
        "args": tx.args,
        "timestamp": tx.timestamp,
        "reads": len(tx.read_set),
        "writes": len(tx.write_set),
        "events": [event.get("kind") for event in tx.events],
        "endorsements": [e.peer_id for e in tx.endorsements],
        "return_value": tx.return_value,
    }


def find_transactions(
    ledger: Ledger,
    contract: str | None = None,
    method: str | None = None,
    sender: str | None = None,
    limit: int = 50,
) -> list[dict[str, Any]]:
    """Filtered transaction search, newest first."""
    matches = []
    for committed in reversed(list(ledger.transactions(valid_only=False))):
        tx = committed.transaction
        if contract is not None and tx.contract != contract:
            continue
        if method is not None and tx.method != method:
            continue
        if sender is not None and tx.sender != sender:
            continue
        matches.append(
            {
                "tx_id": tx.tx_id,
                "block_height": committed.block_height,
                "contract": tx.contract,
                "method": tx.method,
                "sender": tx.sender,
                "valid": committed.valid,
            }
        )
        if len(matches) >= limit:
            break
    return matches
