"""Sharded parallel execution planning (ICDCS'18 substrate)."""

import random

import pytest

from repro.chain.consensus.sharded import ShardedExecutor
from repro.chain.transaction import Transaction
from repro.crypto import KeyPair


def _tx(nonce, reads=(), writes=()):
    tx = Transaction.create(KeyPair.generate(random.Random(nonce)), "c", "m", {}, nonce=nonce)
    return tx.with_execution(
        read_set={k: 1 for k in reads},
        write_set={k: "v" for k in writes},
        events=(),
        return_value=None,
        endorsements=(),
    )


def test_disjoint_txs_parallelize():
    executor = ShardedExecutor(n_shards=4)
    txs = [_tx(i, writes=(f"key-{i}",)) for i in range(16)]
    schedule = executor.plan_block(txs)
    assert schedule.cross_shard_count == 0
    assert schedule.local_count == 16
    assert schedule.parallel_makespan < schedule.sequential_makespan
    assert schedule.speedup > 1.5


def test_single_shard_no_speedup():
    executor = ShardedExecutor(n_shards=1)
    txs = [_tx(i, writes=(f"key-{i}",)) for i in range(8)]
    schedule = executor.plan_block(txs)
    assert schedule.speedup == pytest.approx(1.0)


def test_cross_shard_txs_serialize():
    executor = ShardedExecutor(n_shards=4)
    # Each tx touches many keys -> almost surely spans shards.
    txs = [_tx(i, reads=tuple(f"r{i}-{j}" for j in range(6)), writes=(f"w{i}",)) for i in range(6)]
    schedule = executor.plan_block(txs)
    assert schedule.cross_shard_count > 0
    assert schedule.cross_shard_gas > 0


def test_empty_rwset_goes_to_shard_zero():
    executor = ShardedExecutor(n_shards=4)
    schedule = executor.plan_block([_tx(1)])
    assert schedule.shard_loads[0] > 0
    assert schedule.local_count == 1


def test_cumulative_accounting():
    executor = ShardedExecutor(n_shards=2)
    executor.plan_block([_tx(i, writes=(f"k{i}",)) for i in range(4)])
    executor.plan_block([_tx(i + 10, writes=(f"k{i+10}",)) for i in range(4)])
    assert executor.blocks_planned == 2
    assert executor.total_sequential_gas >= executor.total_parallel_gas
    assert executor.cumulative_speedup >= 1.0


def test_more_shards_never_slower():
    txs = [_tx(i, writes=(f"key-{i}",)) for i in range(32)]
    makespans = []
    for shards in (1, 2, 4, 8):
        schedule = ShardedExecutor(n_shards=shards).plan_block(list(txs))
        makespans.append(schedule.parallel_makespan)
    assert makespans == sorted(makespans, reverse=True)


def test_invalid_shard_count():
    with pytest.raises(ValueError):
        ShardedExecutor(n_shards=0)
