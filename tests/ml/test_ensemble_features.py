"""Stylometric features, ensemble fusion, FakeNewsScorer contract."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import FEATURE_NAMES, FakeNewsScorer, StylometricExtractor, roc_auc


def test_feature_vector_shape():
    X = StylometricExtractor().transform(["a plain sentence.", "another one here."])
    assert X.shape == (2, len(FEATURE_NAMES))


def test_emotional_rate_detects_loaded_language():
    extractor = StylometricExtractor()
    neutral = "the committee approved the budget at the capitol"
    loaded = "the shocking outrageous scandal is a devastating disaster"
    X = extractor.transform([neutral, loaded])
    emotional_idx = FEATURE_NAMES.index("emotional_rate")
    assert X[1, emotional_idx] > X[0, emotional_idx]


def test_clickbait_hits_counted():
    extractor = StylometricExtractor()
    text = "you will not believe what happened next. this changes everything."
    X = extractor.transform([text])
    assert X[0, FEATURE_NAMES.index("clickbait_hits")] == 2.0


def test_attribution_rate():
    extractor = StylometricExtractor()
    sourced = "the figures were correct, said the minister. she stated the plan."
    unsourced = "the figures were wrong and everyone knows it already now."
    X = extractor.transform([sourced, unsourced])
    idx = FEATURE_NAMES.index("attribution_rate")
    assert X[0, idx] > X[1, idx]


def test_empty_text_is_finite():
    X = StylometricExtractor().transform([""])
    assert np.all(np.isfinite(X))


def test_scorer_end_to_end(trained_scorer, eval_corpus):
    texts, labels = eval_corpus.texts_and_labels()
    scores = trained_scorer.score(texts)
    assert scores.shape == (len(texts),)
    assert np.all((scores >= 0) & (scores <= 1))
    assert roc_auc(np.array(labels), scores) > 0.85


def test_scorer_score_one(trained_scorer, eval_corpus):
    article = eval_corpus.articles[0]
    score = trained_scorer.score_one(article.text)
    assert 0.0 <= score <= 1.0


def test_scorer_predict_threshold(trained_scorer, eval_corpus):
    texts, labels = eval_corpus.texts_and_labels()
    predictions = trained_scorer.predict(texts)
    assert float(np.mean(predictions == np.array(labels))) > 0.8


def test_scorer_unfitted_raises():
    with pytest.raises(MLError):
        FakeNewsScorer().score(["text"])


def test_scorer_length_mismatch():
    with pytest.raises(MLError):
        FakeNewsScorer().fit(["a"], [0, 1])


def test_ensemble_beats_or_matches_worst_member(trained_scorer, eval_corpus):
    """Fusion sanity: the ensemble shouldn't collapse below chance."""
    texts, labels = eval_corpus.texts_and_labels()
    assert roc_auc(np.array(labels), trained_scorer.score(texts)) > 0.5
