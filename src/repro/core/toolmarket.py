"""AI detection-tool marketplace (§V).

"As the community grows, so will the demand for new artificial
intelligence software tools, fake news detection tools and professional
services, and begin to develop an economy similar to the app store that
motivates and screens ethical developers."

Developers register scoring tools (staking tokens against misbehaviour);
every invocation accrues a royalty; once an article's final verdict
lands, each tool's call is scored for agreement, building an on-chain
accuracy record.  Tools whose accuracy collapses can be slashed and
delisted — screening, not just motivating.
"""

from __future__ import annotations

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.core.identity import identity_key

__all__ = ["ToolMarketContract", "tool_key"]

# A tool whose rolling accuracy drops below this is delisted on slash.
MIN_ACCURACY = 0.55
# Calls before the accuracy gate applies (warm-up grace).
MIN_CALLS_FOR_GATE = 10


def tool_key(tool_id: str) -> str:
    return f"tool:{tool_id}"


class ToolMarketContract(Contract):
    """Registry + usage accounting + quality screening for AI tools."""

    name = "toolmarket"

    @contract_method
    def register_tool(
        self, ctx: ContractContext, tool_id: str, description: str, fee: float, stake: float
    ):
        """List a detection tool (verified developers only)."""
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(
            caller is not None and caller["verified"] and caller["role"] == "developer",
            "only verified developers may register tools",
        )
        ctx.require(fee >= 0 and stake > 0, "fee must be >= 0 and stake positive")
        key = tool_key(tool_id)
        ctx.require(ctx.get(key) is None, f"tool {tool_id} already registered")
        record = {
            "tool_id": tool_id,
            "developer": ctx.caller,
            "description": description,
            "fee": fee,
            "stake": stake,
            "calls": 0,
            "correct": 0,
            "royalties_accrued": 0.0,
            "listed": True,
            "registered_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit("tool-registered", tool_id=tool_id, fee=fee)
        return record

    @contract_method
    def record_invocation(self, ctx: ContractContext, tool_id: str, article_id: str, score: float):
        """Account one scoring call; the caller owes the tool's fee."""
        key = tool_key(tool_id)
        record = ctx.get(key)
        ctx.require(record is not None, f"no tool {tool_id}")
        ctx.require(record["listed"], f"tool {tool_id} is delisted")
        ctx.require(0.0 <= score <= 1.0, "score must be in [0, 1]")
        record["calls"] += 1
        record["royalties_accrued"] += record["fee"]
        ctx.put(key, record)
        ctx.put(
            f"toolcall:{tool_id}:{article_id}",
            {"score": score, "caller": ctx.caller, "at": ctx.timestamp},
        )
        ctx.emit("tool-invoked", tool_id=tool_id, article_id=article_id, score=score)
        return record["calls"]

    @contract_method
    def record_outcome(self, ctx: ContractContext, tool_id: str, article_id: str, final_fake: bool):
        """Settle one call against the article's final verdict.

        The tool was *correct* if its score landed on the right side of
        0.5.  Accuracy is public and immutable — the screening record.
        """
        call = ctx.get(f"toolcall:{tool_id}:{article_id}")
        ctx.require(call is not None, f"tool {tool_id} never scored {article_id}")
        ctx.require(not call.get("settled"), "outcome already recorded")
        key = tool_key(tool_id)
        record = ctx.get(key)
        predicted_fake = call["score"] >= 0.5
        correct = predicted_fake == bool(final_fake)
        if correct:
            record["correct"] += 1
        call["settled"] = True
        call["correct"] = correct
        ctx.put(f"toolcall:{tool_id}:{article_id}", call)
        ctx.put(key, record)
        ctx.emit("tool-settled", tool_id=tool_id, article_id=article_id, correct=correct)
        return correct

    @contract_method
    def slash_if_unreliable(self, ctx: ContractContext, tool_id: str):
        """Anyone may trigger the quality gate; the record decides.

        A tool past its warm-up whose accuracy sits below the floor
        forfeits its stake and is delisted.
        """
        key = tool_key(tool_id)
        record = ctx.get(key)
        ctx.require(record is not None, f"no tool {tool_id}")
        ctx.require(record["listed"], "tool already delisted")
        ctx.require(record["calls"] >= MIN_CALLS_FOR_GATE, "tool still in warm-up grace")
        accuracy = record["correct"] / record["calls"]
        ctx.require(
            accuracy < MIN_ACCURACY,
            f"accuracy {accuracy:.2f} is above the {MIN_ACCURACY} floor",
        )
        record["listed"] = False
        forfeited = record["stake"]
        record["stake"] = 0.0
        ctx.put(key, record)
        ctx.emit("tool-slashed", tool_id=tool_id, forfeited=forfeited, accuracy=accuracy)
        return forfeited

    @contract_method
    def get_tool(self, ctx: ContractContext, tool_id: str):
        return ctx.get(tool_key(tool_id))

    @contract_method
    def list_tools(self, ctx: ContractContext, listed_only: bool = True):
        """Tool ids ranked by accuracy (warm-up tools last)."""
        tools = []
        for key in ctx.keys_with_prefix("tool:"):
            record = ctx.get(key)
            if listed_only and not record["listed"]:
                continue
            accuracy = record["correct"] / record["calls"] if record["calls"] else -1.0
            tools.append((accuracy, record["tool_id"]))
        tools.sort(key=lambda pair: (-pair[0], pair[1]))
        return [tool_id for _, tool_id in tools]
