"""Vectorized cascade engine: compilation, determinism, and the
scalar-oracle equivalence contract.

The deep property sweep lives in ``tests/props/test_cascade_equivalence``;
these tests pin the concrete mechanics — CSR layout, keyed draws,
generation-stamped attention, the bulk-statistics path — on worlds small
enough to check by hand.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.corpus import CorpusGenerator
from repro.errors import SimulationError
from repro.social import (
    CascadeResult,
    CascadeRunner,
    CompiledCascadeGraph,
    FastCascadeRunner,
    KeyedDraws,
    bind_agents,
    build_social_world,
    interconnect,
    make_botnet,
    make_population,
    scale_free_follow_graph,
    small_world_follow_graph,
)


def _world(n_agents=120, seed=3):
    graph, agents, corpus = build_social_world(n_agents=n_agents, seed=seed)
    return graph, agents, corpus


def _clear_seen(graph):
    for node in graph.nodes():
        graph.nodes[node]["agent"].seen.clear()


def _seed_pair(corpus):
    fact = corpus.factual(topic="elections", timestamp=0.0)
    fake = corpus.insertion_fake(fact, "agent-seed", 0.0)
    return fact, fake


def _run_both(graph, seed_nodes, *, n_rounds=6, draws_seed=9, corpus_seed=55,
              scalar_kwargs=None, fast_kwargs=None):
    """Run scalar and fast engines off one keyed draw source and fresh,
    identically seeded corpora; returns (scalar_result, fast_result)."""
    draws = KeyedDraws(seed=draws_seed)
    _clear_seen(graph)
    corpus_a = CorpusGenerator(seed=corpus_seed)
    seeds_a = list(zip(seed_nodes, _seed_pair(corpus_a)))
    scalar = CascadeRunner(
        graph, corpus_a, rng=random.Random(1), draws=draws, **(scalar_kwargs or {})
    ).run(seeds_a, n_rounds=n_rounds)
    _clear_seen(graph)
    corpus_b = CorpusGenerator(seed=corpus_seed)
    seeds_b = list(zip(seed_nodes, _seed_pair(corpus_b)))
    fast = FastCascadeRunner(
        graph, corpus_b, seed=1, draws=draws, **(fast_kwargs or {})
    ).run(seeds_b, n_rounds=n_rounds)
    return scalar, fast


def assert_identical(scalar: CascadeResult, fast: CascadeResult) -> None:
    assert scalar.events == fast.events
    assert scalar.articles == fast.articles
    assert scalar.root_of == fast.root_of
    assert scalar.children_by_root == fast.children_by_root
    assert scalar.shares_by_round == fast.shares_by_round
    assert scalar.exposures_by_round == fast.exposures_by_round
    assert scalar.exposed_agents == fast.exposed_agents


# -- KeyedDraws -------------------------------------------------------------

def test_keyed_draws_scalar_and_vector_paths_agree_bitwise():
    draws = KeyedDraws(seed=42)
    keys = np.array([draws.key(f"art-{i:06d}") for i in range(50)], dtype=np.uint64)
    agents = np.arange(50, dtype=np.int64) * 7 % 41
    for purpose in range(4):
        vector = draws.unit_array(keys, agents, purpose)
        scalar = [draws.unit(int(k), int(a), purpose) for k, a in zip(keys, agents)]
        assert vector.tolist() == scalar
        assert all(0.0 <= u < 1.0 for u in scalar)


def test_keyed_draws_depend_on_every_component():
    draws = KeyedDraws(seed=0)
    key = draws.key("art-000001")
    base = draws.unit(key, 5, 0)
    assert base != draws.unit(key, 6, 0)
    assert base != draws.unit(key, 5, 1)
    assert base != draws.unit(draws.key("art-000002"), 5, 0)
    assert base != KeyedDraws(seed=1).unit(key, 5, 0)
    # Same inputs, same seed: a pure function.
    assert base == KeyedDraws(seed=0).unit(key, 5, 0)


# -- compilation ------------------------------------------------------------

def test_compiled_graph_matches_networkx_adjacency():
    graph, agents, _ = _world(n_agents=80, seed=5)
    compiled = CompiledCascadeGraph.from_graph(graph)
    nodes = sorted(graph.nodes())
    assert compiled.n_agents == len(nodes)
    assert compiled.n_edges == graph.number_of_edges()
    index = {node: i for i, node in enumerate(nodes)}
    for node in nodes:
        i = index[node]
        row = compiled.indices[compiled.indptr[i]:compiled.indptr[i + 1]]
        assert [nodes[j] for j in row] == list(graph.successors(node))
        agent = graph.nodes[node]["agent"]
        assert compiled.agent_id(i) == agent.agent_id
        assert compiled.share_probability[i] == agent.share_probability
        assert compiled.attention[i] == agent.attention
        assert compiled.out_degree(i) == graph.out_degree(node)


def test_compile_requires_bound_agents():
    graph = scale_free_follow_graph(30, seed=1)
    with pytest.raises(SimulationError):
        CompiledCascadeGraph.from_graph(graph)


def test_compiled_ring_codes_group_ring_members():
    rng = random.Random(2)
    graph = scale_free_follow_graph(60, seed=2)
    agents = make_population(60, rng, bot_fraction=0.0)
    bind_agents(graph, agents)
    recruits = make_botnet(agents, size=5, rng=rng, ring_id="farm")
    interconnect(graph, recruits)
    compiled = CompiledCascadeGraph.from_graph(graph)
    ring_ids = {a.agent_id for a in recruits}
    codes = {
        compiled.ring_codes[i]
        for i in range(compiled.n_agents)
        if compiled.agent_id(i) in ring_ids
    }
    assert len(codes) == 1 and codes != {-1}
    outside = {
        compiled.ring_codes[i]
        for i in range(compiled.n_agents)
        if compiled.agent_id(i) not in ring_ids
    }
    assert outside == {-1}


def test_synthesize_is_deterministic_and_well_formed():
    a = CompiledCascadeGraph.synthesize(5_000, mean_degree=6.0, seed=13)
    b = CompiledCascadeGraph.synthesize(5_000, mean_degree=6.0, seed=13)
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.kind_codes, b.kind_codes)
    c = CompiledCascadeGraph.synthesize(5_000, mean_degree=6.0, seed=14)
    assert not np.array_equal(a.indices, c.indices)
    # No self-follows, targets in range, degrees positive.
    own = np.repeat(np.arange(a.n_agents), np.diff(a.indptr))
    assert not np.any(a.indices == own)
    assert a.indices.min() >= 0 and a.indices.max() < a.n_agents
    assert np.all(np.diff(a.indptr) >= 1)
    assert a.node_to_index(123) == 123
    with pytest.raises(SimulationError):
        a.node_to_index(5_000)


# -- scalar-vs-fast equivalence (the oracle contract) -----------------------

def test_keyed_equivalence_on_scale_free_world():
    graph, _, _ = _world(n_agents=150, seed=21)
    scalar, fast = _run_both(graph, [3, 57], n_rounds=8)
    assert_identical(scalar, fast)
    assert sum(scalar.shares_by_round) > 0  # the check must not be vacuous


def test_keyed_equivalence_on_small_world_oracle_suite():
    """The acceptance-criteria suite: small-world graphs, several seeds,
    byte-identical output."""
    for seed in (0, 7, 19):
        graph = small_world_follow_graph(90, k_neighbors=6, rewire=0.2, seed=seed)
        agents = make_population(90, random.Random(seed), bot_fraction=0.1)
        bind_agents(graph, agents)
        scalar, fast = _run_both(
            graph, [0, 11], n_rounds=7, draws_seed=seed, corpus_seed=seed + 40
        )
        assert_identical(scalar, fast)


def test_keyed_equivalence_under_flag_and_promotion():
    graph, _, _ = _world(n_agents=150, seed=8)
    flagged = lambda aid: aid.endswith(("0", "4", "8"))
    promoted = lambda aid: aid.endswith(("1", "5"))
    scalar, fast = _run_both(
        graph, [2, 9], n_rounds=7,
        scalar_kwargs={"flagged": flagged, "promoted": promoted},
        fast_kwargs={"flagged": flagged, "promoted": promoted},
    )
    assert_identical(scalar, fast)


def test_keyed_equivalence_with_botnet_ring():
    rng = random.Random(4)
    graph = scale_free_follow_graph(140, seed=4)
    agents = make_population(140, rng, bot_fraction=0.0)
    bind_agents(graph, agents)
    recruits = make_botnet(agents, size=8, rng=rng, ring_id="farm")
    interconnect(graph, recruits)
    start = next(
        node for node, attrs in graph.nodes(data=True)
        if attrs["agent"].agent_id == recruits[0].agent_id
    )
    scalar, fast = _run_both(graph, [start, 1], n_rounds=7)
    assert_identical(scalar, fast)
    assert any(e.agent_id in {a.agent_id for a in recruits} for e in scalar.events)


def test_on_share_hook_fires_identically():
    graph, _, _ = _world(n_agents=100, seed=6)
    seen_scalar, seen_fast = [], []
    scalar, fast = _run_both(
        graph, [0, 5], n_rounds=5,
        scalar_kwargs={"on_share": lambda e, a: seen_scalar.append((e, a))},
        fast_kwargs={"on_share": lambda e, a: seen_fast.append((e, a))},
    )
    assert seen_scalar == seen_fast
    assert [e for e, _ in seen_scalar] == scalar.events


# -- fast engine on its own -------------------------------------------------

def test_fast_engine_deterministic_in_seed_without_draw_source():
    graph, _, _ = _world(n_agents=120, seed=10)
    compiled = CompiledCascadeGraph.from_graph(graph)

    def run(seed):
        corpus = CorpusGenerator(seed=31)
        seeds = list(zip([0, 3], _seed_pair(corpus)))
        return FastCascadeRunner(compiled, corpus, seed=seed).run(seeds, n_rounds=6)

    first, again = run(5), run(5)
    assert first.events == again.events
    assert first.exposed_agents == again.exposed_agents
    other = run(6)
    assert first.events != other.events


def test_unmaterialized_run_reports_reach_via_counts():
    graph, _, _ = _world(n_agents=120, seed=12)
    compiled = CompiledCascadeGraph.from_graph(graph)

    def run(materialize):
        corpus = CorpusGenerator(seed=33)
        seeds = list(zip([1, 7], _seed_pair(corpus)))
        return FastCascadeRunner(compiled, corpus, seed=2).run(
            seeds, n_rounds=6, materialize_exposed=materialize
        )

    full, lean = run(True), run(False)
    assert lean.exposed_agents == {}
    for root in full.exposed_agents:
        assert lean.reach(root) == full.reach(root) == len(full.exposed_agents[root])
    assert full.events == lean.events


def test_descendants_uses_lineage_index():
    graph, _, _ = _world(n_agents=120, seed=14)
    corpus = CorpusGenerator(seed=35)
    fact, fake = _seed_pair(corpus)
    result = FastCascadeRunner(graph, corpus, seed=3).run(
        [(0, fact), (4, fake)], n_rounds=6
    )
    for root in (fact.article_id, fake.article_id):
        lineage = result.descendants(root)
        assert lineage[0].article_id == root
        assert {a.article_id for a in lineage} == {
            aid for aid, r in result.root_of.items() if r == root
        }
    # Hand-assembled results (no index) fall back to the scan.
    bare = CascadeResult()
    bare.articles = dict(result.articles)
    bare.root_of = dict(result.root_of)
    assert {a.article_id for a in bare.descendants(fake.article_id)} == {
        a.article_id for a in result.descendants(fake.article_id)
    }


# -- bulk statistics path ---------------------------------------------------

def test_run_stats_structural_invariants_at_scale():
    compiled = CompiledCascadeGraph.synthesize(20_000, mean_degree=8.0, seed=17)
    runner = FastCascadeRunner(compiled, seed=5)
    stats = runner.run_stats([0, 5_000, 10_000], n_rounds=10, appeal=2.0, fake=True)
    assert stats.n_agents == 20_000
    curves = [stats.reach_curve(i) for i in range(3)]
    for curve in curves:
        assert all(b >= a for a, b in zip(curve, curve[1:]))  # monotone
        assert 1 <= curve[-1] <= 20_000
    assert all(s >= 0 for s in stats.shares_by_round)
    assert stats.total_shares == int(stats.shares_by_agent.sum())
    assert stats.candidates_examined >= stats.total_shares


def test_run_stats_flag_damping_orders_reach():
    compiled = CompiledCascadeGraph.synthesize(20_000, mean_degree=8.0, seed=19)
    open_run = FastCascadeRunner(compiled, seed=7).run_stats(
        [0], n_rounds=10, appeal=2.4, fake=True
    )
    damped = FastCascadeRunner(compiled, seed=7).run_stats(
        [0], n_rounds=10, appeal=2.4, fake=True, flag_round=2, flagged_roots=[0]
    )
    assert damped.reach(0) < open_run.reach(0)
    # Before the flag lands the two runs see identical worlds.
    assert damped.reach_curve(0)[:2] == open_run.reach_curve(0)[:2]


def test_run_stats_promotion_boosts_reach():
    compiled = CompiledCascadeGraph.synthesize(20_000, mean_degree=8.0, seed=23)
    plain = FastCascadeRunner(compiled, seed=9).run_stats(
        [0], n_rounds=10, appeal=1.1, fake=False
    )
    promoted = FastCascadeRunner(compiled, seed=9).run_stats(
        [0], n_rounds=10, appeal=1.1, fake=False,
        flag_round=0, promoted_roots=[0],
    )
    assert promoted.reach(0) > plain.reach(0)


def test_run_stats_is_deterministic_in_seed():
    compiled = CompiledCascadeGraph.synthesize(10_000, mean_degree=6.0, seed=29)
    a = FastCascadeRunner(compiled, seed=11).run_stats([0, 9], n_rounds=8)
    b = FastCascadeRunner(compiled, seed=11).run_stats([0, 9], n_rounds=8)
    assert a.shares_by_round == b.shares_by_round
    assert np.array_equal(a.reach_curves, b.reach_curves)
    assert np.array_equal(a.shares_by_agent, b.shares_by_agent)


def test_run_without_corpus_requires_stats_path():
    compiled = CompiledCascadeGraph.synthesize(100, seed=1)
    runner = FastCascadeRunner(compiled, seed=1)
    with pytest.raises(SimulationError):
        runner.run([(0, None)], n_rounds=2)
