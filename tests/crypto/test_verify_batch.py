"""Exactness of batched Ed25519 verification.

``verify_batch`` must agree with per-signature ``verify`` on every
input — that is the whole contract.  The oracle here is
``_verify_reference``, the seed-era implementation (two independent
scalar multiplications), kept in the module precisely so these tests
and the micro-benchmark can compare against unmodified seed semantics.

Covered: mixed valid/invalid batches, forged-signature bisection,
malformed encodings, small-order public keys, non-canonical scalars,
torsion-defective signatures (the case where reducing scalars mod L
instead of 8L would produce a wrong verdict), determinism, and the
interplay with the digest-keyed verify cache and the bounded
decompressed-point cache.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ed25519 as e


@pytest.fixture(autouse=True)
def clean_caches():
    e.verify_cache_clear()
    e.point_cache_clear()
    e.batch_stats_clear()
    yield
    e.verify_cache_clear()
    e.point_cache_clear()
    e.batch_stats_clear()


def _signed(i: int, msg: bytes | None = None):
    seed = bytes([i]) * 32
    pk = e.generate_public_key(seed)
    message = msg if msg is not None else f"article-{i}".encode()
    return (pk, message, e.sign(seed, message))


# A reusable pool of honestly-signed items (signing is the slow part).
_POOL = [_signed(i) for i in range(8)]


def _oracle(items):
    return [e._verify_reference(pk, m, s) for pk, m, s in items]


def _run_batch(items):
    e.verify_cache_clear()  # force the curve path, not cached verdicts
    return e.verify_batch(items)


def test_empty_batch():
    assert e.verify_batch([]) == []


def test_all_valid_no_bisection():
    assert _run_batch(_POOL) == [True] * len(_POOL)
    assert e.batch_stats()["bisections"] == 0
    assert e.batch_stats()["calls"] == 1
    assert e.batch_stats()["items"] == len(_POOL)


def test_single_item_matches_verify():
    item = _POOL[0]
    assert _run_batch([item]) == [True]
    forged = (item[0], item[1], bytes(64))
    assert _run_batch([forged]) == [False]


def test_forged_signature_bisected_out():
    items = list(_POOL)
    bad = bytearray(items[3][2])
    bad[40] ^= 0xFF
    items[3] = (items[3][0], items[3][1], bytes(bad))
    verdicts = _run_batch(items)
    assert verdicts == _oracle(items)
    assert verdicts.count(False) == 1 and not verdicts[3]
    assert e.batch_stats()["bisections"] > 0


def test_mixed_malformed_and_invalid():
    items = [
        _POOL[0],
        (b"short-key", b"m", bytes(64)),                  # bad pk length
        (_POOL[1][0], _POOL[1][1], b"short"),             # bad sig length
        (bytes(32), b"m", bytes(64)),                     # small-order pk (y=0)
        (b"\xff" * 32, b"m", bytes(64)),                  # non-point pk encoding
        (_POOL[2][0], _POOL[2][1] + b"!", _POOL[2][2]),   # wrong message
        # non-canonical s >= L
        (_POOL[3][0], _POOL[3][1],
         _POOL[3][2][:32] + int.to_bytes(e._L, 32, "little")),
        _POOL[4],
    ]
    assert _run_batch(items) == _oracle(items)


def _small_order_point():
    """A torsion point of order dividing 8 (but not the identity),
    found by clearing the prime-order component of an arbitrary point."""
    rng = random.Random(5)
    while True:
        encoded = int.to_bytes(rng.getrandbits(255), 32, "little")
        try:
            p = e._point_decompress(encoded)
        except Exception:
            continue
        torsion = e._point_mul(e._L, p)
        if not e._point_equal(torsion, e._IDENTITY):
            return torsion


def test_torsion_defective_signature_rejected():
    """R' = R + T with T small-order: the cofactorless check fails, and
    the batch must agree.  This is the case that breaks if combined
    scalars on R/A are reduced mod L instead of mod 8L, or if the
    random coefficients were even."""
    torsion = _small_order_point()
    pk, msg, sig = _POOL[5]
    r_shifted = e._point_compress(e._point_add(e._point_decompress(sig[:32]), torsion))
    forged = (pk, msg, r_shifted + sig[32:])
    assert not e._verify_reference(*forged)
    items = [_POOL[0], forged, _POOL[1]]
    assert _run_batch(items) == [True, False, True]
    # And alone, so the defect cannot hide behind batch-mates:
    assert _run_batch([forged]) == [False]


def test_small_order_public_key_agrees():
    """A small-order A decompresses fine; verdicts (almost always
    False against honest h) must match the reference exactly."""
    small_pk = e._point_compress(_small_order_point())
    items = [(small_pk, b"news", bytes(64)), (small_pk, b"news", _POOL[0][2]), _POOL[6]]
    assert _run_batch(items) == _oracle(items)


def test_duplicate_items_in_one_batch():
    items = [_POOL[0], _POOL[0], _POOL[1], _POOL[0]]
    assert _run_batch(items) == [True, True, True, True]


def test_batch_is_deterministic():
    items = list(_POOL)
    bad = (items[2][0], items[2][1], bytes(64))
    items[2] = bad
    first = _run_batch(items)
    second = _run_batch(items)
    assert first == second == _oracle(items)


def test_batch_populates_verify_cache():
    e.verify_cache_clear()
    e.verify_batch(_POOL)
    stats = e.verify_cache_stats()
    assert stats["misses"] == len(_POOL)
    assert stats["size"] == len(_POOL)
    # Every later single verify is a cache hit: no curve math re-done.
    for item in _POOL:
        assert e.verify(*item)
    assert e.verify_cache_stats()["hits"] == len(_POOL)


def test_batch_consults_verify_cache():
    pk, msg, sig = _POOL[0]
    assert e.verify(pk, msg, sig)
    before = e.verify_cache_stats()
    assert e.verify_batch([(pk, msg, sig)]) == [True]
    after = e.verify_cache_stats()
    assert after["hits"] == before["hits"] + 1
    assert after["misses"] == before["misses"]


def test_point_cache_bounded_fifo(monkeypatch):
    monkeypatch.setattr(e, "POINT_CACHE_MAX", 4)
    for i in range(6):
        pk, msg, sig = _signed(100 + i, msg=b"x")
        assert e.verify(pk, msg, sig)
    stats = e.point_cache_stats()
    assert stats["size"] <= 4
    assert stats["evictions"] == 2
    assert stats["misses"] == 6


def test_point_cache_hits_on_repeat_signer():
    pk, _, _ = _POOL[0]
    for i in range(3):
        msg = f"repeat-{i}".encode()
        sig = e.sign(bytes([0]) * 32, msg)
        assert e.verify(pk, msg, sig)
    stats = e.point_cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 2


def test_wnaf_single_verify_matches_reference_vectors():
    """RFC 8032 vectors through the wNAF fast path (uncached)."""
    vectors = [
        ("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60", ""),
        ("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb", "72"),
        ("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7", "af82"),
    ]
    for seed_hex, msg_hex in vectors:
        seed, msg = bytes.fromhex(seed_hex), bytes.fromhex(msg_hex)
        pk = e.generate_public_key(seed)
        sig = e.sign(seed, msg)
        assert e._verify_uncached(pk, msg, sig)
        assert not e._verify_uncached(pk, msg + b"x", sig)


@settings(max_examples=15, deadline=None)
@given(
    picks=st.lists(st.integers(min_value=0, max_value=len(_POOL) - 1),
                   min_size=1, max_size=6),
    corrupt=st.lists(st.sampled_from(["ok", "flip_sig", "flip_msg", "wrong_key", "zero_sig"]),
                     min_size=1, max_size=6),
)
def test_property_agreement_with_reference(picks, corrupt):
    """verify_batch == map(verify) on arbitrary mixed batches."""
    items = []
    for idx, mode in zip(picks, corrupt):
        pk, msg, sig = _POOL[idx]
        if mode == "flip_sig":
            mutated = bytearray(sig)
            mutated[10] ^= 1
            sig = bytes(mutated)
        elif mode == "flip_msg":
            msg = msg + b"?"
        elif mode == "wrong_key":
            pk = _POOL[(idx + 1) % len(_POOL)][0]
        elif mode == "zero_sig":
            sig = bytes(64)
        items.append((pk, msg, sig))
    assert _run_batch(items) == _oracle(items)
