"""Consensus engine interface.

Engines plug into a :class:`~repro.chain.peer.Peer`: the peer hands them
network messages and a mempool; engines decide blocks and hand them back
via ``peer.commit_block``.  Two engines are provided — a round-robin
PoA orderer (Fabric-style ordering service) and PBFT — plus a sharded
parallel execution model layered on either (the authors' ICDCS'18
design).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

from repro.simnet.network import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chain.block import Block
    from repro.chain.peer import Peer

__all__ = ["ConsensusEngine"]


class ConsensusEngine(ABC):
    """Base class for block-ordering protocols."""

    def __init__(self) -> None:
        self.peer: "Peer | None" = None
        self.stopped = False

    def attach(self, peer: "Peer") -> None:
        """Bind the engine to its peer (called by the peer itself)."""
        self.peer = peer

    # -- observability (see repro.obs) -------------------------------------

    def _observe_order_wait(self, batch: "list[Any]") -> None:
        """Record the ordering wait — mempool admission to proposal — for
        every transaction taken into a block.  This is the "order" phase
        of the traced lifecycle; both engines call it from their
        proposal path."""
        peer = self.peer
        if peer is None or not batch:
            return
        hist = peer.obs.histogram("phase.order_wait", peer=peer.node_id)
        now = peer.sim.now
        for tx in batch:
            hist.observe(max(0.0, now - tx.timestamp))

    @abstractmethod
    def start(self) -> None:
        """Begin participating (schedule timers, etc.)."""

    def stop(self) -> None:
        """Stop proposing; in-flight work may still complete."""
        self.stopped = True

    @abstractmethod
    def on_message(self, message: Message) -> bool:
        """Handle a consensus message; return True if it was consumed."""

    def on_transaction_admitted(self) -> None:
        """Hook: the peer admitted a new transaction to its mempool."""

    def on_block_applied(self, block: "Block") -> None:
        """Hook: the peer appended *block* to its ledger (via consensus,
        sync, or a direct offer).  Pipelined engines use this to drain
        decided-but-unapplied blocks whose gap just closed."""

    # -- sync integration (see repro.chain.sync) ---------------------------

    def verify_synced_block(self, block: "Block", proof: Any) -> bool:
        """May a block fetched by the :class:`~repro.chain.sync.SyncManager`
        be applied?  Hash-chain linkage and structure are already checked
        by the manager; engines add their protocol-specific proof here
        (PBFT: a stored 2f+1 commit certificate; PoA: the expected-leader
        check).  The default accepts."""
        return True

    def sync_proof(self, height: int) -> Any:
        """The proof to attach when *serving* block *height* to a lagging
        peer (``None`` when the protocol needs none)."""
        return None

    def on_synced_block(self, block: "Block", proof: Any) -> None:
        """Hook fired just before a sync-fetched block is committed, so
        engines can record bookkeeping (e.g. PBFT commit certificates)."""

    def on_restart(self) -> None:
        """Wipe volatile engine state after a simulated process restart
        (open rounds, vote tallies, timers) and re-arm from scratch."""

