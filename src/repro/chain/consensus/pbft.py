"""Practical Byzantine Fault Tolerance over the simulated network.

A faithful (if compact) PBFT: pre-prepare / prepare / commit phases with
2f+1 quorums and view changes on timeout.  Tolerates f faulty of
n = 3f+1 validators, including an equivocating (byzantine) primary — see
``tests/chain/test_pbft.py``.

State transfer for replicas that fall behind — whether by one round or
by a long crash window — is *not* handled here: the engine hands any
committed block it cannot apply immediately to the peer's
:class:`~repro.chain.sync.SyncManager` (buffer-and-fetch with retries,
backoff, and provider failover), and flags every height-ahead consensus
message as a lag hint.  Sync-fetched blocks are only applied when they
carry this replica's stored 2f+1 commit certificate for that height
(:meth:`PBFTEngine.verify_synced_block`).

Simplifications relative to Castro & Liskov, documented here because
they matter when reading experiment results:

- Channels are authenticated by the simulator (a message's ``src`` is
  trusted), so pre-prepare/prepare/view-change signatures and the
  new-view proof are elided.  **Commit votes, however, are Ed25519
  signed** when the replica knows the voter's key (the network registers
  a validator-key directory via :meth:`PBFTEngine.register_validator_keys`):
  a commit from a known validator is dropped unless its signature over
  ``pbft-commit|node_id|height|digest`` verifies, and the stored commit
  certificate keeps the signatures alongside the name set — so
  sync-served certificates are *cryptographically* checkable
  (batch-verified in :meth:`verify_synced_block`), not merely name-set
  checkable.  Votes from senders with no registered key fall back to
  channel authentication (standalone engines in unit tests run keyless).
- **Validator membership is enforced on every vote**: prepares, commits,
  and view-change votes are dropped unless ``src`` is in the engine's
  validator set, and a replica that is not itself a validator (a late
  "observer" joined via ``BlockchainNetwork.join_peer``) never votes —
  it follows the chain through commit certificates only.  Quorums are
  2f+1 *distinct validators*, never merely 2f+1 distinct senders.
- Round state is bounded: messages are rejected outside a small view
  window (``[view, view + VIEW_WINDOW]``) and height window
  (``(committed, committed + HEIGHT_WINDOW]``), and rounds for deposed
  views are garbage-collected on view change — a deposed primary's
  taken-but-uncommitted transactions are re-queued into its mempool so
  they are not silently dropped.
- Checkpointing/garbage collection is replaced by pruning round state
  once a height commits (the simulator's ledger is the checkpoint).
- One block (= one PBFT sequence number) is in flight at a time per
  view, which matches how Fabric-style ordering batches anyway.

The membership rule, the bounded-window rule, and the re-queue rule are
continuously re-verified under fault injection by
:class:`repro.chain.audit.InvariantAuditor` +
:class:`repro.simnet.chaos.ChaosSchedule` (see
``tests/chain/test_chaos_audit.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chain.block import Block
from repro.chain.consensus.base import ConsensusEngine
from repro.crypto.batch import verify_many
from repro.crypto.keys import verify_signature
from repro.simnet.network import Message

__all__ = ["PBFTEngine"]


def _vote_message(node_id: str, height: int, digest: str) -> bytes:
    """Canonical byte string a signed commit vote covers."""
    return f"pbft-commit|{node_id}|{height}|{digest}".encode()

_PRE_PREPARE = "pbft-pre-prepare"
_PREPARE = "pbft-prepare"
_COMMIT = "pbft-commit"
_VIEW_CHANGE = "pbft-view-change"
_COMMITTED = "pbft-committed"


@dataclass
class _Round:
    """Bookkeeping for one (view, height) consensus instance."""

    digest: str | None = None
    block: Block | None = None
    prepares: set[str] = field(default_factory=set)
    commits: set[str] = field(default_factory=set)
    #: signer -> verified commit-vote signature (only for voters whose
    #: key is registered; keyless votes appear in ``commits`` alone).
    commit_sigs: dict[str, bytes] = field(default_factory=dict)
    sent_prepare: bool = False
    sent_commit: bool = False
    #: Sim time this replica first saw the pre-prepare, for the
    #: ``pbft.round`` duration histogram.
    started_at: float | None = None


class PBFTEngine(ConsensusEngine):
    """PBFT replica logic for one peer."""

    #: Accept votes only for views in ``[view, view + VIEW_WINDOW]`` and
    #: heights in ``(committed, committed + HEIGHT_WINDOW]`` — anything
    #: beyond is either hopelessly stale or unverifiable garbage, and
    #: accepting it lets a flooder grow ``_rounds`` without bound.
    VIEW_WINDOW = 8
    HEIGHT_WINDOW = 8
    #: Commit certificates older than this many heights below the chain
    #: head are pruned (they exist for the invariant auditor's forensics,
    #: not for the protocol itself).
    CERTIFICATE_HISTORY = 10_000

    def __init__(
        self,
        validators: list[str],
        block_interval: float = 1.0,
        view_timeout: float = 10.0,
        max_block_txs: int = 500,
    ):
        super().__init__()
        if len(validators) < 4:
            raise ValueError("PBFT needs n >= 4 validators (n = 3f + 1, f >= 1)")
        self.validators = list(validators)
        self._validator_set = frozenset(validators)
        self.block_interval = block_interval
        self.view_timeout = view_timeout
        self.max_block_txs = max_block_txs
        self.view = 0
        self._rounds: dict[tuple[int, int], _Round] = {}
        self._view_votes: dict[int, set[str]] = {}
        self._proposing = False
        self._tick_scheduled = False
        self._timer_scheduled = False
        self._timer_height = -1
        self._tick_event = None
        self._timer_event = None
        self.view_changes_completed = 0
        self.votes_rejected_nonvalidator = 0
        self.votes_rejected_bad_signature = 0
        #: validator id -> Ed25519 public key.  Registered by
        #: :class:`~repro.chain.network.BlockchainNetwork`; when a
        #: voter's key is here its commit votes MUST carry a valid
        #: signature.  Empty for standalone engines (unit tests), which
        #: then run on channel authentication alone, as the seed did.
        self.validator_keys: dict[str, bytes] = {}
        #: height -> (digest, sorted certificate) for every block this
        #: replica committed, read by the invariant auditor.
        self.commit_certificates: dict[int, tuple[str, tuple[str, ...]]] = {}
        #: height -> {signer: vote signature hex}, parallel to
        #: ``commit_certificates`` (kept separate so the auditor's
        #: certificate shape is unchanged); pruned together with it.
        self.commit_signatures: dict[int, dict[str, str]] = {}

    def register_validator_keys(self, keys: dict[str, bytes]) -> None:
        """Install the validator public-key directory (enables signed
        commit votes and cryptographic certificate verification)."""
        self.validator_keys.update(keys)

    # -- helpers -----------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.validators)

    @property
    def f(self) -> int:
        return (self.n - 1) // 3

    @property
    def quorum(self) -> int:
        """2f + 1: the intersection-guaranteeing quorum size."""
        return 2 * self.f + 1

    def primary_for(self, view: int) -> str:
        return self.validators[view % self.n]

    def is_primary(self) -> bool:
        assert self.peer is not None
        return self.primary_for(self.view) == self.peer.node_id

    def _round(self, view: int, height: int) -> _Round:
        return self._rounds.setdefault((view, height), _Round())

    def _member(self, src: str) -> bool:
        """Is *src* allowed to vote?  Quorums count validators only."""
        return src in self._validator_set

    def _reject_nonvalidator(self) -> None:
        self.votes_rejected_nonvalidator += 1
        if self.peer is not None:
            self.peer.obs.counter(
                "pbft.votes_rejected_nonvalidator", peer=self.peer.node_id
            ).inc()

    def _reject_bad_signature(self) -> None:
        self.votes_rejected_bad_signature += 1
        if self.peer is not None:
            self.peer.obs.counter(
                "pbft.votes_rejected_bad_signature", peer=self.peer.node_id
            ).inc()

    def _check_vote_signature(
        self, src: str, height: int, digest: str, signature: Any
    ) -> bool:
        """Valid iff *src* has no registered key (channel auth) or the
        signature over the canonical vote message verifies."""
        key = self.validator_keys.get(src)
        if key is None:
            return True
        if not isinstance(signature, (bytes, bytearray)):
            return False
        return verify_signature(key, _vote_message(src, height, digest), bytes(signature))

    def _is_validator(self) -> bool:
        """Does *this* replica vote?  Observer peers follow, silently."""
        assert self.peer is not None
        return self.peer.node_id in self._validator_set

    def _in_window(self, view: int, height: int) -> bool:
        """Bound round bookkeeping: stale or far-future (view, height)
        keys must not allocate ``_Round`` state (memory-leak guard)."""
        assert self.peer is not None
        if not self.view <= view <= self.view + self.VIEW_WINDOW:
            return False
        committed = self.peer.ledger.height
        return committed < height <= committed + self.HEIGHT_WINDOW

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._schedule_tick()
        self._arm_view_timer()

    def _schedule_tick(self) -> None:
        if self.stopped or self._tick_scheduled:
            return
        self._tick_scheduled = True
        assert self.peer is not None
        self._tick_event = self.peer.sim.schedule(
            self.block_interval, self._tick, label=f"pbft-tick:{self.peer.node_id}"
        )

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self.stopped:
            return
        peer = self.peer
        assert peer is not None
        if (
            self.is_primary()
            and not peer.crashed
            and len(peer.mempool) > 0
            # A primary that knows it is behind must sync before it
            # proposes: a stale-height pre-prepare can never gather
            # quorum and only wastes the round.
            and not peer.sync.is_lagging()
        ):
            next_height = peer.ledger.height + 1
            if self._round(self.view, next_height).digest is None:
                self._propose(next_height)
        self._schedule_tick()

    # -- proposal (primary) ---------------------------------------------------

    def _propose(self, height: int) -> None:
        peer = self.peer
        assert peer is not None
        batch = peer.mempool.take(self.max_block_txs)
        if not batch:
            return
        self._observe_order_wait(batch)
        if getattr(peer, "byzantine", False):
            self._propose_equivocating(height, batch)
            return
        block = Block.build(
            height=height,
            prev_hash=peer.ledger.head.block_hash,
            timestamp=peer.sim.now,
            proposer=peer.node_id,
            transactions=batch,
        )
        payload = {"view": self.view, "height": height, "block": block}
        peer.broadcast(_PRE_PREPARE, payload)
        self._accept_pre_prepare(self.view, height, block, peer.node_id)

    def _propose_equivocating(self, height: int, batch: list) -> None:
        """Byzantine primary: send conflicting blocks to the two halves
        of the network.  PBFT's prepare quorum ensures at most one of the
        two digests can ever commit."""
        peer = self.peer
        assert peer is not None
        half = max(1, len(batch) // 2) if len(batch) > 1 else 1
        block_a = Block.build(height, peer.ledger.head.block_hash, peer.sim.now, peer.node_id, batch[:half])
        block_b = Block.build(height, peer.ledger.head.block_hash, peer.sim.now, peer.node_id, list(reversed(batch)))
        others = [v for v in self.validators if v != peer.node_id]
        for index, validator in enumerate(others):
            chosen = block_a if index % 2 == 0 else block_b
            peer.send(validator, _PRE_PREPARE, {"view": self.view, "height": height, "block": chosen})

    # -- replica phases ---------------------------------------------------------

    def _accept_pre_prepare(self, view: int, height: int, block: Block, src: str) -> None:
        peer = self.peer
        assert peer is not None
        if view != self.view or src != self.primary_for(view):
            return
        if height != peer.ledger.height + 1:
            if height > peer.ledger.height + 1:
                # The primary is proposing past our head: we missed blocks.
                peer.sync.note_remote_height(src, height - 1)
            return
        state = self._round(view, height)
        if state.digest is not None and state.digest != block.block_hash:
            return  # primary equivocated to us; keep the first
        state.digest = block.block_hash
        state.block = block
        if state.started_at is None:
            state.started_at = peer.sim.now
        if not state.sent_prepare and self._is_validator():
            state.sent_prepare = True
            state.prepares.add(peer.node_id)
            peer.broadcast(
                _PREPARE, {"view": view, "height": height, "digest": block.block_hash}
            )
        self._maybe_advance(view, height)

    def _on_prepare(self, view: int, height: int, digest: str, src: str) -> None:
        assert self.peer is not None
        if not self._member(src):
            self._reject_nonvalidator()
            return  # only validators vote toward quorums
        if height > self.peer.ledger.height + 1:
            # A validator voting at a height we cannot reach implies a
            # longer chain; a lie costs it a timed-out fetch, nothing more.
            self.peer.sync.note_remote_height(src, height - 1)
        if not self._in_window(view, height):
            return  # stale or far-future; don't allocate round state
        state = self._round(view, height)
        if state.digest is not None and digest != state.digest:
            return
        state.prepares.add(src)
        self._maybe_advance(view, height)

    def _on_commit(
        self, view: int, height: int, digest: str, src: str, signature: Any = None
    ) -> None:
        assert self.peer is not None
        if not self._member(src):
            self._reject_nonvalidator()
            return  # only validators vote toward quorums
        if not self._check_vote_signature(src, height, digest, signature):
            self._reject_bad_signature()
            return  # known validator, bad/absent signature: forged vote
        if height > self.peer.ledger.height + 1:
            self.peer.sync.note_remote_height(src, height - 1)
        if not self._in_window(view, height):
            return  # stale or far-future; don't allocate round state
        state = self._round(view, height)
        if state.digest is not None and digest != state.digest:
            return
        state.commits.add(src)
        if isinstance(signature, (bytes, bytearray)) and src in self.validator_keys:
            state.commit_sigs[src] = bytes(signature)
        self._maybe_advance(view, height)

    def _maybe_advance(self, view: int, height: int) -> None:
        peer = self.peer
        assert peer is not None
        state = self._round(view, height)
        if state.digest is None:
            return
        if (
            not state.sent_commit
            and len(state.prepares) >= self.quorum
            and self._is_validator()
        ):
            state.sent_commit = True
            state.commits.add(peer.node_id)
            vote = {"view": view, "height": height, "digest": state.digest}
            if peer.node_id in self.validator_keys:
                signature = peer.keypair.sign(
                    _vote_message(peer.node_id, height, state.digest)
                )
                state.commit_sigs[peer.node_id] = signature
                vote["signature"] = signature
            peer.broadcast(_COMMIT, vote)
        if (
            state.sent_commit
            and state.block is not None
            and len(state.commits) >= self.quorum
            and height == peer.ledger.height + 1
        ):
            block = state.block
            certificate = sorted(state.commits)
            if state.started_at is not None:
                # Local pre-prepare → quorum-commit duration for this round.
                peer.obs.histogram("pbft.round", peer=peer.node_id).observe(
                    peer.sim.now - state.started_at
                )
            signatures = {
                signer: sig.hex()
                for signer, sig in state.commit_sigs.items()
                if signer in state.commits
            }
            self._record_certificate(height, state.digest, certificate, signatures)
            self._cleanup_height(height)
            peer.commit_block(block)
            peer.broadcast(
                _COMMITTED,
                {"block": block, "certificate": certificate, "signatures": signatures},
            )
            self._timer_height = peer.ledger.height
            self._arm_view_timer()

    def _record_certificate(
        self,
        height: int,
        digest: str,
        certificate: list[str],
        signatures: dict[str, str] | None = None,
    ) -> None:
        self.commit_certificates[height] = (digest, tuple(certificate))
        if signatures:
            self.commit_signatures[height] = dict(signatures)
        floor = height - self.CERTIFICATE_HISTORY
        if floor > 0 and (height % 1000) == 0:
            for old in [h for h in self.commit_certificates if h < floor]:
                del self.commit_certificates[old]
                self.commit_signatures.pop(old, None)

    def _cleanup_height(self, height: int) -> None:
        for key in [k for k in self._rounds if k[1] <= height]:
            self._requeue_stale_round(self._rounds.pop(key))

    def _requeue_stale_round(self, state: _Round) -> None:
        """Return a discarded round's taken transactions to the mempool.

        A primary moves transactions from its mempool into the proposed
        block; if that round dies (view change deposed it, or another
        block won the height) those transactions would otherwise vanish
        silently.  Transactions that did commit are filtered out here by
        receipt, and any re-queued copy of the *winning* block's own txs
        is removed again by ``commit_block``'s ``mempool.remove``.
        """
        peer = self.peer
        assert peer is not None
        if state.block is None or state.block.proposer != peer.node_id:
            return
        for tx in state.block.transactions:
            if tx.tx_id not in peer.receipts:
                peer.mempool.add(tx)

    # -- view change ----------------------------------------------------------

    def _arm_view_timer(self) -> None:
        # Exactly one outstanding timer per replica: commits would
        # otherwise each spawn an immortal re-arming chain, flooding the
        # event queue and occasionally firing against stale heights.
        if self.stopped or self._timer_scheduled:
            return
        peer = self.peer
        assert peer is not None
        self._timer_scheduled = True
        expected = peer.ledger.height
        self._timer_event = self.peer.sim.schedule(
            self.view_timeout,
            lambda: self._view_timer_fired(expected),
            label=f"pbft-timer:{peer.node_id}",
        )

    def _view_timer_fired(self, expected_height: int) -> None:
        self._timer_scheduled = False
        if self.stopped:
            return
        peer = self.peer
        assert peer is not None
        stalled = peer.ledger.height == expected_height and (
            len(peer.mempool) > 0 or any(True for _ in self._rounds)
        )
        if stalled and not peer.crashed and self._is_validator():
            proposal = self.view + 1
            self._vote_view_change(proposal, peer.node_id)
            peer.broadcast(_VIEW_CHANGE, {"new_view": proposal})
        self._arm_view_timer()

    def _vote_view_change(self, new_view: int, src: str) -> None:
        if not self._member(src):
            self._reject_nonvalidator()
            return  # only validators can depose a primary
        if not self.view < new_view <= self.view + self.VIEW_WINDOW:
            return  # stale, or unreachably far ahead (bounds _view_votes)
        votes = self._view_votes.setdefault(new_view, set())
        votes.add(src)
        if len(votes) >= self.quorum:
            self.view = new_view
            self.view_changes_completed += 1
            if self.peer is not None:
                self.peer.obs.counter("pbft.view_changes", peer=self.peer.node_id).inc()
            for key in [k for k in self._rounds if k[0] < new_view]:
                self._requeue_stale_round(self._rounds.pop(key))
            self._view_votes = {v: s for v, s in self._view_votes.items() if v > new_view}

    def pending_txs(self) -> set[str]:
        """Tx ids held in open (uncommitted) rounds.

        The durability auditor counts these as pending: a replica cut
        off from a view change it never saw keeps its in-flight round
        alive, and the transactions in it are retained, not dropped —
        they re-enter the mempool the moment the round is superseded
        (see ``_requeue_stale_round``).
        """
        held: set[str] = set()
        for state in self._rounds.values():
            if state.block is not None:
                held.update(tx.tx_id for tx in state.block.transactions)
        return held

    # -- sync -------------------------------------------------------------------

    def _on_committed(
        self,
        block: Block,
        certificate: list[str],
        src: str,
        signatures: dict[str, str] | None = None,
    ) -> None:
        """A peer announced a committed block with its certificate.

        Everything beyond the quick quorum pre-filter is delegated to the
        peer's :class:`~repro.chain.sync.SyncManager`: next-in-line blocks
        verify (via :meth:`verify_synced_block`) and apply immediately,
        height-ahead blocks are buffered and the gap is fetched — the
        seed engine silently dropped those, stranding any replica that
        missed more than one block.
        """
        peer = self.peer
        assert peer is not None
        valid_signers = {signer for signer in certificate if signer in self._validator_set}
        if len(valid_signers) < self.quorum:
            return
        proof: Any = list(certificate)
        if signatures:
            proof = {"signers": list(certificate), "signatures": dict(signatures)}
        peer.sync.offer_block(block, proof, src=src)

    @staticmethod
    def _proof_parts(proof: Any) -> tuple[list[str], dict[str, str]] | None:
        """Normalize a certificate proof: legacy name list/tuple or the
        dict form ``{"signers": [...], "signatures": {name: hex}}``."""
        if isinstance(proof, dict):
            signers = proof.get("signers")
            signatures = proof.get("signatures") or {}
            if not isinstance(signers, (list, tuple)) or not isinstance(signatures, dict):
                return None
            return list(signers), dict(signatures)
        if isinstance(proof, (list, tuple)):
            return list(proof), {}
        return None

    def verify_synced_block(self, block: Block, proof: Any) -> bool:
        """A fetched block needs a 2f+1-distinct-validator certificate.

        Signers whose key is registered only count when their Ed25519
        vote signature over this block's (height, hash) verifies — all
        such signatures are checked in ONE batched call.  Signers with no
        registered key fall back to the name-set check (legacy proofs,
        keyless unit-test engines).
        """
        parts = self._proof_parts(proof)
        if parts is None:
            return False
        signers, signatures = parts
        counted: set[str] = set()
        items: list[tuple[bytes, bytes, bytes]] = []
        item_signers: list[str] = []
        for signer in sorted(set(signers) & self._validator_set):
            key = self.validator_keys.get(signer)
            if key is None:
                counted.add(signer)
                continue
            sig_hex = signatures.get(signer)
            try:
                sig = bytes.fromhex(sig_hex) if isinstance(sig_hex, str) else None
            except ValueError:
                sig = None
            if sig is None:
                continue  # known validator, no usable signature: not counted
            items.append((key, _vote_message(signer, block.height, block.block_hash), sig))
            item_signers.append(signer)
        if items:
            labels = {"peer": self.peer.node_id} if self.peer is not None else {}
            registry = self.peer.obs if self.peer is not None else None
            verdicts = verify_many(items, registry=registry, **labels)
            counted.update(s for s, ok in zip(item_signers, verdicts) if ok)
        return len(counted) >= self.quorum

    def sync_proof(self, height: int) -> Any:
        """Serve the stored commit certificate alongside the block —
        dict form when vote signatures were recorded, legacy name list
        otherwise."""
        entry = self.commit_certificates.get(height)
        if entry is None:
            return None
        signatures = self.commit_signatures.get(height)
        if signatures:
            return {"signers": list(entry[1]), "signatures": dict(signatures)}
        return list(entry[1])

    def on_synced_block(self, block: Block, proof: Any) -> None:
        parts = self._proof_parts(proof)
        if parts is None:
            return
        signers, signatures = parts
        self._record_certificate(
            block.height, block.block_hash, sorted(signers), signatures
        )
        self._cleanup_height(block.height)

    def on_restart(self) -> None:
        """Crash-restart: open rounds, vote tallies, and timers are
        volatile and do not survive; the view number is recovered from
        stable storage (Castro–Liskov §4.3 persists it for exactly this
        reason), so it is kept."""
        for event in (self._tick_event, self._timer_event):
            if event is not None:
                event.cancel()
        self._tick_event = self._timer_event = None
        self._rounds.clear()
        self._view_votes.clear()
        self._tick_scheduled = False
        self._timer_scheduled = False
        self._timer_height = -1
        self.start()

    # -- dispatch ----------------------------------------------------------------

    def on_message(self, message: Message) -> bool:
        payload = message.payload
        if message.kind == _PRE_PREPARE:
            self._accept_pre_prepare(payload["view"], payload["height"], payload["block"], message.src)
        elif message.kind == _PREPARE:
            self._on_prepare(payload["view"], payload["height"], payload["digest"], message.src)
        elif message.kind == _COMMIT:
            self._on_commit(
                payload["view"], payload["height"], payload["digest"], message.src,
                payload.get("signature"),
            )
        elif message.kind == _VIEW_CHANGE:
            self._vote_view_change(payload["new_view"], message.src)
        elif message.kind == _COMMITTED:
            self._on_committed(
                payload["block"], payload["certificate"], message.src,
                payload.get("signatures"),
            )
        else:
            return False
        return True
