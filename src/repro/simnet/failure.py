"""Failure injection for the simulated network.

Experiments need repeatable fault schedules: crash a peer at t=5, heal a
partition at t=30, make two validators byzantine from the start.  The
:class:`FailureSchedule` records what it did so tests can assert the
faults actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.events import Simulator
from repro.simnet.network import Network

__all__ = ["FailureEvent", "FailureSchedule"]


@dataclass(frozen=True)
class FailureEvent:
    """A fault that fired: (time, action, target)."""

    time: float
    action: str
    target: str


@dataclass
class FailureSchedule:
    """Declarative fault schedule bound to a network and simulator."""

    sim: Simulator
    network: Network
    log: list[FailureEvent] = field(default_factory=list)

    def crash_at(self, time: float, node_id: str) -> None:
        """Crash-stop *node_id* at absolute simulated *time*."""
        self.sim.schedule_at(time, lambda: self._crash(node_id, time))

    def recover_at(self, time: float, node_id: str) -> None:
        """Bring a crashed node back (crash-*pause*: it resumes with all
        of its in-memory state intact, as if it had merely been frozen)."""
        self.sim.schedule_at(time, lambda: self._recover(node_id, time))

    def restart_at(self, time: float, node_id: str) -> None:
        """Bring a crashed node back as a crash-*restart*: the node's
        ``restart()`` hook wipes volatile state (mempool, open consensus
        rounds, in-flight timers) and rebuilds world state from its
        durable ledger — modeling a real process restart rather than a
        pause.  Nodes without a ``restart()`` hook fall back to a plain
        recover."""
        self.sim.schedule_at(time, lambda: self._restart(node_id, time))

    def torn_write_at(self, time: float, node_id: str) -> None:
        """Arm a torn write on *node_id*'s disk: at its next crash, the
        last fsync'd write to its block log survives only as a random
        prefix (the write was interrupted mid-flight).  A node without a
        disk (no durable store) ignores the fault."""
        self.sim.schedule_at(time, lambda: self._disk_fault(node_id, time, "torn-write"))

    def partial_flush_at(self, time: float, node_id: str, k: int = 1) -> None:
        """Arm a lying-drive fault on *node_id*'s disk: at its next crash
        the last *k* acknowledged fsync generations of its block log are
        silently lost."""
        self.sim.schedule_at(
            time, lambda: self._disk_fault(node_id, time, "partial-flush", k=k)
        )

    def bitflip_at(self, time: float, node_id: str, artifact: str = "log") -> None:
        """Flip one bit of *node_id*'s durable *artifact* (``"log"`` or
        ``"snapshot"``) at *time* — latent media corruption, surfaced only
        when recovery next reads the bytes."""
        self.sim.schedule_at(
            time, lambda: self._disk_fault(node_id, time, "bit-flip", artifact=artifact)
        )

    def partition_at(self, time: float, *groups: set[str]) -> None:
        """Install a partition at *time*."""
        frozen = [set(g) for g in groups]
        self.sim.schedule_at(time, lambda: self._partition(frozen, time))

    def heal_at(self, time: float) -> None:
        """Heal all partitions at *time*."""
        self.sim.schedule_at(time, lambda: self._heal(time))

    # -- implementations -------------------------------------------------

    def _crash(self, node_id: str, time: float) -> None:
        node = self.network.node(node_id)
        node.crashed = True
        # A crash takes the node's disk (if any) down with it: unsynced
        # bytes die and any armed torn-write / partial-flush fault fires.
        disk = getattr(node, "disk", None)
        if disk is not None:
            for fault in disk.on_crash():
                self.log.append(
                    FailureEvent(time=time, action=f"disk-{fault.kind}", target=node_id)
                )
        self.log.append(FailureEvent(time=time, action="crash", target=node_id))

    def _disk_fault(self, node_id: str, time: float, kind: str, k: int = 1, artifact: str = "log") -> None:
        disk = getattr(self.network.node(node_id), "disk", None)
        if disk is None:
            return  # in-memory backend: nothing to corrupt
        if kind == "torn-write":
            disk.arm_torn_write()
            self.log.append(FailureEvent(time=time, action="disk-arm-torn-write", target=node_id))
        elif kind == "partial-flush":
            disk.arm_partial_flush(k)
            self.log.append(FailureEvent(time=time, action="disk-arm-partial-flush", target=node_id))
        elif kind == "bit-flip":
            corrupted = disk.corrupt(role=artifact)
            if corrupted is not None:
                self.log.append(
                    FailureEvent(time=time, action=f"disk-bit-flip:{artifact}", target=node_id)
                )

    def _recover(self, node_id: str, time: float) -> None:
        self.network.node(node_id).crashed = False
        self.log.append(FailureEvent(time=time, action="recover", target=node_id))

    def _restart(self, node_id: str, time: float) -> None:
        node = self.network.node(node_id)
        restart = getattr(node, "restart", None)
        if restart is not None:
            restart()
        else:
            node.crashed = False
        self.log.append(FailureEvent(time=time, action="restart", target=node_id))

    def _partition(self, groups: list[set[str]], time: float) -> None:
        self.network.partition(*groups)
        self.log.append(
            FailureEvent(time=time, action="partition", target="|".join(",".join(sorted(g)) for g in groups))
        )

    def _heal(self, time: float) -> None:
        self.network.heal()
        self.log.append(FailureEvent(time=time, action="heal", target="*"))
