"""The append-only, checksummed, length-prefixed block log.

Record framing (all integers big-endian)::

    +-------+---------+---------+--------+------------------+
    | magic | height  | length  | crc32  | payload          |
    | 2B    | u32     | u32     | u32    | `length` bytes   |
    +-------+---------+---------+--------+------------------+

The payload is the canonical-JSON record from
:mod:`repro.chain.store.codec`.  The CRC covers the payload only; the
magic and the height/length sanity checks cover the header.  ``scan``
never trusts bytes it cannot prove: it walks records front to back and
stops at the first framing violation, classifying it as a *torn tail*
(file ends mid-record — the normal crash pattern, repaired by
truncation) or *corruption* (bad magic / CRC mismatch / non-contiguous
height — bytes present but wrong, also repaired by truncation, but
counted separately because it means media damage, not a crash).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.simnet.disk import SimDisk

__all__ = ["BlockLog", "LogRecord", "LogScan", "scan_log_bytes", "LOG_NAME"]

LOG_NAME = "blocks.log"
_MAGIC = b"RL"
_HEADER = struct.Struct(">2sIII")  # magic, height, payload length, crc32
#: Sanity bound on one record; a length field above this is corruption,
#: not a plausible block.
_MAX_RECORD = 64 * 1024 * 1024


@dataclass(frozen=True)
class LogRecord:
    """One verified record: where it sits and what it carries."""

    height: int
    offset: int  # start of the header within the log
    payload: bytes
    crc: int


@dataclass
class LogScan:
    """Result of a verify-before-trust scan of the whole log."""

    records: list[LogRecord] = field(default_factory=list)
    valid_length: int = 0  # bytes proven good; everything past is garbage
    total_length: int = 0
    failure: str | None = None  # None | "torn-tail" | "bad-magic" | "crc-mismatch" | "height-gap" | "oversized-record"

    @property
    def tip(self) -> int:
        return self.records[-1].height if self.records else 0


def scan_log_bytes(data: bytes, expect_first: int = 1) -> LogScan:
    """Scan raw log bytes; trust only records that prove themselves.

    Heights must be contiguous starting at *expect_first* — a gap means
    the log was damaged between records (e.g. a partial flush landing
    mid-file), and everything from the gap on is untrusted.
    """
    scan = LogScan(total_length=len(data))
    offset = 0
    expected = expect_first
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            scan.failure = "torn-tail"
            break
        magic, height, length, crc = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC:
            scan.failure = "bad-magic"
            break
        if length > _MAX_RECORD:
            scan.failure = "oversized-record"
            break
        end = offset + _HEADER.size + length
        if end > len(data):
            scan.failure = "torn-tail"
            break
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            scan.failure = "crc-mismatch"
            break
        if height != expected:
            scan.failure = "height-gap"
            break
        scan.records.append(LogRecord(height=height, offset=offset, payload=payload, crc=crc))
        scan.valid_length = end
        offset = end
        expected += 1
    return scan


class BlockLog:
    """The write-ahead block log over one node's :class:`SimDisk`."""

    def __init__(self, disk: SimDisk, name: str = LOG_NAME):
        self.disk = disk
        self.name = name
        disk.set_role(name, "log")

    def append(self, height: int, payload: bytes) -> None:
        """Frame, append, and fsync one record — durable when this returns
        (modulo injected faults: a lying drive is exactly what the chaos
        schedule tests)."""
        header = _HEADER.pack(_MAGIC, height, len(payload), zlib.crc32(payload))
        self.disk.append(self.name, header + payload)
        self.disk.fsync(self.name)

    def scan(self) -> LogScan:
        return scan_log_bytes(self.disk.read(self.name))

    def truncate(self, valid_length: int) -> None:
        """Repair: cut everything past the proven-good prefix."""
        self.disk.truncate(self.name, valid_length)

    def read_payload(self, record: LogRecord) -> bytes:
        """Re-read one record's payload from disk, re-proving its CRC.

        Used by the ledger's archive hook for lazy loads of pre-snapshot
        blocks: the bytes are re-checked at read time, so latent
        corruption that appeared *after* recovery still cannot serve a
        wrong block.
        """
        data = self.disk.read(self.name)
        start = record.offset + _HEADER.size
        payload = data[start : start + len(record.payload)]
        if zlib.crc32(payload) != record.crc:
            raise ValueError(
                f"block log record at offset {record.offset} failed its CRC on re-read"
            )
        return payload
