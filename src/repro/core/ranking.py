"""Factualness ranking: fusing provenance, AI, and crowd signals.

The paper's ranking mechanism (§V–§VI) combines three independent
assessments of an article:

- **provenance** — trace distance / accumulated modification back to
  the factual database (0 if untraceable),
- **AI** — 1 − P(fake) from the text/media models,
- **crowd** — the weighted factual share of on-chain validator votes.

:class:`FactualnessRanker` exposes each signal alone (the paper's
implicit baselines; E6's ablation) and the hybrid fusion the platform
actually uses.  Scores live in [0, 1]; higher = more trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["RankingWeights", "ArticleSignals", "RankedArticle", "FactualnessRanker"]


@dataclass(frozen=True)
class RankingWeights:
    """Relative weights of the three signals in the hybrid score."""

    provenance: float = 0.4
    ai: float = 0.35
    crowd: float = 0.25

    def __post_init__(self) -> None:
        if min(self.provenance, self.ai, self.crowd) < 0:
            raise ReproError("ranking weights must be non-negative")
        if self.provenance + self.ai + self.crowd <= 0:
            raise ReproError("at least one ranking weight must be positive")


@dataclass(frozen=True)
class ArticleSignals:
    """The raw signals for one article, each in [0, 1] (None = missing)."""

    article_id: str
    provenance_score: float | None = None
    ai_score: float | None = None  # 1 - P(fake)
    crowd_score: float | None = None  # weighted factual share


@dataclass(frozen=True)
class RankedArticle:
    article_id: str
    score: float
    provenance_score: float | None
    ai_score: float | None
    crowd_score: float | None


class FactualnessRanker:
    """Combines per-article signals into a factualness score."""

    def __init__(self, weights: RankingWeights | None = None):
        self.weights = weights or RankingWeights()

    def score(self, signals: ArticleSignals, mode: str = "hybrid") -> float:
        """Score one article.

        Modes: ``hybrid`` (weighted fusion over available signals),
        ``provenance`` / ``ai`` / ``crowd`` (single signal; a missing
        single signal scores a neutral 0.5).
        """
        if mode == "provenance":
            return signals.provenance_score if signals.provenance_score is not None else 0.5
        if mode == "ai":
            return signals.ai_score if signals.ai_score is not None else 0.5
        if mode == "crowd":
            return signals.crowd_score if signals.crowd_score is not None else 0.5
        if mode != "hybrid":
            raise ReproError(f"unknown ranking mode {mode!r}")
        parts = [
            (self.weights.provenance, signals.provenance_score),
            (self.weights.ai, signals.ai_score),
            (self.weights.crowd, signals.crowd_score),
        ]
        available = [(w, s) for w, s in parts if s is not None and w > 0]
        if not available:
            return 0.5
        total_weight = sum(w for w, _ in available)
        return sum(w * s for w, s in available) / total_weight

    def rank(self, all_signals: list[ArticleSignals], mode: str = "hybrid") -> list[RankedArticle]:
        """Rank articles, most trustworthy first (stable by id on ties)."""
        ranked = [
            RankedArticle(
                article_id=s.article_id,
                score=self.score(s, mode=mode),
                provenance_score=s.provenance_score,
                ai_score=s.ai_score,
                crowd_score=s.crowd_score,
            )
            for s in all_signals
        ]
        ranked.sort(key=lambda r: (-r.score, r.article_id))
        return ranked
