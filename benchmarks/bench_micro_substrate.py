"""Micro-benchmarks of the substrate hot paths.

Not a paper experiment — the engineering baseline: what one signature,
one endorsement round-trip, one LocalChain transaction, and one
provenance query cost.  pytest-benchmark runs these with real repetition
statistics (unlike the one-shot experiment benches).
"""

from __future__ import annotations

import os
import random
import time

from benchmarks.conftest import emit
from repro.chain import LocalChain
from repro.chain.state import WorldState
from repro.core import ProvenanceIndex
from repro.corpus import CorpusGenerator
from repro.crypto import KeyPair, ed25519
from repro.obs import MetricsRegistry
from tests.conftest import CounterContract

# REPRO_BENCH_SMOKE=1 shrinks the slow crypto benches to a CI-sized
# sanity pass (exercise the code paths, skip the statistical claims).
_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def test_micro_ed25519_sign(benchmark):
    keypair = KeyPair.generate(random.Random(1))
    benchmark(keypair.sign, b"the quick brown fox")


def test_micro_ed25519_verify(benchmark):
    keypair = KeyPair.generate(random.Random(2))
    message = b"the quick brown fox"
    signature = keypair.sign(message)

    def verify_uncached():
        # Vary the message so the verification cache cannot short-circuit.
        verify_uncached.counter += 1
        payload = message + str(verify_uncached.counter).encode()
        return keypair.verify(payload, keypair.sign(payload))

    verify_uncached.counter = 0
    benchmark(verify_uncached)


def test_micro_ed25519_batch_verify(benchmark):
    """The PR-4 cost-center attack, quantified.

    Three implementations over the same honestly-signed items:

    - ``reference``: the seed-era verify (two independent scalar
      multiplications), kept in the module as ``_verify_reference``;
    - ``wnaf``: the current single-verify fast path (Straus/Shamir
      interleaved double-scalar multiplication with wNAF recoding);
    - ``batch-N``: ``verify_batch`` at batch sizes 1/8/32/128
      (random-linear-combination combined check).

    The verify cache is cleared between measurements so every number is
    curve math, not memoized verdicts.  Batches are measured twice: cold
    (point cache also cleared — every signer key pays decompression and
    table build) and steady-state (point cache warm — the chain workload,
    where a fixed validator set and recurring clients sign repeatedly).
    The steady-state batch-32 per-signature speedup over the reference
    is the acceptance bar for this optimisation (>= 2.5x).
    """
    sizes = (1, 8) if _SMOKE else (1, 8, 32, 128)
    reps = 1 if _SMOKE else 3
    n_items = max(sizes)
    items = []
    for i in range(n_items):
        seed = bytes([i % 251]) + bytes(31)
        pk = ed25519.generate_public_key(seed)
        msg = f"article-{i}".encode()
        items.append((pk, msg, ed25519.sign(seed, msg)))

    def _time_per_sig(fn, count, warm_points=False):
        best = float("inf")
        for _ in range(reps):
            ed25519.verify_cache_clear()
            if not warm_points:
                ed25519.point_cache_clear()
            start = time.perf_counter()
            fn()
            best = min(best, (time.perf_counter() - start) / count)
        return best * 1e3  # ms per signature

    ref_n = min(8, n_items) if _SMOKE else 32
    ref_ms = _time_per_sig(
        lambda: [ed25519._verify_reference(*item) for item in items[:ref_n]], ref_n
    )
    wnaf_ms = _time_per_sig(
        lambda: [ed25519.verify(*item) for item in items[:ref_n]], ref_n
    )
    batch_cold = {
        size: _time_per_sig(lambda s=size: ed25519.verify_batch(items[:s]), size)
        for size in sizes
    }
    ed25519.verify_batch(items)  # warm the point cache for steady-state rows
    batch_warm = {
        size: _time_per_sig(lambda s=size: ed25519.verify_batch(items[:s]), size,
                            warm_points=True)
        for size in sizes
    }
    assert ed25519.batch_stats()["bisections"] == 0  # honest items never bisect

    rows = [f"{'impl':<16} {'ms/sig':>8} {'speedup':>8}",
            f"{'reference':<16} {ref_ms:>8.3f} {'1.00x':>8}",
            f"{'wnaf':<16} {wnaf_ms:>8.3f} {ref_ms / wnaf_ms:>7.2f}x"]
    metrics = {"reference_ms_per_sig": ref_ms, "wnaf_ms_per_sig": wnaf_ms,
               "wnaf_speedup": ref_ms / wnaf_ms}
    for label, table, suffix in (("cold", batch_cold, "_cold"),
                                 ("warm", batch_warm, "")):
        for size in sizes:
            speedup = ref_ms / table[size]
            rows.append(f"{f'batch-{size}-{label}':<16} {table[size]:>8.3f} "
                        f"{speedup:>7.2f}x")
            metrics[f"batch{size}{suffix}_ms_per_sig"] = table[size]
            metrics[f"batch{size}{suffix}_speedup"] = speedup
    emit(benchmark, "micro — ed25519 verify: reference vs wNAF vs batched",
         rows, metrics=metrics)

    assert ref_ms / wnaf_ms > 1.0  # wNAF single verify must beat the seed
    if not _SMOKE:
        assert ref_ms / batch_warm[32] >= 2.5  # PR acceptance criterion
        assert ref_ms / batch_cold[32] >= 1.8  # cold path still a clear win
    ed25519.verify_cache_clear()
    ed25519.point_cache_clear()
    benchmark(lambda: (ed25519.verify_cache_clear(), ed25519.verify_batch(items[:8])))


def test_micro_localchain_invoke(benchmark):
    chain = LocalChain(seed=3)
    chain.install_contract(CounterContract())
    account = chain.new_account()

    def one_tx():
        chain.invoke(account, "counter", "increment")

    benchmark(one_tx)
    assert chain.ledger.height > 0


def test_micro_provenance_query(benchmark):
    gen = CorpusGenerator(seed=4)
    index = ProvenanceIndex(method="exact")
    for _ in range(200):
        article = gen.factual()
        index.add(article.article_id, article.text)
    query = gen.relay_derivation(gen.factual(), "q", 0.0)
    benchmark(index.discover_parents, query.text)


def test_micro_corpus_article(benchmark):
    gen = CorpusGenerator(seed=5)
    benchmark(gen.factual)


def test_micro_prefix_scan(benchmark):
    """Regression guard for the sorted-key prefix index.

    The seed implementation sorted every key on every scan —
    O(n log n) per query.  The index answers in O(log n + k); this
    measures both on the same 20k-key state and records the
    distributions in an obs registry so the speedup is part of the
    perf record, not just an eyeballed number.
    """
    state = WorldState()
    state.apply_write_set(
        {f"bucket{i % 40}/item-{i:06d}": {"i": i} for i in range(20_000)}
    )
    prefix = "bucket7/"

    def indexed_scan():
        return list(state.keys_with_prefix(prefix))

    def seed_scan():  # what keys_with_prefix did before the index
        return sorted(k for k in state._store if k.startswith(prefix))

    assert indexed_scan() == seed_scan()

    registry = MetricsRegistry()
    for name, scan in (("indexed", indexed_scan), ("full_sort", seed_scan)):
        hist = registry.histogram("micro.prefix_scan_us", impl=name)
        for _ in range(50):
            start = time.perf_counter()
            scan()
            hist.observe((time.perf_counter() - start) * 1e6)

    indexed = registry.histogram("micro.prefix_scan_us", impl="indexed").summary()
    full = registry.histogram("micro.prefix_scan_us", impl="full_sort").summary()
    speedup = full["p50"] / max(indexed["p50"], 1e-9)
    emit(
        None,
        "micro — prefix-scan index vs full-sort scan (20k keys)",
        [f"{'impl':<10} {'p50(us)':>9} {'p95(us)':>9}",
         f"{'indexed':<10} {indexed['p50']:>9.1f} {indexed['p95']:>9.1f}",
         f"{'full_sort':<10} {full['p50']:>9.1f} {full['p95']:>9.1f}",
         f"speedup (p50): {speedup:.1f}x"],
        metrics={"indexed_p50_us": indexed["p50"], "full_sort_p50_us": full["p50"],
                 "speedup_p50": speedup},
    )
    assert speedup > 2  # the index must beat re-sorting decisively
    benchmark(indexed_scan)
