"""The trusting-news ecosystem economy — contribution (4), Fig. 2.

Five roles interact: news consumers, content creators, fact checkers,
fake-news-detection AI developers, and media publishers.  The paper's
design: economic incentives "reward individuals for flagging behaviors
that do not meet the standards" and an app-store-like economy rewards
ethical tool developers.

:class:`TokenContract` is the on-chain settlement layer;
:class:`EcosystemSimulator` runs the round-based economy at experiment
scale (agent counts that would be silly to sign individual transactions
for) and reports who earns what — the E2 result is that honest behaviour
dominates dishonest behaviour in expectation, i.e. the incentive design
is compatible with the platform's goal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.chain.contracts import Contract, ContractContext, contract_method

__all__ = ["TokenContract", "EcosystemParams", "EcosystemAgent", "EcosystemSimulator"]


def balance_key(address: str) -> str:
    return f"bal:{address}"


class TokenContract(Contract):
    """Minimal fungible token: mint (root only), transfer, burn."""

    name = "token"

    @contract_method
    def mint(self, ctx: ContractContext, to: str, amount: int):
        """Mint new tokens; first minter becomes the economy root."""
        ctx.require(amount > 0, "amount must be positive")
        root = ctx.get("token-root")
        if root is None:
            ctx.put("token-root", ctx.caller)
        else:
            ctx.require(ctx.caller == root, "only the token root may mint")
        balance = ctx.get(balance_key(to)) or 0
        ctx.put(balance_key(to), balance + amount)
        ctx.emit("minted", to=to, amount=amount)
        return balance + amount

    @contract_method
    def transfer(self, ctx: ContractContext, to: str, amount: int):
        ctx.require(amount > 0, "amount must be positive")
        sender_balance = ctx.get(balance_key(ctx.caller)) or 0
        ctx.require(sender_balance >= amount, "insufficient balance")
        ctx.put(balance_key(ctx.caller), sender_balance - amount)
        recipient_balance = ctx.get(balance_key(to)) or 0
        ctx.put(balance_key(to), recipient_balance + amount)
        ctx.emit("transferred", frm=ctx.caller, to=to, amount=amount)
        return True

    @contract_method
    def balance_of(self, ctx: ContractContext, address: str):
        return ctx.get(balance_key(address)) or 0


@dataclass(frozen=True)
class EcosystemParams:
    """Tunable economics of one platform round."""

    consumption_fee: float = 1.0  # what a consumer pays per article read
    creator_share: float = 0.5  # of fees, to the article's creator
    checker_share: float = 0.2  # of fees, split across correct checkers
    developer_share: float = 0.1  # of fees, to AI tool developers
    publisher_share: float = 0.2  # of fees, to the hosting publisher
    panel_size: int = 5  # checkers sampled per article
    false_flag_penalty: float = 0.1  # checker slash for a wrong verdict
    fake_detection_bonus: float = 2.0  # bounty for flagging a real fake
    fake_caught_penalty: float = 3.0  # creator slash when their fake is caught
    detection_rate: float = 0.85  # platform's chance of catching a fake


@dataclass
class EcosystemAgent:
    """One economy participant."""

    agent_id: str
    role: str  # consumer | creator | checker | developer | publisher
    honest: bool
    balance: float = 0.0
    accuracy: float = 0.85  # checkers: verdict accuracy

    def earn(self, amount: float) -> None:
        self.balance += amount

    def pay(self, amount: float) -> None:
        self.balance -= amount


class EcosystemSimulator:
    """Round-based economy over the five ecosystem roles."""

    def __init__(self, agents: list[EcosystemAgent], params: EcosystemParams | None = None, seed: int = 0):
        self.agents = agents
        self.params = params or EcosystemParams()
        self.rng = random.Random(seed)
        self.round_log: list[dict[str, float]] = []

    @classmethod
    def generate(
        cls,
        n_agents: int = 300,
        seed: int = 0,
        dishonest_fraction: float = 0.2,
        role_mix: dict[str, float] | None = None,
    ) -> "EcosystemSimulator":
        role_mix = role_mix or {
            "consumer": 0.55,
            "creator": 0.2,
            "checker": 0.15,
            "developer": 0.04,
            "publisher": 0.06,
        }
        rng = random.Random(seed)
        roles: list[str] = []
        for role, fraction in role_mix.items():
            roles.extend([role] * round(n_agents * fraction))
        while len(roles) < n_agents:
            roles.append("consumer")
        rng.shuffle(roles)
        agents = [
            EcosystemAgent(
                agent_id=f"eco-{index:04d}",
                role=role,
                honest=rng.random() > dishonest_fraction,
                accuracy=rng.uniform(0.75, 0.95),
            )
            for index, role in enumerate(roles[:n_agents])
        ]
        return cls(agents, seed=seed + 1)

    def _by_role(self, role: str) -> list[EcosystemAgent]:
        return [a for a in self.agents if a.role == role]

    def run_round(self) -> dict[str, float]:
        """One platform round: publish, check, consume, settle.

        Per creator: publish one article (dishonest creators publish
        fakes).  Checkers vote; the platform verdict (detection_rate
        accurate on fakes) drives settlement.  Consumers read and pay
        fees on articles the platform surfaced as trustworthy.
        """
        params = self.params
        creators = self._by_role("creator")
        checkers = self._by_role("checker")
        consumers = self._by_role("consumer")
        developers = self._by_role("developer")
        publishers = self._by_role("publisher")
        flows = {"fees": 0.0, "bounties": 0.0, "penalties": 0.0}
        for creator in creators:
            is_fake = not creator.honest
            caught = is_fake and self.rng.random() < params.detection_rate
            # Checkers vote on the article; correct ones share the bounty
            # (for fakes) or the checker fee pool (for factual articles).
            panel = (
                self.rng.sample(checkers, min(params.panel_size, len(checkers)))
                if checkers
                else []
            )
            correct_checkers = []
            wrong_checkers = []
            for checker in panel:
                correct_verdict = self.rng.random() < checker.accuracy
                votes_fake = is_fake if correct_verdict else not is_fake
                if not checker.honest:
                    votes_fake = False  # colluding checkers whitewash everything
                if votes_fake == is_fake:
                    correct_checkers.append(checker)
                else:
                    wrong_checkers.append(checker)
                    if votes_fake and not is_fake:
                        checker.pay(params.false_flag_penalty)
                        flows["penalties"] += params.false_flag_penalty
            if caught:
                creator.pay(params.fake_caught_penalty)
                flows["penalties"] += params.fake_caught_penalty
                # Checkers who whitewashed a caught fake answer for it —
                # the accountability that makes collusion unprofitable.
                for checker in wrong_checkers:
                    checker.pay(params.false_flag_penalty)
                    flows["penalties"] += params.false_flag_penalty
                bounty_each = params.fake_detection_bonus / max(1, len(correct_checkers))
                for checker in correct_checkers:
                    checker.earn(bounty_each)
                    flows["bounties"] += bounty_each
                continue  # caught fakes earn nothing downstream
            # Article is surfaced; a sample of consumers reads it.
            n_readers = max(1, len(consumers) // max(1, len(creators)))
            readers = self.rng.sample(consumers, min(n_readers, len(consumers)))
            fee_pool = params.consumption_fee * len(readers)
            for reader in readers:
                reader.pay(params.consumption_fee)
            flows["fees"] += fee_pool
            creator.earn(fee_pool * params.creator_share)
            checker_pool = fee_pool * params.checker_share
            for checker in correct_checkers or panel:
                checker.earn(checker_pool / max(1, len(correct_checkers or panel)))
            if developers:
                for developer in developers:
                    developer.earn(fee_pool * params.developer_share / len(developers))
            if publishers:
                host = self.rng.choice(publishers)
                host.earn(fee_pool * params.publisher_share)
        self.round_log.append(flows)
        return flows

    def run(self, n_rounds: int = 30) -> None:
        for _ in range(n_rounds):
            self.run_round()

    def earnings_by(self, role: str | None = None) -> dict[str, float]:
        """Mean balance grouped by honesty (optionally within a role)."""
        groups: dict[str, list[float]] = {"honest": [], "dishonest": []}
        for agent in self.agents:
            if role is not None and agent.role != role:
                continue
            groups["honest" if agent.honest else "dishonest"].append(agent.balance)
        return {
            key: (sum(values) / len(values) if values else 0.0)
            for key, values in groups.items()
        }
