"""Exporters: JSON-lines timeline, markdown summary, perf records.

The JSON-lines file is the durable artifact: one record per line —
``{"type": "meta", ...}`` then every finished span and every metric.
:func:`report_from_records` rebuilds the per-phase latency breakdown
from those parsed records alone (no live registry needed), which is what
``repro-news report`` does; :func:`markdown_report` is the same builder
fed straight from a live registry/tracer, so the two paths can never
drift apart.

Perf records are small JSON dicts benchmarks append to
``benchmarks/latest_obs.json`` so the performance trajectory accumulates
run over run.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "export_jsonl",
    "read_jsonl",
    "markdown_report",
    "report_from_records",
    "write_perf_record",
    "append_perf_record",
    "snapshot_crypto_cache",
]

#: Histogram-name prefix the phase-breakdown table is built from.
PHASE_PREFIX = "phase."


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


# -- JSON-lines timeline ----------------------------------------------------

def export_jsonl(
    path: str | pathlib.Path,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    meta: dict[str, Any] | None = None,
) -> int:
    """Write the full timeline; returns the number of records written."""
    records: list[dict[str, Any]] = [{"type": "meta", **(meta or {})}]
    if tracer is not None:
        records.extend(tracer.records())
        if tracer.dropped:
            records.append({"type": "meta", "spans_dropped": tracer.dropped})
    if registry is not None:
        records.extend(registry.collect())
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_jsonable(record), sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse a JSON-lines timeline back into records."""
    records = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- markdown report --------------------------------------------------------

def _merge_phase(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Pool one phase's histogram records across label sets."""
    count = sum(r["summary"]["count"] for r in records)
    total = sum(r["summary"]["total"] for r in records)
    pooled = Histogram("pooled", {})
    for record in records:
        for value in record.get("values", ()):
            pooled.observe(value)
    return {
        "count": int(count),
        "mean": total / count if count else 0.0,
        "p50": pooled.percentile(50),
        "p95": pooled.percentile(95),
        "p99": pooled.percentile(99),
        "max": max((r["summary"]["max"] for r in records if r["summary"]["count"]),
                   default=0.0),
    }


def report_from_records(records: Iterable[dict[str, Any]], title: str = "Observability report") -> str:
    """Markdown summary reconstructed from parsed JSON-lines records."""
    records = list(records)
    histograms: dict[str, list[dict[str, Any]]] = {}
    counters: dict[str, float] = {}
    spans: dict[str, list[float]] = {}
    for record in records:
        kind = record.get("type")
        if kind == "metric" and record.get("kind") == "histogram":
            histograms.setdefault(record["name"], []).append(record)
        elif kind == "metric" and record.get("kind") in ("counter", "gauge"):
            counters[record["name"]] = counters.get(record["name"], 0) + record["value"]
        elif kind == "span" and record.get("end") is not None:
            spans.setdefault(record["name"], []).append(record["duration"])

    lines = [f"# {title}", ""]

    phase_names = sorted(n for n in histograms if n.startswith(PHASE_PREFIX))
    if phase_names:
        lines += [
            "## Per-phase latency (simulated seconds unless noted)",
            "",
            "| phase | count | mean | p50 | p95 | p99 | max |",
            "|---|---:|---:|---:|---:|---:|---:|",
        ]
        for name in phase_names:
            merged = _merge_phase(histograms[name])
            if not merged["count"]:
                continue  # registered but never observed (e.g. no sync ran)
            lines.append(
                f"| {name[len(PHASE_PREFIX):]} | {merged['count']} | {merged['mean']:.4f} "
                f"| {merged['p50']:.4f} | {merged['p95']:.4f} | {merged['p99']:.4f} "
                f"| {merged['max']:.4f} |"
            )
        lines.append("")

    other_hists = sorted(n for n in histograms if not n.startswith(PHASE_PREFIX))
    if other_hists:
        lines += ["## Other distributions", "",
                  "| histogram | count | mean | p50 | p95 | p99 |",
                  "|---|---:|---:|---:|---:|---:|"]
        for name in other_hists:
            merged = _merge_phase(histograms[name])
            if not merged["count"]:
                continue
            lines.append(
                f"| {name} | {merged['count']} | {merged['mean']:.4f} | {merged['p50']:.4f} "
                f"| {merged['p95']:.4f} | {merged['p99']:.4f} |"
            )
        lines.append("")

    if spans:
        lines += ["## Traced spans", "",
                  "| span | count | mean dur | max dur |",
                  "|---|---:|---:|---:|"]
        for name in sorted(spans):
            durations = spans[name]
            lines.append(
                f"| {name} | {len(durations)} | {sum(durations) / len(durations):.4f} "
                f"| {max(durations):.4f} |"
            )
        lines.append("")

    if counters:
        lines += ["## Counters (summed across labels)", "",
                  "| counter | total |", "|---|---:|"]
        for name in sorted(counters):
            value = counters[name]
            text = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"| {name} | {text} |")
        lines.append("")

    return "\n".join(lines)


def markdown_report(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    title: str = "Observability report",
) -> str:
    """Markdown summary straight from a live registry/tracer."""
    records: list[dict[str, Any]] = []
    if tracer is not None:
        records.extend(tracer.records())
    if registry is not None:
        records.extend(registry.collect())
    return report_from_records(records, title=title)


# -- perf records (benchmark trajectory) ------------------------------------

def write_perf_record(path: str | pathlib.Path, record: dict[str, Any]) -> None:
    """Overwrite *path* with a single perf-record JSON document."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(record), indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def append_perf_record(
    path: str | pathlib.Path, record: dict[str, Any], reset: bool = False
) -> list[dict[str, Any]]:
    """Append *record* to the JSON array at *path*; returns the array.

    With ``reset`` the file is truncated first (benchmarks reset once
    per session so the snapshot reflects the latest run only).
    """
    path = pathlib.Path(path)
    existing: list[dict[str, Any]] = []
    if not reset and path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, list):
                existing = loaded
        except (json.JSONDecodeError, OSError):
            existing = []
    existing.append(_jsonable(record))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return existing


# -- crypto cache bridge ----------------------------------------------------

def snapshot_crypto_cache(registry: MetricsRegistry) -> dict[str, int]:
    """Mirror the Ed25519 cache and batching stats into *registry*.

    The returned dict keeps the seed shape (the verify-cache stats);
    point-cache and batch-verification counters ride along as extra
    gauges only.
    """
    from repro.crypto import ed25519

    stats = ed25519.verify_cache_stats()
    for key, value in stats.items():
        registry.gauge(f"crypto.verify_cache_{key}").set(value)
    for key, value in ed25519.point_cache_stats().items():
        registry.gauge(f"crypto.point_cache_{key}").set(value)
    for key, value in ed25519.batch_stats().items():
        registry.gauge(f"crypto.batch_{key}").set(value)
    return stats
