"""A6 — the price of faults: consensus under crash and byzantine load.

The paper's platform "demands a high performance blockchain network"
(§VII) that must also survive misbehaving participants (§IV).  This
ablation quantifies what each fault class costs on the same workload
(40 txs, 4 validators):

- healthy PBFT (baseline),
- PBFT with one crashed replica (f = 1, inside the bound),
- PBFT with a crashed *primary* (forces view changes),
- PBFT with an equivocating byzantine primary,
- healthy PoA for scale.

Reported: committed tx count, mean commit latency, view changes, and
messages per committed tx.  Expected shape: replica crash ~free,
primary faults cost latency (timeout + view change) but never safety.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.chain import BlockchainNetwork
from repro.simnet import FixedLatency

N_TXS = 40


def _run(label: str, crash: str | None = None, byzantine: set[str] | None = None,
         consensus: str = "pbft"):
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus=consensus, block_interval=0.4,
        latency=FixedLatency(0.02), seed=1600,
        byzantine_peers=byzantine or set(), view_timeout=2.5,
    )
    network.install_contract(CounterContract)
    if crash is not None:
        network.net.node(crash).crashed = True
    client = network.client()
    submitted = []
    # Bursts of 4 so blocks carry several transactions — a byzantine
    # primary can only equivocate over multi-tx batches.
    for burst_start in range(0, N_TXS, 4):
        for index in range(burst_start, burst_start + 4):
            tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
            entry = network.peers[(index % 3) + 1]  # avoid the (possibly dead) peer-0
            if not entry.submit(tx).accepted:
                # The entry peer refused (e.g. it is the crashed replica);
                # a real client's RPC would fail and retry elsewhere.
                network.submit(tx)
            submitted.append(tx.tx_id)
        network.run_for(2.4)
    network.run_for(25)
    network.assert_convergence()
    live = [p for p in network.peers if not p.crashed and not p.byzantine]
    reference = max(live, key=lambda p: p.ledger.height)
    committed = sum(1 for tx_id in submitted if tx_id in reference.receipts)
    latency = reference.metrics.mean_commit_latency
    view_changes = max(
        getattr(p.engine, "view_changes_completed", 0) for p in live
    )
    messages = network.net.stats.sent / max(1, reference.metrics.txs_committed_valid)
    return label, committed, latency, view_changes, messages


def _sweep():
    return [
        _run("pbft healthy"),
        _run("pbft replica crash", crash="peer-3"),
        _run("pbft primary crash", crash="peer-0"),
        _run("pbft byzantine primary", byzantine={"peer-0"}),
        _run("poa healthy", consensus="poa"),
    ]


def test_a6_fault_cost(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [f"{'scenario':<24} {'committed':>9} {'latency(s)':>11} "
            f"{'view-changes':>13} {'msgs/tx':>8}"]
    for label, committed, latency, view_changes, messages in results:
        rows.append(
            f"{label:<24} {committed:>7}/{N_TXS} {latency:>11.2f} "
            f"{view_changes:>13} {messages:>8.1f}"
        )
    rows.append("shape: replica crash is ~free; primary faults pay view-change "
                "latency; safety holds in every scenario (assert_convergence)")
    emit(benchmark, "A6 — what each fault class costs", rows)
    by_label = {r[0]: r for r in results}
    healthy = by_label["pbft healthy"]
    assert healthy[1] == N_TXS
    assert by_label["pbft replica crash"][1] == N_TXS  # f=1 tolerated
    # Primary faults recover liveness through view changes.
    assert by_label["pbft primary crash"][3] >= 1
    assert by_label["pbft primary crash"][1] >= 0.9 * N_TXS
    assert by_label["pbft primary crash"][2] > healthy[2]  # latency cost
    assert by_label["pbft byzantine primary"][1] >= 0.9 * N_TXS
