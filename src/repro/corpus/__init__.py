"""Synthetic news corpus with ground-truth provenance.

Replaces the paper's (unavailable) public news datasets with articles
whose fake/factual labels, derivation parents, and modification degrees
are known *by construction* — calibrated to the paper's cited statistic
that 72.3 % of fake news is modified factual news.
"""

from repro.corpus.articles import (
    FAKE_DISTORTION_THRESHOLD,
    Article,
    make_fabricated_article,
    make_factual_article,
)
from repro.corpus.generator import PAPER_MUTATED_FAKE_FRACTION, CorpusGenerator, LabeledCorpus
from repro.corpus.lexicon import tokenize
from repro.corpus.mutations import (
    MUTATION_OPS,
    distort,
    insert,
    measured_change,
    merge,
    mix,
    relay,
    split,
)
from repro.corpus.similarity import (
    cosine_similarity,
    estimated_jaccard,
    jaccard,
    minhash_signature,
    shingles,
)
from repro.corpus.topics import TOPICS, Topic, topic_by_name

__all__ = [
    "FAKE_DISTORTION_THRESHOLD",
    "Article",
    "make_fabricated_article",
    "make_factual_article",
    "PAPER_MUTATED_FAKE_FRACTION",
    "CorpusGenerator",
    "LabeledCorpus",
    "tokenize",
    "MUTATION_OPS",
    "distort",
    "insert",
    "measured_change",
    "merge",
    "mix",
    "relay",
    "split",
    "cosine_similarity",
    "estimated_jaccard",
    "jaccard",
    "minhash_signature",
    "shingles",
    "TOPICS",
    "Topic",
    "topic_by_name",
]
