"""NB, logistic regression, SVM: correctness on separable data, API misuse."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import LinearSVM, LogisticRegression, MultinomialNaiveBayes


@pytest.fixture
def separable():
    """Two well-separated clusters of count-like features."""
    rng = np.random.default_rng(0)
    X0 = rng.poisson(lam=[5, 1, 1, 5], size=(60, 4)).astype(float)
    X1 = rng.poisson(lam=[1, 5, 5, 1], size=(60, 4)).astype(float)
    X = np.vstack([X0, X1])
    y = np.array([0] * 60 + [1] * 60)
    return X, y


MODELS = [
    lambda: MultinomialNaiveBayes(),
    lambda: LogisticRegression(),
    lambda: LinearSVM(),
]


@pytest.mark.parametrize("factory", MODELS)
def test_fits_separable_data(factory, separable):
    X, y = separable
    model = factory().fit(X, y)
    accuracy = float(np.mean(model.predict(X) == y))
    assert accuracy > 0.9


@pytest.mark.parametrize("factory", MODELS)
def test_score_fake_in_unit_interval(factory, separable):
    X, y = separable
    model = factory().fit(X, y)
    scores = model.score_fake(X)
    assert np.all((scores >= 0) & (scores <= 1))
    # Positive examples score higher on average.
    assert scores[y == 1].mean() > scores[y == 0].mean()


@pytest.mark.parametrize("factory", MODELS)
def test_predict_before_fit_raises(factory):
    with pytest.raises(MLError):
        factory().predict(np.zeros((2, 4)))


def test_nb_rejects_negative_features():
    X = np.array([[1.0, -1.0]])
    with pytest.raises(MLError):
        MultinomialNaiveBayes().fit(X, np.array([0]))


def test_nb_predict_proba_sums_to_one(separable):
    X, y = separable
    proba = MultinomialNaiveBayes().fit(X, y).predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_nb_alpha_validation():
    with pytest.raises(MLError):
        MultinomialNaiveBayes(alpha=0)


def test_logistic_dimension_mismatch(separable):
    X, y = separable
    model = LogisticRegression().fit(X, y)
    with pytest.raises(MLError):
        model.predict(np.zeros((2, 7)))


def test_logistic_rejects_non_binary_labels():
    with pytest.raises(MLError):
        LogisticRegression().fit(np.zeros((3, 2)), np.array([0, 1, 2]))


def test_logistic_length_mismatch():
    with pytest.raises(MLError):
        LogisticRegression().fit(np.zeros((3, 2)), np.array([0, 1]))


def test_logistic_converges_and_records(separable):
    X, y = separable
    model = LogisticRegression(n_iterations=2000, tolerance=1e-9).fit(X, y)
    assert model.weights_ is not None


def test_svm_deterministic_with_seed(separable):
    X, y = separable
    a = LinearSVM(seed=3).fit(X, y)
    b = LinearSVM(seed=3).fit(X, y)
    assert np.allclose(a.weights_, b.weights_)


def test_svm_rejects_bad_params():
    with pytest.raises(MLError):
        LinearSVM(l2=0)
    with pytest.raises(MLError):
        LinearSVM(n_epochs=0)


def test_svm_rejects_non_binary():
    with pytest.raises(MLError):
        LinearSVM().fit(np.zeros((2, 2)), np.array([1, 2]))
