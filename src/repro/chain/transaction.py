"""Signed transactions and their lifecycle artifacts.

The chain follows Hyperledger Fabric's *execute–order–validate* model,
which the paper's platform builds on (its refs [45], [54]):

1. A client signs a **proposal** (contract, method, args).
2. Endorsing peers *execute* it against their current state, producing a
   read set (keys + versions) and a write set; they sign the result.
3. The ordering service batches endorsed transactions into blocks.
4. Every peer *validates* each transaction's read set against current
   state versions (MVCC) and applies the write set only if it is fresh.

The transaction id is the hash of the proposal alone, so a transaction
is identifiable before endorsement and the id cannot be changed by a
malicious endorser.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any

from repro.crypto.hashing import hash_json, sha256_hex
from repro.crypto.keys import KeyPair, address_from_public_key, verify_signature
from repro.errors import InvalidTransactionError

__all__ = [
    "Transaction",
    "Endorsement",
    "ReadSet",
    "WriteSet",
    "TxReceipt",
    "signature_items",
]

# A read set maps key -> version observed during simulated execution.
ReadSet = dict[str, int]
# A write set maps key -> new value (None encodes deletion).
WriteSet = dict[str, Any]


def _proposal_payload(
    sender: str, contract: str, method: str, args: dict[str, Any], nonce: int, timestamp: float
) -> bytes:
    body = {
        "sender": sender,
        "contract": contract,
        "method": method,
        "args": args,
        "nonce": nonce,
        "timestamp": timestamp,
    }
    return json.dumps(body, sort_keys=True, separators=(",", ":"), default=str).encode("utf-8")


def rwset_digest(read_set: ReadSet, write_set: WriteSet) -> str:
    """Digest endorsers sign: commits them to one simulated execution."""
    return hash_json({"reads": read_set, "writes": write_set})


@dataclass(frozen=True)
class Endorsement:
    """One endorsing peer's signature over (tx_id, rw-set digest)."""

    peer_id: str
    public_key_hex: str
    digest: str
    signature_hex: str

    def verify(self, tx_id: str) -> bool:
        item = self.signature_item(tx_id)
        if item is None:
            return False
        return verify_signature(*item)

    def signature_item(self, tx_id: str) -> tuple[bytes, bytes, bytes] | None:
        """The ``(public_key, message, signature)`` triple :meth:`verify`
        checks, for batch verification; ``None`` if the hex fields don't
        decode (in which case :meth:`verify` is ``False`` anyway)."""
        try:
            public_key = bytes.fromhex(self.public_key_hex)
            signature = bytes.fromhex(self.signature_hex)
        except ValueError:
            return None
        return (public_key, f"{tx_id}:{self.digest}".encode("utf-8"), signature)

    @classmethod
    def create(cls, keypair: KeyPair, peer_id: str, tx_id: str, digest: str) -> "Endorsement":
        message = f"{tx_id}:{digest}".encode("utf-8")
        return cls(
            peer_id=peer_id,
            public_key_hex=keypair.public_key.hex(),
            digest=digest,
            signature_hex=keypair.sign(message).hex(),
        )


@dataclass(frozen=True)
class Transaction:
    """A signed contract invocation, optionally carrying endorsements."""

    sender: str
    public_key_hex: str
    contract: str
    method: str
    args: dict[str, Any]
    nonce: int
    timestamp: float
    signature_hex: str
    tx_id: str
    read_set: ReadSet = field(default_factory=dict)
    write_set: WriteSet = field(default_factory=dict)
    endorsements: tuple[Endorsement, ...] = ()
    events: tuple[dict[str, Any], ...] = ()
    return_value: Any = None

    @classmethod
    def create(
        cls,
        keypair: KeyPair,
        contract: str,
        method: str,
        args: dict[str, Any] | None = None,
        nonce: int = 0,
        timestamp: float = 0.0,
    ) -> "Transaction":
        """Build and sign a proposal (steps before endorsement)."""
        args = args or {}
        payload = _proposal_payload(keypair.address, contract, method, args, nonce, timestamp)
        return cls(
            sender=keypair.address,
            public_key_hex=keypair.public_key.hex(),
            contract=contract,
            method=method,
            args=args,
            nonce=nonce,
            timestamp=timestamp,
            signature_hex=keypair.sign(payload).hex(),
            tx_id=sha256_hex(payload),
        )

    def verify_signature(self) -> bool:
        """Check the client signature and that sender matches the key."""
        item = self.signature_item()
        if item is None:
            return False
        public_key, payload, signature = item
        if address_from_public_key(public_key) != self.sender:
            return False
        if sha256_hex(payload) != self.tx_id:
            return False
        return verify_signature(public_key, payload, signature)

    def signature_item(self) -> tuple[bytes, bytes, bytes] | None:
        """The client-signature ``(public_key, message, signature)``
        triple, for batch verification; ``None`` if the hex fields don't
        decode.  Address/tx-id binding is NOT checked here — those are
        cheap equality checks :meth:`verify_signature` still performs."""
        try:
            public_key = bytes.fromhex(self.public_key_hex)
            signature = bytes.fromhex(self.signature_hex)
        except ValueError:
            return None
        payload = _proposal_payload(
            self.sender, self.contract, self.method, self.args, self.nonce, self.timestamp
        )
        return (public_key, payload, signature)

    def validate_structure(self) -> None:
        """Raise :class:`InvalidTransactionError` on a malformed tx."""
        if not self.contract or not self.method:
            raise InvalidTransactionError("transaction must name a contract and method")
        if not self.verify_signature():
            raise InvalidTransactionError(f"bad signature on tx {self.tx_id[:12]}")

    def with_execution(
        self,
        read_set: ReadSet,
        write_set: WriteSet,
        events: tuple[dict[str, Any], ...],
        return_value: Any,
        endorsements: tuple[Endorsement, ...],
    ) -> "Transaction":
        """Attach simulated-execution results (endorsement phase)."""
        return replace(
            self,
            read_set=dict(read_set),
            write_set=dict(write_set),
            events=events,
            return_value=return_value,
            endorsements=endorsements,
        )

    @property
    def rwset_digest(self) -> str:
        return rwset_digest(self.read_set, self.write_set)


def signature_items(txs: "list[Transaction] | tuple[Transaction, ...]") -> list[tuple[bytes, bytes, bytes]]:
    """Every signature a validator will check across *txs* — each client
    proposal signature plus every endorsement signature — as raw
    ``(public_key, message, signature)`` triples ready for
    :func:`repro.crypto.verify_many`.  Undecodable hex fields are
    skipped; the per-transaction checks reject those without ever
    reaching a curve operation."""
    items: list[tuple[bytes, bytes, bytes]] = []
    for tx in txs:
        item = tx.signature_item()
        if item is not None:
            items.append(item)
        for endorsement in tx.endorsements:
            item = endorsement.signature_item(tx.tx_id)
            if item is not None:
                items.append(item)
    return items


@dataclass(frozen=True)
class TxReceipt:
    """What a client gets back after its transaction reaches a block."""

    tx_id: str
    block_height: int
    success: bool
    return_value: Any = None
    events: tuple[dict[str, Any], ...] = ()
    error: str | None = None
    gas_used: int = 0
