"""Property: the scalar fast path in state reads/writes never aliases.

``WorldState.get`` / ``StateSnapshot.get`` / ``StateSnapshot.put`` skip
the defensive ``copy.deepcopy`` for immutable JSON scalars (str, int,
float, bool, None) — that copy dominated the endorse/commit hot path —
but must keep deep-copying containers: a caller mutating a returned
list/dict, or mutating a value it previously ``put``, must never reach
committed state.  Hypothesis drives arbitrary JSON documents through
both paths and proves no mutation leaks.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.state import WorldState

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


def _mutate_in_place(value):
    """Mutate every mutable container reachable from *value*."""
    if isinstance(value, list):
        value.append("TAMPERED")
        for item in value[:-1]:
            _mutate_in_place(item)
    elif isinstance(value, dict):
        value["TAMPERED"] = True
        for item in value.values():
            _mutate_in_place(item)


@settings(max_examples=60, deadline=None)
@given(value=json_values)
def test_committed_value_isolated_from_caller_mutation(value):
    state = WorldState()
    original = copy.deepcopy(value)
    state.apply_write_set({"k": value})

    # Mutating what the caller passed in must not change committed state.
    _mutate_in_place(value)
    assert state.get("k") == original

    # Mutating what a read returned must not change committed state.
    returned = state.get("k")
    _mutate_in_place(returned)
    assert state.get("k") == original


@settings(max_examples=60, deadline=None)
@given(value=json_values)
def test_snapshot_put_and_get_are_isolated(value):
    state = WorldState()
    snapshot = state.snapshot()
    if value is None:
        return  # None is the deletion marker; put() rejects it
    original = copy.deepcopy(value)
    snapshot.put("k", value)

    # The write buffer must not alias the caller's object...
    _mutate_in_place(value)
    assert snapshot.get("k") == original

    # ...and read-your-writes results must not alias the buffer.
    returned = snapshot.get("k")
    _mutate_in_place(returned)
    assert snapshot.get("k") == original

    # Committing the buffered writes carries the untampered value.
    state.apply_write_set(snapshot.write_buffer)
    assert state.get("k") == original


@settings(max_examples=30, deadline=None)
@given(value=json_values)
def test_scalar_fast_path_skips_copy(value):
    """The perf contract itself: scalars come back identical (no copy),
    containers come back equal but distinct objects."""
    state = WorldState()
    state.apply_write_set({"k": value})
    returned = state.get("k")
    assert returned == value
    if isinstance(value, (list, dict)):
        assert returned is not value
