"""Command-line interface: drive the platform without writing code.

Installed as the ``repro-news`` console script::

    repro-news demo quickstart          # run a packaged scenario
    repro-news corpus --out news.jsonl  # generate a labeled corpus
    repro-news race --trials 10         # fake-vs-factual race summary
    repro-news stats                    # build a world and print analytics
    repro-news explore                  # index-served block-explorer queries
    repro-news store --demo             # durable-store fault/recovery tour

Each subcommand is a thin wrapper over the public API, so the CLI doubles
as living documentation of the library's entry points.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-news",
        description="AI blockchain platform for trusting news (ICDCS 2019 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run a packaged example scenario")
    demo.add_argument(
        "scenario",
        choices=("quickstart", "newsroom", "election", "experts"),
        help="which scenario to run",
    )

    corpus = subparsers.add_parser("corpus", help="generate a labeled news corpus (JSONL)")
    corpus.add_argument("--out", required=True, help="output JSONL path")
    corpus.add_argument("--factual", type=int, default=200, help="factual article count")
    corpus.add_argument("--fake", type=int, default=200, help="fake article count")
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument(
        "--mutated-fraction", type=float, default=0.723,
        help="share of fakes derived from factual parents (paper: 0.723)",
    )

    race = subparsers.add_parser("race", help="fake-vs-factual propagation race")
    race.add_argument("--trials", type=int, default=10)
    race.add_argument("--agents", type=int, default=400)
    race.add_argument("--seed", type=int, default=0)

    subparsers.add_parser("stats", help="build a demo world and print ledger analytics")

    explore = subparsers.add_parser(
        "explore",
        help="block-explorer queries over a demo chain, answered from the "
        "materialized index (cross-checked against the ledger scan)",
    )
    explore.add_argument("--contract", default=None, help="filter by contract name")
    explore.add_argument("--method", default=None, help="filter by contract method")
    explore.add_argument("--sender", default=None, help="filter by sender address")
    explore.add_argument("--limit", type=int, default=10, help="max rows (default: 10)")
    explore.add_argument("--seed", type=int, default=77)

    report = subparsers.add_parser(
        "report", help="per-phase latency report from an observability trace"
    )
    report.add_argument(
        "--trace", default="benchmarks/latest_trace.jsonl",
        help="JSON-lines trace to summarise (default: benchmarks/latest_trace.jsonl)",
    )
    report.add_argument(
        "--demo", action="store_true",
        help="first run a small traced workload and write --trace from it",
    )
    report.add_argument(
        "--consensus", choices=("poa", "pbft"), default="pbft",
        help="consensus engine for --demo (default: pbft — a crashed peer "
        "falls behind and the sync-fetch phase shows up in the breakdown)",
    )
    report.add_argument("--txs", type=int, default=30, help="--demo transaction count")
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", default=None, help="also write the markdown here")

    store = subparsers.add_parser(
        "store", help="inspect a durable block store (log, snapshots, recovery plan)"
    )
    store.add_argument(
        "--demo", action="store_true",
        help="run a small durable-storage workload with an injected disk "
        "fault, crash-restart one peer through recovery, and inspect it",
    )
    store.add_argument(
        "--fault", choices=("torn", "partial", "bitflip", "none"), default="torn",
        help="--demo disk fault to inject at the crash (default: torn)",
    )
    store.add_argument("--txs", type=int, default=30, help="--demo transaction count")
    store.add_argument("--seed", type=int, default=7)
    store.add_argument(
        "--backend", choices=("durable", "sqlite"), default="durable",
        help="--demo storage backend: CRC-framed snapshot files (durable) "
        "or serialized sqlite3 images with interned tx tables (sqlite)",
    )
    store.add_argument(
        "--dump", default=None, metavar="DIR",
        help="--demo: also write the faulted peer's disk files to DIR",
    )
    store.add_argument(
        "--dir", default=None, metavar="DIR",
        help="inspect store files (blocks.log, snapshot-*) previously "
        "dumped to DIR instead of running a demo",
    )

    # `lint` owns its own argv — main() forwards everything after the
    # subcommand to repro.analysis before this parser runs, so that
    # `repro-news lint` and `python -m repro.analysis` stay identical.
    # Registered here only so it appears in `repro-news -h`.
    subparsers.add_parser(
        "lint",
        help="determinism & simulation-safety static analysis (docs/LINTS.md)",
        add_help=False,
    )
    return parser


_DEMO_FILES = {
    "quickstart": "quickstart.py",
    "newsroom": "newsroom_workflow.py",
    "election": "election_misinformation.py",
    "experts": "expert_discovery.py",
}


def _run_demo(scenario: str) -> int:
    """Locate and run a packaged example script.

    Examples live in the repository's ``examples/`` directory (they are
    documentation, not package modules), so look relative to the current
    directory and to the repository root above this file.
    """
    import pathlib
    import runpy

    filename = _DEMO_FILES[scenario]
    candidates = [
        pathlib.Path.cwd() / "examples" / filename,
        pathlib.Path(__file__).resolve().parents[2] / "examples" / filename,
    ]
    for candidate in candidates:
        if candidate.exists():
            namespace = runpy.run_path(str(candidate))
            namespace["main"]()
            return 0
    print(f"could not find examples/{filename}; run from the repository root",
          file=sys.stderr)
    return 1


def _run_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusGenerator
    from repro.corpus.io import save_corpus

    generator = CorpusGenerator(seed=args.seed)
    corpus = generator.labeled_corpus(
        n_factual=args.factual, n_fake=args.fake,
        mutated_fake_fraction=args.mutated_fraction,
    )
    written = save_corpus(corpus, args.out)
    print(f"wrote {written} articles ({len(corpus.fakes)} fake / "
          f"{len(corpus.factual)} factual) to {args.out}")
    return 0


def _run_race(args: argparse.Namespace) -> int:
    from repro.social import run_races

    baseline = run_races(n_trials=args.trials, n_agents=args.agents,
                         seed=args.seed, intervene=False)
    treated = run_races(n_trials=args.trials, n_agents=args.agents,
                        seed=args.seed, intervene=True)
    print(f"{'regime':<14} {'factual':>9} {'fake':>9} {'advantage':>10}")
    for name, summary in (("no platform", baseline), ("with platform", treated)):
        print(f"{name:<14} {summary.mean_factual:>9.1f} {summary.mean_fake:>9.1f} "
              f"{summary.fake_advantage:>9.2f}x")
    return 0


def _build_demo_world(seed: int = 77):
    """The shared demo world: a cascade of shares committed on-chain.
    Used by both ``stats`` (analytics) and ``explore`` (index queries)."""
    import random

    from repro.core import TrustingNewsPlatform
    from repro.corpus import CorpusGenerator
    from repro.social import CascadeRunner, bind_agents, make_population, scale_free_follow_graph

    platform = TrustingNewsPlatform(seed=seed)
    graph = scale_free_follow_graph(200, seed=seed)
    agents = make_population(200, random.Random(seed))
    bind_agents(graph, agents)
    corpus = CorpusGenerator(seed=seed + 1)
    fact = corpus.factual(topic="politics")
    platform.seed_fact("f-demo", fact.text, "public-record", "politics")
    seed_share = corpus.relay_derivation(fact, "agent-00000", 0.0)

    class _Seed:
        agent_id = "agent-00000"
        parent_article_id = ""
        op = "relay"

    platform.ingest_share(_Seed(), seed_share, topic="politics")
    runner = CascadeRunner(
        graph, corpus,
        on_share=lambda event, article: platform.ingest_share(event, article, topic="politics"),
    )
    hub = max(graph.nodes(), key=lambda n: graph.out_degree(n))
    runner.run([(hub, seed_share)], n_rounds=6)
    return platform


def _run_stats() -> int:
    from repro.core import account_report, topic_statistics

    platform = _build_demo_world(seed=77)
    print("topic statistics:")
    for stat in topic_statistics(platform.graph):
        print(f"  {stat.as_row()}")
    report = account_report(platform.graph, platform.address_of("agent-00000"))
    print(f"seed account: articles={report.articles} traceable={report.traceable_share:.0%} "
          f"descendants={report.descendants}")
    print("platform stats:", platform.stats())
    return 0


def _run_explore(args: argparse.Namespace) -> int:
    """Explorer queries over the demo chain, served from the index.

    Every answer comes from the peer's :class:`~repro.chain.index.
    ChainIndex` materialized views; the final line is the index-vs-scan
    cross-check (``verify_against``), so this doubles as a live
    demonstration that the fast path and the fallback agree.
    """
    from repro.chain import chain_summary, find_transactions

    platform = _build_demo_world(seed=args.seed)
    ledger = platform.chain.ledger
    index = platform.chain.index

    summary = chain_summary(ledger, index=index)
    print("chain summary:")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    print()
    rows = find_transactions(
        ledger, contract=args.contract, method=args.method,
        sender=args.sender, limit=args.limit, index=index,
    )
    filters = {k: v for k, v in
               (("contract", args.contract), ("method", args.method),
                ("sender", args.sender)) if v is not None}
    print(f"newest {len(rows)} transactions (filters: {filters or 'none'}):")
    for row in rows:
        flag = "ok " if row["valid"] else "BAD"
        print(f"  h={row['block_height']:>4} {flag} {row['tx_id'][:12]} "
              f"{row['contract']}.{row['method']} from {row['sender'][:18]}")
    problems = index.verify_against(ledger)
    print()
    print(f"index stats: {index.stats()}")
    print(f"index/scan cross-check: {'clean' if not problems else problems}")
    return 0 if not problems else 1


def _run_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.obs import read_jsonl, report_from_records

    trace = pathlib.Path(args.trace)
    if args.demo:
        _run_report_demo(trace, consensus=args.consensus, txs=args.txs, seed=args.seed)
    if not trace.exists():
        print(f"no trace at {trace}; run with --demo or point --trace at a "
              "file written by repro.obs.export_jsonl", file=sys.stderr)
        return 1
    records = read_jsonl(trace)
    markdown = report_from_records(records, title=f"Observability report — {trace.name}")
    print(markdown)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(markdown + "\n", encoding="utf-8")
        print(f"(written to {out})", file=sys.stderr)
    return 0


def _run_report_demo(
    trace, consensus: str = "pbft", txs: int = 30, seed: int = 7
) -> None:
    """Run a small traced workload end to end and export its timeline.

    Crashes one peer mid-run so the sync-fetch phase shows up in the
    breakdown alongside endorse/gossip/order/consensus/commit.
    """
    from repro.chain import BlockchainNetwork
    from repro.core import IdentityContract
    from repro.obs import export_jsonl, snapshot_crypto_cache
    from repro.simnet import FixedLatency

    net = BlockchainNetwork(
        n_peers=4, consensus=consensus, block_interval=0.25,
        latency=FixedLatency(0.02), seed=seed,
    )
    net.install_contract(IdentityContract)
    straggler = net.peers[-1]
    for i in range(txs):
        if i == txs // 3:
            straggler.crashed = True
        if i == (2 * txs) // 3:
            straggler.restart()
        client = net.client()
        # wait=False: a crashed validator stalls its PoA rotation slots,
        # so blocking per-tx would deadlock the submit loop mid-outage.
        client.invoke(
            "identity", "register",
            {"display_name": f"demo-{i}", "role": "consumer"},
            wait=False,
        )
        net.run_for(0.1)
    net.run_for(20.0)
    snapshot_crypto_cache(net.obs)
    written = export_jsonl(
        trace, net.obs, net.tracer,
        meta={"workload": "report-demo", "consensus": consensus,
              "txs": txs, "seed": seed, "sim_time": net.sim.now},
    )
    print(f"(demo wrote {written} records to {trace})", file=sys.stderr)


def _run_store(args: argparse.Namespace) -> int:
    import pathlib

    from repro.chain.store import inspect_files, render_inspection

    if args.dir is not None:
        directory = pathlib.Path(args.dir)
        if not directory.is_dir():
            print(f"no such directory: {directory}", file=sys.stderr)
            return 1
        files = {
            path.name: path.read_bytes()
            for path in sorted(directory.iterdir())
            if path.is_file()
        }
        if not files:
            print(f"no store files in {directory}", file=sys.stderr)
            return 1
        print(render_inspection(inspect_files(files)))
        return 0
    if not args.demo:
        print("store: pass --demo to run a workload, or --dir DIR to "
              "inspect dumped files", file=sys.stderr)
        return 1
    return _run_store_demo(args)


def _run_store_demo(args: argparse.Namespace) -> int:
    """Durable-storage round trip: workload → disk fault → crash →
    recovery → inspection.  Shows the degradation ladder doing its job."""
    import pathlib

    from repro.chain import BlockchainNetwork, InvariantAuditor
    from repro.core import IdentityContract
    from repro.chain.store import inspect_disk, render_inspection
    from repro.simnet import FailureSchedule, FixedLatency

    net = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.25,
        latency=FixedLatency(0.02), seed=args.seed,
        storage=args.backend, snapshot_interval=8,
    )
    net.install_contract(IdentityContract)
    auditor = InvariantAuditor(net)
    schedule = FailureSchedule(net.sim, net.net)
    victim = net.peers[-1].node_id
    crash_at = max(1.0, args.txs * 0.1 * 0.6)
    if args.fault == "torn":
        schedule.torn_write_at(crash_at - 0.01, victim)
    elif args.fault == "partial":
        schedule.partial_flush_at(crash_at - 0.01, victim, k=2)
    elif args.fault == "bitflip":
        schedule.bitflip_at(crash_at + 0.5, victim, artifact="log")
    schedule.crash_at(crash_at, victim)
    schedule.restart_at(crash_at + 2.0, victim)
    for i in range(args.txs):
        # One identity per client address, as the contract requires.
        net.client().invoke(
            "identity", "register",
            {"display_name": f"store-demo-{i}", "role": "consumer"},
            wait=False,
        )
        net.run_for(0.1)
    net.run_for(20.0)
    net.stop()

    peer = next(p for p in net.peers if p.node_id == victim)
    print(f"peer {victim} after {args.fault!r} fault + crash-restart:")
    print()
    print(render_inspection(inspect_disk(peer.disk)))
    report = peer.store.last_recovery
    if report is not None:
        print()
        print("last recovery:")
        for key, value in report.summary().items():
            print(f"  {key}: {value}")
    sql_stats = getattr(peer.store, "sql_stats", None)
    if sql_stats is not None:
        print()
        print("sqlite backend:", sql_stats())
    violations = auditor.final_check(failures=schedule.log)
    heights = sorted({p.ledger.height for p in net.peers})
    print()
    print(f"fault log: {[e.action for e in schedule.log]}")
    print(f"final heights: {heights} (converged: {len(heights) == 1}), "
          f"audit violations: {len(violations)}")
    if args.dump:
        directory = pathlib.Path(args.dump)
        directory.mkdir(parents=True, exist_ok=True)
        for name in peer.disk.names():
            (directory / name).write_bytes(peer.disk.read(name))
        print(f"(disk files written to {directory})", file=sys.stderr)
    return 0 if len(heights) == 1 and not violations else 1


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Forward `lint` before argparse sees its flags: REMAINDER only
    # starts collecting at the first positional, so a leading option
    # (`repro-news lint --format json src`) would otherwise be rejected
    # by this parser instead of reaching repro.analysis.
    if list(argv[:1]) == ["lint"]:
        from repro.analysis import main as lint_main

        return lint_main(list(argv[1:]), prog="repro-news lint")
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _run_demo(args.scenario)
    if args.command == "corpus":
        return _run_corpus(args)
    if args.command == "race":
        return _run_race(args)
    if args.command == "stats":
        return _run_stats()
    if args.command == "explore":
        return _run_explore(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "store":
        return _run_store(args)
    return 2  # unreachable: argparse enforces the choices (lint returns above)


if __name__ == "__main__":
    sys.exit(main())
