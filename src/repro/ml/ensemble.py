"""Score fusion: soft-voting ensembles and the platform's AI scorer.

:class:`FakeNewsScorer` is the concrete "AI validated" component the
platform architecture (Fig. 1) plugs in: fit on labeled text, emit
P(fake) in [0, 1].  Internally it fuses a TF-IDF logistic regression,
a multinomial NB over counts, and a stylometric logistic regression —
three genuinely different inductive biases, which is what makes the
fusion worth more than any member (shown in E5).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.errors import MLError
from repro.ml.features import StylometricExtractor
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.vectorize import CountVectorizer, ScaledVectorizer, TfidfVectorizer

__all__ = ["SoftVotingEnsemble", "FakeNewsScorer", "TextScorer"]


class TextScorer(Protocol):
    """Anything that maps raw texts to P(fake) scores."""

    def fit(self, texts: list[str], labels: Sequence[int]) -> "TextScorer": ...

    def score(self, texts: list[str]) -> np.ndarray: ...


class _Member:
    """One (vectorizer, model) pipeline inside an ensemble."""

    def __init__(self, vectorizer, model, weight: float = 1.0):
        self.vectorizer = vectorizer
        self.model = model
        self.weight = weight

    def fit(self, texts: list[str], labels: np.ndarray) -> None:
        X = self.vectorizer.fit_transform(texts)
        self.model.fit(X, labels)

    def score(self, texts: list[str]) -> np.ndarray:
        return self.model.score_fake(self.vectorizer.transform(texts))


class SoftVotingEnsemble:
    """Weighted average of member fake-scores."""

    def __init__(self, members: list[_Member]):
        if not members:
            raise MLError("ensemble needs at least one member")
        self.members = members

    def fit(self, texts: list[str], labels: Sequence[int]) -> "SoftVotingEnsemble":
        y = np.asarray(labels)
        for member in self.members:
            member.fit(texts, y)
        return self

    def score(self, texts: list[str]) -> np.ndarray:
        total_weight = sum(m.weight for m in self.members)
        combined = np.zeros(len(texts))
        for member in self.members:
            combined += member.weight * member.score(texts)
        return combined / total_weight

    def predict(self, texts: list[str], threshold: float = 0.5) -> np.ndarray:
        return (self.score(texts) >= threshold).astype(np.int64)


class FakeNewsScorer:
    """The platform's default AI component: text in, P(fake) out."""

    def __init__(self, seed: int = 0, max_features: int | None = 4000):
        self.seed = seed
        self._ensemble = SoftVotingEnsemble(
            [
                _Member(TfidfVectorizer(max_features=max_features), LogisticRegression(), weight=2.0),
                _Member(CountVectorizer(max_features=max_features), MultinomialNaiveBayes(), weight=1.0),
                _Member(
                    ScaledVectorizer(StylometricExtractor()),
                    LogisticRegression(learning_rate=0.3),
                    weight=2.0,
                ),
            ]
        )
        self._fitted = False

    def fit(self, texts: list[str], labels: Sequence[int]) -> "FakeNewsScorer":
        if len(texts) != len(labels):
            raise MLError("texts/labels length mismatch")
        self._ensemble.fit(texts, labels)
        self._fitted = True
        return self

    def score(self, texts: list[str]) -> np.ndarray:
        """P(fake) per text, in corpus order."""
        if not self._fitted:
            raise MLError("scorer must be fitted before scoring")
        return self._ensemble.score(texts)

    def score_one(self, text: str) -> float:
        return float(self.score([text])[0])

    def predict(self, texts: list[str], threshold: float = 0.5) -> np.ndarray:
        return self._ensemble.predict(texts, threshold)
