"""Chain-facing batch-verification facade.

The chain layer never calls :func:`repro.crypto.ed25519.verify_batch`
directly.  It goes through :func:`verify_many`, which

- honors a process-wide feature flag (``REPRO_BATCH_VERIFY`` env var,
  :func:`set_batch_verification`) so benchmarks can compare the batched
  and sequential modes on identical workloads;
- records ``phase.verify_batch`` wall-time histograms plus batch-size
  and fallback-bisection counters into an optional
  :class:`~repro.obs.registry.MetricsRegistry` (duck-typed — crypto
  stays import-free of :mod:`repro.obs`).

Because :func:`~repro.crypto.ed25519.verify_batch` populates the same
digest-keyed cache as single :func:`~repro.crypto.ed25519.verify`, the
dominant call-site pattern is *prewarming*: a block validator hands the
whole block's signature items to :func:`verify_many` once, then runs its
unchanged per-transaction validation logic, whose individual ``verify``
calls all hit the cache.  Semantics are byte-for-byte those of the
sequential path; only the schedule changes.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

from repro.crypto import ed25519

__all__ = [
    "SignatureItem",
    "batch_verification_enabled",
    "set_batch_verification",
    "batch_verification",
    "verify_many",
]

#: One verification job: (public_key, message, signature) raw bytes.
SignatureItem = tuple[bytes, bytes, bytes]

_enabled = os.environ.get("REPRO_BATCH_VERIFY", "1").strip().lower() not in (
    "0", "false", "no", "off",
)


def batch_verification_enabled() -> bool:
    """Whether :func:`verify_many` uses the batched path."""
    return _enabled


def set_batch_verification(enabled: bool) -> bool:
    """Flip the feature flag; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def batch_verification(enabled: bool) -> Iterator[None]:
    """Scoped flag override (tests and A/B benchmarks)."""
    previous = set_batch_verification(enabled)
    try:
        yield
    finally:
        set_batch_verification(previous)


def verify_many(
    items: Iterable[SignatureItem],
    registry: Any = None,
    **labels: str,
) -> list[bool]:
    """Verify *items*, batched when the feature flag allows.

    Returns one bool per item, identical to mapping
    :func:`repro.crypto.ed25519.verify` over them.  When *registry* is
    given, observes wall time into ``phase.verify_batch`` (labelled
    ``mode=batch|sequential`` plus any caller labels) and — in batch
    mode — bumps ``crypto.batch_calls`` / ``crypto.batch_items`` /
    ``crypto.batch_bisections`` counters.
    """
    jobs = list(items)
    if not jobs:
        return []
    start = time.perf_counter()
    if _enabled:
        bisections_before = ed25519.batch_stats()["bisections"]
        results = ed25519.verify_batch(jobs)
        if registry is not None:
            registry.counter("crypto.batch_calls", **labels).inc()
            registry.counter("crypto.batch_items", **labels).inc(len(jobs))
            registry.counter("crypto.batch_bisections", **labels).inc(
                ed25519.batch_stats()["bisections"] - bisections_before
            )
    else:
        results = [ed25519.verify(pk, msg, sig) for pk, msg, sig in jobs]
    if registry is not None:
        mode = "batch" if _enabled else "sequential"
        registry.histogram("phase.verify_batch", mode=mode, **labels).observe(
            time.perf_counter() - start
        )
        registry.histogram("crypto.batch_size", mode=mode, **labels).observe(len(jobs))
    return results
