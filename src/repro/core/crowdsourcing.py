"""Blockchain crowd-sourced trust checking — contribution (3).

Two halves:

- :class:`VoteContract` — the on-chain record: who voted what on which
  article, immutable and attributable.  This is what makes validator
  *accountability* possible: a validator's entire voting history is on
  the ledger, so reputation is earned and cannot be laundered by
  re-registering opinions.
- :class:`ValidatorPool` — the off-chain statistical machinery: a
  population of validators with accuracy/bias/stake, vote collection,
  and the two aggregation rules the paper contrasts — naive majority
  (what "traditional majority decided crowd sourcing" does) versus
  reputation-weighted consensus with stake slashing (what the
  accountability layer enables).  E12 sweeps the biased fraction and
  shows where majority voting collapses and weighted consensus holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.core.identity import identity_key

__all__ = ["VoteContract", "Validator", "Vote", "ValidatorPool", "vote_key"]


def vote_key(article_id: str, address: str) -> str:
    return f"vote:{article_id}:{address}"


class VoteContract(Contract):
    """On-chain vote records for article trust checking."""

    name = "votes"

    @contract_method
    def cast(self, ctx: ContractContext, article_id: str, verdict: bool, weight: float):
        """Record a trust vote (verdict True = factual)."""
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(caller is not None, "only registered identities may vote")
        ctx.require(0.0 < weight <= 1.0, "weight must be in (0, 1]")
        key = vote_key(article_id, ctx.caller)
        ctx.require(ctx.get(key) is None, "identity already voted on this article")
        record = {
            "article_id": article_id,
            "voter": ctx.caller,
            "verdict": bool(verdict),
            "weight": weight,
            "cast_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit("vote-cast", article_id=article_id, verdict=bool(verdict), weight=weight)
        return record

    @contract_method
    def tally(self, ctx: ContractContext, article_id: str):
        """Weighted tally: (weighted factual share, vote count)."""
        total = 0.0
        factual = 0.0
        count = 0
        for key in ctx.keys_with_prefix(f"vote:{article_id}:"):
            record = ctx.get(key)
            total += record["weight"]
            if record["verdict"]:
                factual += record["weight"]
            count += 1
        share = factual / total if total > 0 else 0.5
        return {"factual_share": share, "votes": count}


@dataclass
class Validator:
    """A crowd validator with skill, bias, reputation, and stake."""

    validator_id: str
    accuracy: float  # chance of voting correctly when unbiased
    biased: bool = False
    community: int = 0  # polarized side (articles carry a slant)
    reputation: float = 1.0
    stake: float = 10.0
    address: str | None = None
    correct_votes: int = 0
    total_votes: int = 0

    def decide(self, ground_truth_factual: bool, article_slant: int | None, rng: random.Random) -> bool:
        """The validator's verdict for one article.

        Biased validators vote their side regardless of truth when the
        article carries their community's slant (and against it when it
        carries the other side's); unbiased validators are right with
        probability ``accuracy``.
        """
        if self.biased and article_slant is not None:
            return article_slant == self.community
        return ground_truth_factual if rng.random() < self.accuracy else not ground_truth_factual

    @property
    def weight(self) -> float:
        """Aggregation weight: reputation scaled by remaining stake."""
        return max(0.0, self.reputation) * (1.0 if self.stake > 0 else 0.0)


@dataclass(frozen=True)
class Vote:
    validator_id: str
    verdict: bool
    weight: float


@dataclass
class ValidatorPool:
    """A population of validators plus aggregation and accountability."""

    validators: list[Validator] = field(default_factory=list)
    reward: float = 0.2
    penalty: float = 0.35
    slash: float = 1.0

    @classmethod
    def generate(
        cls,
        n_validators: int,
        rng: random.Random,
        biased_fraction: float = 0.0,
        accuracy_range: tuple[float, float] = (0.7, 0.95),
        biased_community: int | None = None,
    ) -> "ValidatorPool":
        """A pool with a planted fraction of polarized validators.

        With ``biased_community`` set, all biased validators form one
        coordinated faction on that side (the majority-capture threat
        model); otherwise bias is split across both communities.
        """
        validators = []
        n_biased = round(n_validators * biased_fraction)
        for index in range(n_validators):
            biased = index < n_biased
            community = biased_community if (biased and biased_community is not None) else index % 2
            validators.append(
                Validator(
                    validator_id=f"validator-{index:04d}",
                    accuracy=rng.uniform(*accuracy_range),
                    biased=biased,
                    community=community,
                )
            )
        rng.shuffle(validators)
        return cls(validators=validators)

    def collect_votes(
        self,
        ground_truth_factual: bool,
        rng: random.Random,
        article_slant: int | None = None,
        turnout: float = 1.0,
    ) -> list[Vote]:
        """Sample one vote per (participating) validator."""
        votes = []
        for validator in self.validators:
            if turnout < 1.0 and rng.random() > turnout:
                continue
            verdict = validator.decide(ground_truth_factual, article_slant, rng)
            votes.append(Vote(validator.validator_id, verdict, validator.weight))
            validator.total_votes += 1
            if verdict == ground_truth_factual:
                validator.correct_votes += 1
        return votes

    @staticmethod
    def majority_share(votes: list[Vote]) -> float:
        """Unweighted factual share — the baseline aggregation."""
        if not votes:
            return 0.5
        return sum(1 for v in votes if v.verdict) / len(votes)

    @staticmethod
    def weighted_share(votes: list[Vote]) -> float:
        """Reputation/stake-weighted factual share."""
        total = sum(v.weight for v in votes)
        if total <= 0:
            return 0.5
        return sum(v.weight for v in votes if v.verdict) / total

    def settle(self, votes: list[Vote], outcome_factual: bool) -> None:
        """Accountability settlement after an article's verdict finalizes.

        Validators on the wrong side lose reputation and (repeatedly
        wrong) stake; correct validators earn reputation.  Because the
        on-chain vote history is immutable, a polarized validator's
        weight decays monotonically — the mechanism behind the paper's
        claim that accountability "can prevent bias concerns ... from
        traditional majority decided crowd sourcing".
        """
        by_id = {v.validator_id: v for v in self.validators}
        for vote in votes:
            validator = by_id.get(vote.validator_id)
            if validator is None:
                continue
            if vote.verdict == outcome_factual:
                validator.reputation = min(5.0, validator.reputation + self.reward)
            else:
                validator.reputation = max(0.0, validator.reputation - self.penalty)
                if validator.reputation == 0.0:
                    validator.stake = max(0.0, validator.stake - self.slash)
