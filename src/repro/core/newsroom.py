"""Distribution platforms, news rooms, and the editing workflow (§V).

The paper's two-layer trust design:

- a verified **publisher** founds a *distribution platform* (itself
  subject to a crowd-review smart contract before it is trusted);
- the platform opens topic-scoped *news rooms* and authenticates
  journalists to write in them (the *editing platform*);
- an article moves through the news-production workflow — the paper's
  8 steps compressed to the states that gate publication:
  ``draft -> in_review -> published`` (or ``rejected``).

The distribution platform answers for its creators; the editing
platform answers for its content.  Both responsibilities are encoded as
contract checks, so violating them is impossible rather than impolite.
"""

from __future__ import annotations

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.core.identity import identity_key

__all__ = ["NewsRoomContract", "platform_key", "room_key", "article_key", "ARTICLE_STATES"]

ARTICLE_STATES = ("draft", "in_review", "published", "rejected")


def platform_key(name: str) -> str:
    return f"platform:{name}"


def room_key(platform: str, room: str) -> str:
    return f"room:{platform}/{room}"


def member_key(platform: str, address: str) -> str:
    return f"member:{platform}:{address}"


def article_key(article_id: str) -> str:
    return f"article:{article_id}"


class NewsRoomContract(Contract):
    """Platforms, rooms, journalist membership, and article workflow."""

    name = "newsroom"

    # -- distribution platforms ---------------------------------------------

    @contract_method
    def create_platform(self, ctx: ContractContext, platform_name: str):
        """Found a distribution platform (verified publishers only)."""
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(
            caller is not None and caller["verified"],
            "only verified identities may found platforms",
        )
        ctx.require(
            caller["role"] in ("publisher", "journalist"),
            f"role {caller['role']!r} may not found a distribution platform",
        )
        key = platform_key(platform_name)
        ctx.require(ctx.get(key) is None, f"platform {platform_name!r} already exists")
        record = {
            "name": platform_name,
            "owner": ctx.caller,
            "created_at": ctx.timestamp,
        }
        ctx.put(key, record)
        # The founder is automatically an authenticated member.
        ctx.put(member_key(platform_name, ctx.caller), {"role": "owner", "since": ctx.timestamp})
        ctx.emit("platform-created", platform=platform_name, owner=ctx.caller)
        return record

    @contract_method
    def authenticate_journalist(self, ctx: ContractContext, platform_name: str, address: str):
        """Platform owner admits a verified journalist to its editing
        platform — the 'distribution platform is responsible for the
        trust of its content creators' half of the design."""
        platform = ctx.get(platform_key(platform_name))
        ctx.require(platform is not None, f"no platform {platform_name!r}")
        ctx.require(ctx.caller == platform["owner"], "only the platform owner may authenticate members")
        member = ctx.get(identity_key(address))
        ctx.require(
            member is not None and member["verified"],
            "journalists must hold verified identities",
        )
        key = member_key(platform_name, address)
        ctx.require(ctx.get(key) is None, "already a member")
        ctx.put(key, {"role": "journalist", "since": ctx.timestamp})
        ctx.emit("journalist-authenticated", platform=platform_name, address=address)
        return True

    # -- news rooms -------------------------------------------------------------

    @contract_method
    def create_room(self, ctx: ContractContext, platform_name: str, room_name: str, topic: str):
        """Open a topic-scoped news room under a platform."""
        platform = ctx.get(platform_key(platform_name))
        ctx.require(platform is not None, f"no platform {platform_name!r}")
        ctx.require(ctx.caller == platform["owner"], "only the platform owner may open rooms")
        key = room_key(platform_name, room_name)
        ctx.require(ctx.get(key) is None, f"room {room_name!r} already exists on {platform_name!r}")
        record = {
            "platform": platform_name,
            "room": room_name,
            "topic": topic,
            "created_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit("room-created", platform=platform_name, room=room_name, topic=topic)
        return record

    # -- article workflow ----------------------------------------------------------

    @contract_method
    def submit_draft(
        self,
        ctx: ContractContext,
        article_id: str,
        platform_name: str,
        room_name: str,
        content_hash: str,
    ):
        """A member journalist submits a draft into a room."""
        ctx.require(ctx.get(room_key(platform_name, room_name)) is not None, "no such room")
        membership = ctx.get(member_key(platform_name, ctx.caller))
        ctx.require(membership is not None, "caller is not authenticated on this platform")
        # Management Act enforcement: suspended accounts cannot publish.
        ctx.require(
            not ctx.get(f"suspended:{ctx.caller}"),
            "caller is suspended under the Platform Management Act",
        )
        key = article_key(article_id)
        ctx.require(ctx.get(key) is None, f"article {article_id} already exists")
        record = {
            "article_id": article_id,
            "platform": platform_name,
            "room": room_name,
            "author": ctx.caller,
            "content_hash": content_hash,
            "state": "draft",
            "submitted_at": ctx.timestamp,
            "published_at": None,
        }
        ctx.put(key, record)
        ctx.emit("draft-submitted", article_id=article_id, room=room_name, author=ctx.caller)
        return record

    @contract_method
    def start_review(self, ctx: ContractContext, article_id: str):
        """Author sends the draft to editorial review."""
        record = self._article_in_state(ctx, article_id, "draft")
        ctx.require(ctx.caller == record["author"], "only the author may submit for review")
        record["state"] = "in_review"
        ctx.put(article_key(article_id), record)
        ctx.emit("review-started", article_id=article_id)
        return record

    @contract_method
    def publish(self, ctx: ContractContext, article_id: str):
        """Platform owner (editor) publishes a reviewed article."""
        record = self._article_in_state(ctx, article_id, "in_review")
        platform = ctx.get(platform_key(record["platform"]))
        ctx.require(ctx.caller == platform["owner"], "only the platform owner may publish")
        record["state"] = "published"
        record["published_at"] = ctx.timestamp
        ctx.put(article_key(article_id), record)
        ctx.emit("article-published", article_id=article_id, room=record["room"])
        return record

    @contract_method
    def reject(self, ctx: ContractContext, article_id: str, reason: str):
        """Platform owner rejects a reviewed article, with the reason on
        the ledger — transparency of editorial decisions."""
        record = self._article_in_state(ctx, article_id, "in_review")
        platform = ctx.get(platform_key(record["platform"]))
        ctx.require(ctx.caller == platform["owner"], "only the platform owner may reject")
        record["state"] = "rejected"
        ctx.put(article_key(article_id), record)
        ctx.emit("article-rejected", article_id=article_id, reason=reason)
        return record

    @contract_method
    def get_article(self, ctx: ContractContext, article_id: str):
        return ctx.get(article_key(article_id))

    # -- comments (§V: "Identification verified persons can also create
    # contents and make comments on the posted news in the news rooms") --

    @contract_method
    def comment(self, ctx: ContractContext, article_id: str, comment_id: str, content_hash: str):
        """Attach a signed comment to a *published* article."""
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(
            caller is not None and caller["verified"],
            "only verified identities may comment",
        )
        article = ctx.get(article_key(article_id))
        ctx.require(article is not None, f"no article {article_id}")
        ctx.require(article["state"] == "published", "comments allowed on published articles only")
        key = f"comment:{article_id}:{comment_id}"
        ctx.require(ctx.get(key) is None, f"comment {comment_id} already exists")
        record = {
            "article_id": article_id,
            "comment_id": comment_id,
            "author": ctx.caller,
            "content_hash": content_hash,
            "posted_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit("comment-posted", article_id=article_id, comment_id=comment_id)
        return record

    @contract_method
    def list_comments(self, ctx: ContractContext, article_id: str):
        """Comment records for an article, in key order."""
        return [ctx.get(key) for key in ctx.keys_with_prefix(f"comment:{article_id}:")]

    # -- internals --------------------------------------------------------------------

    def _article_in_state(self, ctx: ContractContext, article_id: str, state: str) -> dict:
        record = ctx.get(article_key(article_id))
        ctx.require(record is not None, f"no article {article_id}")
        ctx.require(
            record["state"] == state,
            f"article {article_id} is {record['state']!r}, expected {state!r}",
        )
        return record
