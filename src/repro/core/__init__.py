"""The paper's core contribution: the AI blockchain trusting-news platform.

Contracts (identity, factual database, news rooms, supply chain, votes,
tokens), the provenance/ranking/crowd machinery, supply-chain analytics
(tracing, accountability, expert mining), intervention tooling, and the
integrated :class:`TrustingNewsPlatform` facade.
"""

from repro.core.analytics import (
    AccountReport,
    TopicStatistics,
    account_report,
    propagation_timeline,
    ranking_history,
    topic_statistics,
)
from repro.core.botdetect import (
    AccountActivity,
    account_activity_features,
    bot_scores,
    detect_bot_rings,
)
from repro.core.communities import (
    BridgeAccount,
    detect_communities,
    find_bridges,
    interaction_graph,
)
from repro.core.crowdsourcing import Validator, ValidatorPool, Vote, VoteContract
from repro.core.conduct import ConductContract
from repro.core.governance import PlatformGovernanceContract
from repro.core.media import MediaAssessment, MediaRegistryContract, MediaVerifier
from repro.core.process_chain import (
    PROCESS_STAGES,
    GraphShape,
    ProcessSupplyChainContract,
    graph_shape,
    process_chain_graph,
)
from repro.core.toolmarket import ToolMarketContract
from repro.core.ecosystem import (
    EcosystemAgent,
    EcosystemParams,
    EcosystemSimulator,
    TokenContract,
)
from repro.core.experts import ExpertFinder, ExpertScore
from repro.core.factualdb import PROMOTION_THRESHOLD, FactualDatabaseContract
from repro.core.identity import ROLES, IdentityContract
from repro.core.intervention import (
    ContainmentReport,
    CorrectionCampaign,
    PersonalizedCampaign,
    Receptivity,
    assign_receptivity,
    community_exposure,
    containment_report,
    correction_acceptance,
    select_messengers,
)
from repro.core.newsroom import ARTICLE_STATES, NewsRoomContract
from repro.core.platform import PublishedArticle, TrustingNewsPlatform
from repro.core.prediction import (
    FakeRiskPredictor,
    ViralityPredictor,
    author_history_features,
    early_cascade_features,
)
from repro.core.provenance import ParentCandidate, ProvenanceIndex
from repro.core.ranking import ArticleSignals, FactualnessRanker, RankedArticle, RankingWeights
from repro.core.source_rating import SourceRating, rate_distribution_platform
from repro.core.supplychain import (
    SupplyChainContract,
    TraceResult,
    build_supply_chain_graph,
    find_original_author,
    trace_to_factual_root,
)

__all__ = [
    "AccountReport",
    "TopicStatistics",
    "account_report",
    "propagation_timeline",
    "ranking_history",
    "topic_statistics",
    "AccountActivity",
    "account_activity_features",
    "bot_scores",
    "detect_bot_rings",
    "BridgeAccount",
    "detect_communities",
    "find_bridges",
    "interaction_graph",
    "ConductContract",
    "PlatformGovernanceContract",
    "MediaAssessment",
    "MediaRegistryContract",
    "MediaVerifier",
    "PROCESS_STAGES",
    "GraphShape",
    "ProcessSupplyChainContract",
    "graph_shape",
    "process_chain_graph",
    "ToolMarketContract",
    "PersonalizedCampaign",
    "Receptivity",
    "assign_receptivity",
    "correction_acceptance",
    "Validator",
    "ValidatorPool",
    "Vote",
    "VoteContract",
    "EcosystemAgent",
    "EcosystemParams",
    "EcosystemSimulator",
    "TokenContract",
    "ExpertFinder",
    "ExpertScore",
    "PROMOTION_THRESHOLD",
    "FactualDatabaseContract",
    "ROLES",
    "IdentityContract",
    "ContainmentReport",
    "CorrectionCampaign",
    "community_exposure",
    "containment_report",
    "select_messengers",
    "ARTICLE_STATES",
    "NewsRoomContract",
    "PublishedArticle",
    "TrustingNewsPlatform",
    "FakeRiskPredictor",
    "ViralityPredictor",
    "author_history_features",
    "early_cascade_features",
    "ParentCandidate",
    "ProvenanceIndex",
    "ArticleSignals",
    "FactualnessRanker",
    "RankedArticle",
    "RankingWeights",
    "SourceRating",
    "rate_distribution_platform",
    "SupplyChainContract",
    "TraceResult",
    "build_supply_chain_graph",
    "find_original_author",
    "trace_to_factual_root",
]
