"""Ledger analytics: the journalist-facing statistics layer (§II).

The platform promises journalists "pointers to the original data
sources, news propagation path, AI analyzed experts to consult on a
given topic" and "meaningful topic statistics".  Everything here is a
pure reconstruction from the committed ledger + supply-chain graph —
no privileged in-memory state — so any peer (or auditor) computes the
same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.chain.ledger import Ledger
from repro.core.supplychain import trace_to_factual_root

__all__ = [
    "TopicStatistics",
    "topic_statistics",
    "AccountReport",
    "account_report",
    "propagation_timeline",
    "ranking_history",
]


@dataclass(frozen=True)
class TopicStatistics:
    """One topic's health snapshot."""

    topic: str
    articles: int
    authors: int
    traceable: int
    mean_provenance: float
    mean_modification: float
    fact_roots: int

    @property
    def traceable_share(self) -> float:
        return self.traceable / self.articles if self.articles else 0.0

    def as_row(self) -> str:
        return (
            f"{self.topic:<12} articles={self.articles:<5} authors={self.authors:<5} "
            f"traceable={self.traceable_share:6.1%} mean_prov={self.mean_provenance:.2f} "
            f"mean_mod={self.mean_modification:.2f} roots={self.fact_roots}"
        )


def topic_statistics(graph: nx.DiGraph) -> list[TopicStatistics]:
    """Per-topic summaries over the whole supply-chain graph."""
    by_topic: dict[str, list[str]] = {}
    roots_by_topic: dict[str, int] = {}
    for node, attrs in graph.nodes(data=True):
        topic = attrs.get("topic", "?")
        if attrs.get("is_fact_root"):
            roots_by_topic[topic] = roots_by_topic.get(topic, 0) + 1
        else:
            by_topic.setdefault(topic, []).append(node)
    results = []
    for topic, nodes in sorted(by_topic.items()):
        traces = [trace_to_factual_root(graph, node) for node in nodes]
        traceable = sum(1 for t in traces if t.traceable)
        provenance = [t.provenance_score for t in traces]
        modification = [graph.nodes[n].get("modification_degree", 0.0) for n in nodes]
        authors = {graph.nodes[n].get("author") for n in nodes}
        results.append(
            TopicStatistics(
                topic=topic,
                articles=len(nodes),
                authors=len(authors),
                traceable=traceable,
                mean_provenance=sum(provenance) / len(provenance) if provenance else 0.0,
                mean_modification=sum(modification) / len(modification) if modification else 0.0,
                fact_roots=roots_by_topic.get(topic, 0),
            )
        )
    return results


@dataclass(frozen=True)
class AccountReport:
    """The public track record of one address — the accountability view."""

    address: str
    articles: int
    topics: tuple[str, ...]
    mean_modification: float
    traceable_share: float
    mean_provenance: float
    derived_from_others: int  # articles with at least one parent
    descendants: int  # how much downstream sharing the account's work drew


def account_report(graph: nx.DiGraph, address: str) -> AccountReport:
    """Everything the ledger says about one account's output."""
    own_nodes = [
        node
        for node, attrs in graph.nodes(data=True)
        if attrs.get("author") == address and not attrs.get("is_fact_root")
    ]
    traces = [trace_to_factual_root(graph, node) for node in own_nodes]
    traceable = sum(1 for t in traces if t.traceable)
    descendants = sum(graph.in_degree(node) for node in own_nodes)
    modification = [graph.nodes[n].get("modification_degree", 0.0) for n in own_nodes]
    return AccountReport(
        address=address,
        articles=len(own_nodes),
        topics=tuple(sorted({graph.nodes[n].get("topic", "?") for n in own_nodes})),
        mean_modification=sum(modification) / len(modification) if modification else 0.0,
        traceable_share=traceable / len(own_nodes) if own_nodes else 0.0,
        mean_provenance=(
            sum(t.provenance_score for t in traces) / len(traces) if traces else 0.0
        ),
        derived_from_others=sum(
            1 for node in own_nodes
            if any(not graph.nodes[p].get("is_fact_root") for p in graph.successors(node))
        ),
        descendants=descendants,
    )


def propagation_timeline(graph: nx.DiGraph, article_id: str) -> list[tuple[int, int]]:
    """(block height, cumulative descendant count) for one article.

    The "continuously monitoring and recording the effectiveness of the
    fake news propagation" curve (§VI), reconstructed from recording
    heights on the ledger.
    """
    if article_id not in graph:
        return []
    # Descendants = nodes with a provenance path *to* the article, which
    # in networkx terms are its ancestors (edges point child -> parent).
    reachable = nx.ancestors(graph, article_id)
    heights = sorted(
        graph.nodes[node].get("recorded_at", 0) for node in reachable
    )
    timeline = []
    count = 0
    for height in heights:
        count += 1
        if timeline and timeline[-1][0] == height:
            timeline[-1] = (height, count)
        else:
            timeline.append((height, count))
    return timeline


def ranking_history(ledger: Ledger, article_id: str | None = None) -> list[dict]:
    """All on-chain ranking verdicts (optionally for one article)."""
    history = []
    for event in ledger.events(contract="supplychain", kind="article-ranked"):
        if article_id is not None and event["article_id"] != article_id:
            continue
        history.append(
            {
                "article_id": event["article_id"],
                "final_score": event["final_score"],
                "height": event["_height"],
                "ranked_by": event["_sender"],
            }
        )
    return history
