"""E1 — Fig. 1: the integrated platform pipeline, end to end.

Workload: 60 articles (mix of faithful reports and mutations) pushed
through the full publish -> provenance -> AI score -> crowd vote ->
rank -> commit pipeline on one platform.  Reports the per-component
latency breakdown and overall throughput — the quantitative content of
the architecture figure.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import emit
from repro.core import TrustingNewsPlatform, ValidatorPool
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay

N_ARTICLES = 60
N_VALIDATORS = 8


def _build_world(scorer):
    platform = TrustingNewsPlatform(seed=300, scorer=scorer)
    gen = CorpusGenerator(seed=300)
    platform.register_participant("wire", role="publisher")
    platform.create_distribution_platform("wire", "wire-svc")
    platform.create_news_room("wire", "wire-svc", "desk", "politics")
    platform.register_participant("author", role="journalist")
    platform.authenticate_journalist("wire-svc", "author")
    facts = [gen.factual(topic="politics") for _ in range(10)]
    for index, fact in enumerate(facts):
        platform.seed_fact(f"f-{index}", fact.text, "public-record", "politics")
    rng = random.Random(301)
    pool = ValidatorPool.generate(N_VALIDATORS, rng)
    for index in range(N_VALIDATORS):
        platform.register_participant(f"val-{index}", role="checker")
    return platform, gen, facts, pool, rng


def _run_pipeline(platform, gen, facts, pool, rng):
    timers = {"provenance+publish": 0.0, "ai": 0.0, "crowd": 0.0, "rank": 0.0}
    for index in range(N_ARTICLES):
        fact = facts[index % len(facts)]
        if index % 3 == 2:
            article = gen.malicious_derivation(relay(fact, "author", 0.0), "author", float(index))
        else:
            article = relay(fact, "author", float(index))
        article_id = f"e1-{index}"
        start = time.perf_counter()
        platform.publish_article("author", "wire-svc", "desk", article_id,
                                 article.text, "politics")
        timers["provenance+publish"] += time.perf_counter() - start

        start = time.perf_counter()
        platform.ai_score(article.text)
        timers["ai"] += time.perf_counter() - start

        start = time.perf_counter()
        votes = pool.collect_votes(not article.label_fake, rng, turnout=0.6)
        for vote_index, vote in enumerate(votes):
            platform.cast_vote(f"val-{vote_index}", article_id, vote.verdict)
        timers["crowd"] += time.perf_counter() - start

        start = time.perf_counter()
        platform.rank_article(article_id)
        timers["rank"] += time.perf_counter() - start
    return timers


def test_e1_platform_pipeline(benchmark, session_scorer):
    platform, gen, facts, pool, rng = _build_world(session_scorer)
    total_start = time.perf_counter()
    timers = benchmark.pedantic(
        _run_pipeline, args=(platform, gen, facts, pool, rng), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - total_start
    rows = [
        f"articles processed: {N_ARTICLES}, validators per article: ~{int(N_VALIDATORS*0.6)}",
        f"throughput: {N_ARTICLES / elapsed:.1f} articles/s (wall)",
    ]
    for component, seconds in sorted(timers.items(), key=lambda kv: -kv[1]):
        rows.append(f"{component:<20} {1000 * seconds / N_ARTICLES:8.2f} ms/article")
    stats = platform.stats()
    rows.append(f"ledger: {stats['blocks']} blocks, {stats['transactions']} txs, "
                f"{stats['supply_chain_edges']} supply-chain edges")
    emit(benchmark, "E1 Fig.1 — integrated pipeline latency breakdown", rows)
    assert stats["articles"] == N_ARTICLES
