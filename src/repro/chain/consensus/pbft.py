"""Practical Byzantine Fault Tolerance over the simulated network.

A faithful (if compact) PBFT: pre-prepare / prepare / commit phases with
2f+1 quorums and view changes on timeout.  Tolerates f faulty of
n = 3f+1 validators, including an equivocating (byzantine) primary — see
``tests/chain/test_pbft.py``.

State transfer for replicas that fall behind — whether by one round or
by a long crash window — is *not* handled here: the engine hands any
committed block it cannot apply immediately to the peer's
:class:`~repro.chain.sync.SyncManager` (buffer-and-fetch with retries,
backoff, and provider failover), and flags every height-ahead consensus
message as a lag hint.  Sync-fetched blocks are only applied when they
carry this replica's stored 2f+1 commit certificate for that height
(:meth:`PBFTEngine.verify_synced_block`).

**Pipelined ordering.**  Up to ``pipeline_depth`` sequence numbers are
in flight per view (Castro–Liskov's high/low-watermark window, sized for
the simulator): the primary proposes heights h+1..h+k before h+1 has
gathered quorum, chaining each pipelined block onto the digest of the
still-uncommitted proposal below it.  Rounds for different heights
progress independently; a commit quorum reached *out of order* (h+2
before h+1) is parked in a decided-block buffer and applied — after a
parent-linkage check, the same verify-before-apply discipline the sync
path uses — the moment the gap below closes.  Application is therefore
always strictly in height order even though agreement is not.  Once a
height is decided locally, conflicting pre-prepares for it are refused
until the decided block is either applied or discarded (its parent lost
the height across a view change), which keeps the elided new-view proof
from weakening agreement at pipelined heights.  The mempool cooperates
via reservations: a transaction taken into an in-flight proposal cannot
be re-admitted by a gossip echo and re-proposed at a second height (a
double-commit hazard that exists only when more than one block is open
at a time).

Simplifications relative to Castro & Liskov, documented here because
they matter when reading experiment results:

- Channels are authenticated by the simulator (a message's ``src`` is
  trusted), so pre-prepare/prepare/view-change signatures and the
  new-view proof are elided.  **Commit votes, however, are Ed25519
  signed** when the replica knows the voter's key (the network registers
  a validator-key directory via :meth:`PBFTEngine.register_validator_keys`):
  a commit from a known validator is dropped unless its signature over
  ``pbft-commit|node_id|height|digest`` verifies, and the stored commit
  certificate keeps the signatures alongside the name set — so
  sync-served certificates are *cryptographically* checkable
  (batch-verified in :meth:`verify_synced_block`), not merely name-set
  checkable.  Votes from senders with no registered key fall back to
  channel authentication (standalone engines in unit tests run keyless).
- **Validator membership is enforced on every vote**: prepares, commits,
  and view-change votes are dropped unless ``src`` is in the engine's
  validator set, and a replica that is not itself a validator (a late
  "observer" joined via ``BlockchainNetwork.join_peer``) never votes —
  it follows the chain through commit certificates only.  Quorums are
  2f+1 *distinct validators*, never merely 2f+1 distinct senders.
- **Votes only count for the digest they name.**  A prepare or commit
  that arrives before the pre-prepare is stashed with the digest it
  voted for and reconciled when the pre-prepare installs the round's
  digest; a vote for some other digest never contributes to quorum.
  (The seed counted early votes blindly, so votes for digest X could be
  tallied toward whatever digest Y the pre-prepare later carried.)
- Round state is bounded: messages are rejected outside a small view
  window (``[view, view + VIEW_WINDOW]``) and height window
  (``(committed, committed + height_window]``, where ``height_window``
  grows with ``pipeline_depth``), and rounds for deposed views are
  garbage-collected on view change — a deposed primary's
  taken-but-uncommitted transactions across the *whole* pipeline window
  are re-queued into its mempool so they are not silently dropped.
- Checkpointing/garbage collection is replaced by pruning round state
  once a height commits (the simulator's ledger is the checkpoint).

The membership rule, the bounded-window rule, and the re-queue rule are
continuously re-verified under fault injection by
:class:`repro.chain.audit.InvariantAuditor` +
:class:`repro.simnet.chaos.ChaosSchedule` (see
``tests/chain/test_chaos_audit.py``), which also audits the pipeline's
decided-block buffer (a decided block at or below the applied head is an
internal-consistency violation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chain.block import Block
from repro.chain.consensus.base import ConsensusEngine
from repro.crypto.batch import verify_many
from repro.crypto.keys import verify_signature
from repro.obs.trace import Span
from repro.simnet.network import Message

__all__ = ["PBFTEngine"]


def _vote_message(node_id: str, height: int, digest: str) -> bytes:
    """Canonical byte string a signed commit vote covers."""
    return f"pbft-commit|{node_id}|{height}|{digest}".encode()

_PRE_PREPARE = "pbft-pre-prepare"
_PREPARE = "pbft-prepare"
_COMMIT = "pbft-commit"
_VIEW_CHANGE = "pbft-view-change"
_COMMITTED = "pbft-committed"


@dataclass
class _Round:
    """Bookkeeping for one (view, height) consensus instance."""

    digest: str | None = None
    block: Block | None = None
    prepares: set[str] = field(default_factory=set)
    commits: set[str] = field(default_factory=set)
    #: signer -> verified commit-vote signature (only for voters whose
    #: key is registered; keyless votes appear in ``commits`` alone).
    commit_sigs: dict[str, bytes] = field(default_factory=dict)
    #: Votes that arrived before the pre-prepare, keyed by voter and
    #: remembering *which* digest each voted for.  They are reconciled —
    #: matching digests promoted, the rest dropped — when the
    #: pre-prepare installs the round's digest; until then they count
    #: toward nothing.  Bounded by validator-set size (membership is
    #: checked before stashing).
    early_prepares: dict[str, str] = field(default_factory=dict)
    early_commits: dict[str, tuple[str, bytes | None]] = field(default_factory=dict)
    sent_prepare: bool = False
    sent_commit: bool = False
    #: Sim time this replica first saw the pre-prepare, for the
    #: ``pbft.round`` duration histogram.
    started_at: float | None = None
    #: Per-height lifecycle span (pre-prepare -> applied/discarded).
    span: Span | None = None


@dataclass
class _Decided:
    """A commit-quorum block waiting for the gap below it to close.

    Everything needed to apply later without the round state: the block,
    its certificate (names + vote signatures), and the observability
    carried over from the round.
    """

    block: Block
    digest: str
    certificate: list[str]
    signatures: dict[str, str]
    started_at: float | None = None
    span: Span | None = None
    buffered_at: float | None = None


class PBFTEngine(ConsensusEngine):
    """PBFT replica logic for one peer."""

    #: Accept votes only for views in ``[view, view + VIEW_WINDOW]`` and
    #: heights in ``(committed, committed + height_window]`` — anything
    #: beyond is either hopelessly stale or unverifiable garbage, and
    #: accepting it lets a flooder grow ``_rounds`` without bound.
    #: ``height_window`` is an instance attribute so deep pipelines can
    #: widen it; ``HEIGHT_WINDOW`` is its floor.
    VIEW_WINDOW = 8
    HEIGHT_WINDOW = 8
    #: Commit certificates older than this many heights below the chain
    #: head are pruned (they exist for the invariant auditor's forensics,
    #: not for the protocol itself).
    CERTIFICATE_HISTORY = 10_000

    def __init__(
        self,
        validators: list[str],
        block_interval: float = 1.0,
        view_timeout: float = 10.0,
        max_block_txs: int = 500,
        pipeline_depth: int = 4,
    ):
        super().__init__()
        if len(validators) < 4:
            raise ValueError("PBFT needs n >= 4 validators (n = 3f + 1, f >= 1)")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self.validators = list(validators)
        self._validator_set = frozenset(validators)
        self.block_interval = block_interval
        self.view_timeout = view_timeout
        self.max_block_txs = max_block_txs
        #: In-flight sequence-number window: the primary may have this
        #: many uncommitted heights proposed at once (1 = the seed's
        #: one-block-at-a-time behaviour).
        self.pipeline_depth = pipeline_depth
        self.height_window = max(self.HEIGHT_WINDOW, 2 * pipeline_depth)
        self.view = 0
        self._rounds: dict[tuple[int, int], _Round] = {}
        #: height -> decided-but-unapplied block (commit quorum reached
        #: out of order); drained strictly in height order by
        #: :meth:`on_block_applied`.
        self._commit_buffer: dict[int, _Decided] = {}
        self._applying = False
        self._view_votes: dict[int, set[str]] = {}
        self._proposing = False
        self._tick_scheduled = False
        self._timer_scheduled = False
        self._timer_height = -1
        self._tick_event = None
        self._timer_event = None
        self.view_changes_completed = 0
        self.votes_rejected_nonvalidator = 0
        self.votes_rejected_bad_signature = 0
        #: validator id -> Ed25519 public key.  Registered by
        #: :class:`~repro.chain.network.BlockchainNetwork`; when a
        #: voter's key is here its commit votes MUST carry a valid
        #: signature.  Empty for standalone engines (unit tests), which
        #: then run on channel authentication alone, as the seed did.
        self.validator_keys: dict[str, bytes] = {}
        #: height -> (digest, sorted certificate) for every block this
        #: replica committed, read by the invariant auditor.
        self.commit_certificates: dict[int, tuple[str, tuple[str, ...]]] = {}
        #: height -> {signer: vote signature hex}, parallel to
        #: ``commit_certificates`` (kept separate so the auditor's
        #: certificate shape is unchanged); pruned together with it.
        self.commit_signatures: dict[int, dict[str, str]] = {}

    def register_validator_keys(self, keys: dict[str, bytes]) -> None:
        """Install the validator public-key directory (enables signed
        commit votes and cryptographic certificate verification)."""
        self.validator_keys.update(keys)

    # -- helpers -----------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.validators)

    @property
    def f(self) -> int:
        return (self.n - 1) // 3

    @property
    def quorum(self) -> int:
        """2f + 1: the intersection-guaranteeing quorum size."""
        return 2 * self.f + 1

    def primary_for(self, view: int) -> str:
        return self.validators[view % self.n]

    def is_primary(self) -> bool:
        assert self.peer is not None
        return self.primary_for(self.view) == self.peer.node_id

    def _round(self, view: int, height: int) -> _Round:
        return self._rounds.setdefault((view, height), _Round())

    def _member(self, src: str) -> bool:
        """Is *src* allowed to vote?  Quorums count validators only."""
        return src in self._validator_set

    def _reject_nonvalidator(self) -> None:
        self.votes_rejected_nonvalidator += 1
        if self.peer is not None:
            self.peer.obs.counter(
                "pbft.votes_rejected_nonvalidator", peer=self.peer.node_id
            ).inc()

    def _reject_bad_signature(self) -> None:
        self.votes_rejected_bad_signature += 1
        if self.peer is not None:
            self.peer.obs.counter(
                "pbft.votes_rejected_bad_signature", peer=self.peer.node_id
            ).inc()

    def _check_vote_signature(
        self, src: str, height: int, digest: str, signature: Any
    ) -> bool:
        """Valid iff *src* has no registered key (channel auth) or the
        signature over the canonical vote message verifies."""
        key = self.validator_keys.get(src)
        if key is None:
            return True
        if not isinstance(signature, (bytes, bytearray)):
            return False
        return verify_signature(key, _vote_message(src, height, digest), bytes(signature))

    def _is_validator(self) -> bool:
        """Does *this* replica vote?  Observer peers follow, silently."""
        assert self.peer is not None
        return self.peer.node_id in self._validator_set

    def _in_window(self, view: int, height: int) -> bool:
        """Bound round bookkeeping: stale or far-future (view, height)
        keys must not allocate ``_Round`` state (memory-leak guard)."""
        assert self.peer is not None
        if not self.view <= view <= self.view + self.VIEW_WINDOW:
            return False
        committed = self.peer.ledger.height
        return committed < height <= committed + self.height_window

    def _note_lag_hint(self, src: str, height: int) -> None:
        """A validator voting *beyond the pipeline window* implies a
        chain longer than ours.  Heights inside the window are routine
        pipelining, not lag — treating them as lag (as the seed's
        ``height > committed + 1`` test would, at depth > 1) makes every
        replica spam ranged fetches for blocks that are not committed
        anywhere yet."""
        assert self.peer is not None
        if height > self.peer.ledger.height + self.pipeline_depth:
            self.peer.sync.note_remote_height(src, height - 1)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self.peer is not None:
            self.peer.obs.gauge(
                "pbft.pipeline_depth", peer=self.peer.node_id
            ).set(self.pipeline_depth)
        self._schedule_tick()
        self._arm_view_timer()

    def _schedule_tick(self) -> None:
        if self.stopped or self._tick_scheduled:
            return
        self._tick_scheduled = True
        assert self.peer is not None
        self._tick_event = self.peer.sim.schedule(
            self.block_interval, self._tick, label=f"pbft-tick:{self.peer.node_id}"
        )

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self.stopped:
            return
        peer = self.peer
        assert peer is not None
        if (
            self.is_primary()
            and not peer.crashed
            and len(peer.mempool) > 0
            # A primary that knows it is behind must sync before it
            # proposes: a stale-height pre-prepare can never gather
            # quorum and only wastes the round.
            and not peer.sync.is_lagging()
        ):
            base = peer.ledger.height
            for height in range(base + 1, base + self.pipeline_depth + 1):
                if len(peer.mempool) == 0:
                    break
                if height in self._commit_buffer:
                    continue  # decided here; waiting on the gap below
                state = self._rounds.get((self.view, height))
                if state is not None and state.digest is not None:
                    continue  # already proposed at this height this view
                if not self._propose(height):
                    break
        self._schedule_tick()

    # -- proposal (primary) ---------------------------------------------------

    def _parent_digest(self, height: int) -> str | None:
        """The digest a proposal at *height* must chain onto: the ledger
        head for the first open height, otherwise the digest of the
        in-flight (or decided-but-unapplied) proposal one below.  None
        when the parent is unknown — a hole the primary must not propose
        across."""
        peer = self.peer
        assert peer is not None
        if height == peer.ledger.height + 1:
            return peer.ledger.head.block_hash
        decided = self._commit_buffer.get(height - 1)
        if decided is not None:
            return decided.digest
        state = self._rounds.get((self.view, height - 1))
        if state is not None and state.digest is not None:
            return state.digest
        return None

    def _propose(self, height: int) -> bool:
        peer = self.peer
        assert peer is not None
        prev_hash = self._parent_digest(height)
        if prev_hash is None:
            return False
        batch = peer.mempool.take(self.max_block_txs)
        if not batch:
            return False
        self._observe_order_wait(batch)
        if getattr(peer, "byzantine", False):
            self._propose_equivocating(height, prev_hash, batch)
            return True
        block = Block.build(
            height=height,
            prev_hash=prev_hash,
            timestamp=peer.sim.now,
            proposer=peer.node_id,
            transactions=batch,
        )
        payload = {"view": self.view, "height": height, "block": block}
        peer.broadcast(_PRE_PREPARE, payload)
        self._accept_pre_prepare(self.view, height, block, peer.node_id)
        return True

    def _propose_equivocating(self, height: int, prev_hash: str, batch: list) -> None:
        """Byzantine primary: send conflicting blocks to the two halves
        of the network.  PBFT's prepare quorum ensures at most one of the
        two digests can ever commit.

        Local round state is installed (block only — the equivocator does
        not vote) so :meth:`_requeue_stale_round` can return the taken
        transactions when the round is deposed; the seed skipped this,
        so a deposed equivocator's transactions vanished, and with a
        one-transaction batch its "conflicting" blocks were byte-identical
        (no equivocation at all)."""
        peer = self.peer
        assert peer is not None
        block_a = Block.build(height, prev_hash, peer.sim.now, peer.node_id, list(batch))
        conflicting = list(reversed(batch)) if len(batch) > 1 else []
        block_b = Block.build(height, prev_hash, peer.sim.now, peer.node_id, conflicting)
        state = self._round(self.view, height)
        state.block = block_a
        if state.started_at is None:
            state.started_at = peer.sim.now
        # The equivocator never votes for either digest itself; leaving
        # ``digest`` unset keeps _maybe_advance inert for this round (it
        # follows the winning block through commit certificates instead).
        state.sent_prepare = True
        state.sent_commit = True
        others = [v for v in self.validators if v != peer.node_id]
        for index, validator in enumerate(others):
            chosen = block_a if index % 2 == 0 else block_b
            peer.send(validator, _PRE_PREPARE, {"view": self.view, "height": height, "block": chosen})

    # -- replica phases ---------------------------------------------------------

    def _accept_pre_prepare(self, view: int, height: int, block: Block, src: str) -> None:
        peer = self.peer
        assert peer is not None
        if view != self.view or src != self.primary_for(view):
            return
        if height <= peer.ledger.height:
            return
        if height > peer.ledger.height + self.pipeline_depth:
            # The primary is proposing beyond our pipeline window: either
            # we missed blocks or it is misbehaving; treat as a lag hint.
            peer.sync.note_remote_height(src, height - 1)
            return
        decided = self._commit_buffer.get(height)
        if decided is not None:
            # This height is already decided locally (quorum seen); a
            # conflicting re-proposal must not gather our vote while the
            # decided block is still applicable.
            return
        state = self._round(view, height)
        if state.digest is not None and state.digest != block.block_hash:
            return  # primary equivocated to us; keep the first
        state.digest = block.block_hash
        state.block = block
        if state.started_at is None:
            state.started_at = peer.sim.now
            state.span = peer.tracer.start(
                "pbft.round", peer=peer.node_id, height=height, view=view
            )
        self._reconcile_early_votes(state)
        if not state.sent_prepare and self._is_validator():
            state.sent_prepare = True
            state.prepares.add(peer.node_id)
            peer.broadcast(
                _PREPARE, {"view": view, "height": height, "digest": block.block_hash}
            )
        self._maybe_advance(view, height)

    def _reconcile_early_votes(self, state: _Round) -> None:
        """Promote stashed votes whose digest matches the just-installed
        pre-prepare; votes for any other digest are discarded — they
        must never count toward this round's quorum."""
        digest = state.digest
        for src, voted in state.early_prepares.items():
            if voted == digest:
                state.prepares.add(src)
        state.early_prepares.clear()
        for src, (voted, signature) in state.early_commits.items():
            if voted != digest:
                continue
            state.commits.add(src)
            if signature is not None and src in self.validator_keys:
                state.commit_sigs[src] = signature
        state.early_commits.clear()

    def _on_prepare(self, view: int, height: int, digest: str, src: str) -> None:
        assert self.peer is not None
        if not self._member(src):
            self._reject_nonvalidator()
            return  # only validators vote toward quorums
        self._note_lag_hint(src, height)
        if not self._in_window(view, height):
            return  # stale or far-future; don't allocate round state
        if height in self._commit_buffer:
            return  # already decided at this height
        state = self._round(view, height)
        if state.digest is None:
            # Pre-prepare not seen yet: stash the vote with the digest it
            # names; it is counted (or dropped) at reconcile time.
            state.early_prepares[src] = digest
            return
        if digest != state.digest:
            return
        state.prepares.add(src)
        self._maybe_advance(view, height)

    def _on_commit(
        self, view: int, height: int, digest: str, src: str, signature: Any = None
    ) -> None:
        assert self.peer is not None
        if not self._member(src):
            self._reject_nonvalidator()
            return  # only validators vote toward quorums
        if not self._check_vote_signature(src, height, digest, signature):
            self._reject_bad_signature()
            return  # known validator, bad/absent signature: forged vote
        self._note_lag_hint(src, height)
        if not self._in_window(view, height):
            return  # stale or far-future; don't allocate round state
        if height in self._commit_buffer:
            return  # already decided at this height
        state = self._round(view, height)
        verified_sig = (
            bytes(signature)
            if isinstance(signature, (bytes, bytearray)) and src in self.validator_keys
            else None
        )
        if state.digest is None:
            state.early_commits[src] = (digest, verified_sig)
            return
        if digest != state.digest:
            return
        state.commits.add(src)
        if verified_sig is not None:
            state.commit_sigs[src] = verified_sig
        self._maybe_advance(view, height)

    def _maybe_advance(self, view: int, height: int) -> None:
        peer = self.peer
        assert peer is not None
        state = self._rounds.get((view, height))
        if state is None or state.digest is None:
            return
        if (
            not state.sent_commit
            and len(state.prepares) >= self.quorum
            and self._is_validator()
        ):
            state.sent_commit = True
            state.commits.add(peer.node_id)
            vote = {"view": view, "height": height, "digest": state.digest}
            if peer.node_id in self.validator_keys:
                signature = peer.keypair.sign(
                    _vote_message(peer.node_id, height, state.digest)
                )
                state.commit_sigs[peer.node_id] = signature
                vote["signature"] = signature
            peer.broadcast(_COMMIT, vote)
        if (
            state.sent_commit
            and state.block is not None
            and len(state.commits) >= self.quorum
        ):
            self._decide(view, height, state)

    def _decide(self, view: int, height: int, state: _Round) -> None:
        """Commit quorum reached for (view, height): apply now if it is
        next in line, otherwise park it in the decided-block buffer until
        the gap below closes (heights may decide out of order under
        pipelining, but they always *apply* in order)."""
        peer = self.peer
        assert peer is not None
        signatures = {
            signer: sig.hex()
            for signer, sig in state.commit_sigs.items()
            if signer in state.commits
        }
        decided = _Decided(
            block=state.block,
            digest=state.digest,
            certificate=sorted(state.commits),
            signatures=signatures,
            started_at=state.started_at,
            span=state.span,
        )
        self._rounds.pop((view, height), None)
        if height == peer.ledger.height + 1:
            if decided.block.prev_hash != peer.ledger.head.block_hash:
                # Same rule as _drain_commit_buffer: sync may have filled
                # this height's parent with a different block (the view
                # changed elsewhere), so a late commit quorum here is for
                # a block that can never extend this chain.  Applying it
                # would mutate world state before Ledger.append rejects
                # the linkage — discard instead, never apply unverified.
                self._discard_decided(decided)
                self._arm_view_timer()
                return
            self._apply_decided(height, decided)
            self._arm_view_timer()
            return
        decided.buffered_at = peer.sim.now
        self._commit_buffer[height] = decided
        self._observe_commit_buffer()

    def _apply_decided(self, height: int, decided: _Decided) -> None:
        peer = self.peer
        assert peer is not None
        if decided.started_at is not None:
            # Local pre-prepare → quorum-commit duration for this round.
            peer.obs.histogram("pbft.round", peer=peer.node_id).observe(
                peer.sim.now - decided.started_at
            )
        if decided.buffered_at is not None:
            peer.obs.histogram("pbft.commit_buffer_wait", peer=peer.node_id).observe(
                peer.sim.now - decided.buffered_at
            )
        if decided.span is not None:
            peer.tracer.finish(decided.span, outcome="committed")
        self._record_certificate(height, decided.digest, decided.certificate, decided.signatures)
        self._cleanup_height(height)
        peer.commit_block(decided.block)
        peer.broadcast(
            _COMMITTED,
            {
                "block": decided.block,
                "certificate": decided.certificate,
                "signatures": decided.signatures,
            },
        )
        self._timer_height = peer.ledger.height

    def on_block_applied(self, block: Block) -> None:
        """Hook from :meth:`Peer.commit_block`: *any* applied block —
        consensus-committed here, sync-fetched, or offered — may close
        the gap below buffered decided blocks; drain them in order."""
        if self._applying:
            return  # a drain is already running above us on the stack
        self._applying = True
        try:
            self._drain_commit_buffer()
        finally:
            self._applying = False

    def _drain_commit_buffer(self) -> None:
        peer = self.peer
        assert peer is not None
        if not self._commit_buffer:
            return
        while True:
            # Entries at or below the head lost their height to another
            # block (committed via sync while we sat on the quorum).
            for stale in [h for h in self._commit_buffer if h <= peer.ledger.height]:
                self._discard_decided(self._commit_buffer.pop(stale))
            next_height = peer.ledger.height + 1
            decided = self._commit_buffer.pop(next_height, None)
            if decided is None:
                break
            if decided.block.prev_hash != peer.ledger.head.block_hash:
                # Decided on top of a parent that lost its height across
                # a view change: the block can never extend this chain.
                self._discard_decided(decided)
                continue
            self._apply_decided(next_height, decided)
        self._observe_commit_buffer()

    def _discard_decided(self, decided: _Decided) -> None:
        assert self.peer is not None
        if decided.span is not None:
            self.peer.tracer.finish(decided.span, outcome="discarded")
        self._requeue_block_txs(decided.block)

    def _observe_commit_buffer(self) -> None:
        if self.peer is not None:
            self.peer.obs.gauge(
                "pbft.commit_buffer", peer=self.peer.node_id
            ).set(len(self._commit_buffer))

    def decided_heights(self) -> list[int]:
        """Heights decided locally but not yet applied (auditor probe)."""
        return sorted(self._commit_buffer)

    def _record_certificate(
        self,
        height: int,
        digest: str,
        certificate: list[str],
        signatures: dict[str, str] | None = None,
    ) -> None:
        self.commit_certificates[height] = (digest, tuple(certificate))
        if signatures:
            self.commit_signatures[height] = dict(signatures)
        floor = height - self.CERTIFICATE_HISTORY
        if floor > 0 and (height % 1000) == 0:
            for old in [h for h in self.commit_certificates if h < floor]:
                del self.commit_certificates[old]
                self.commit_signatures.pop(old, None)

    def _cleanup_height(self, height: int) -> None:
        for key in [k for k in self._rounds if k[1] <= height]:
            self._requeue_stale_round(self._rounds.pop(key))

    def _requeue_stale_round(self, state: _Round) -> None:
        """Return a discarded round's taken transactions to the mempool.

        A primary moves transactions from its mempool into the proposed
        block; if that round dies (view change deposed it, or another
        block won the height) those transactions would otherwise vanish
        silently.  Transactions that did commit are filtered out here by
        receipt, and any re-queued copy of the *winning* block's own txs
        is removed again by ``commit_block``'s ``mempool.remove``.
        """
        assert self.peer is not None
        if state.span is not None:
            self.peer.tracer.finish(state.span, outcome="superseded")
        if state.block is None:
            return
        self._requeue_block_txs(state.block)

    def _requeue_block_txs(self, block: Block) -> None:
        peer = self.peer
        assert peer is not None
        if block.proposer != peer.node_id:
            return
        peer.mempool.requeue(
            [tx for tx in block.transactions if tx.tx_id not in peer.receipts]
        )

    # -- view change ----------------------------------------------------------

    def _progress_token(self) -> tuple[int, int, int]:
        """Snapshot of everything the stall check treats as progress:
        the applied head plus the decided-block buffer's shape.  A
        replica whose buffer gained a height since the timer was armed is
        deciding blocks beyond the gap — pipelined progress, not a stall
        — even though its ledger height has not moved yet."""
        assert self.peer is not None
        return (
            self.peer.ledger.height,
            len(self._commit_buffer),
            max(self._commit_buffer, default=-1),
        )

    def _arm_view_timer(self) -> None:
        # Exactly one outstanding timer per replica: commits would
        # otherwise each spawn an immortal re-arming chain, flooding the
        # event queue and occasionally firing against stale heights.
        if self.stopped or self._timer_scheduled:
            return
        peer = self.peer
        assert peer is not None
        self._timer_scheduled = True
        expected = self._progress_token()
        self._timer_event = self.peer.sim.schedule(
            self.view_timeout,
            lambda: self._view_timer_fired(expected),
            label=f"pbft-timer:{peer.node_id}",
        )

    def _view_timer_fired(self, expected: tuple[int, int, int]) -> None:
        self._timer_scheduled = False
        if self.stopped:
            return
        peer = self.peer
        assert peer is not None
        has_work = (
            len(peer.mempool) > 0 or bool(self._rounds) or bool(self._commit_buffer)
        )
        stalled = has_work and self._progress_token() == expected
        if stalled and not peer.crashed and self._is_validator():
            proposal = self.view + 1
            self._vote_view_change(proposal, peer.node_id)
            peer.broadcast(_VIEW_CHANGE, {"new_view": proposal})
        self._arm_view_timer()

    def _vote_view_change(self, new_view: int, src: str) -> None:
        if not self._member(src):
            self._reject_nonvalidator()
            return  # only validators can depose a primary
        if not self.view < new_view <= self.view + self.VIEW_WINDOW:
            return  # stale, or unreachably far ahead (bounds _view_votes)
        votes = self._view_votes.setdefault(new_view, set())
        votes.add(src)
        if len(votes) >= self.quorum:
            self.view = new_view
            self.view_changes_completed += 1
            if self.peer is not None:
                self.peer.obs.counter("pbft.view_changes", peer=self.peer.node_id).inc()
            # Re-queue across the whole pipeline window: every deposed
            # round at every in-flight height returns its transactions.
            for key in [k for k in self._rounds if k[0] < new_view]:
                self._requeue_stale_round(self._rounds.pop(key))
            self._prune_commit_buffer()
            self._view_votes = {v: s for v, s in self._view_votes.items() if v > new_view}

    def _prune_commit_buffer(self) -> None:
        """Drop decided-but-unapplied blocks orphaned by a view change.

        A buffered block at height ``h`` links (by ``prev_hash``) to an
        uncommitted block at ``h - 1``.  Once deposed rounds have been
        requeued, that parent can only still materialise from the
        applied head, a surviving round, or another buffered entry; any
        other linkage means the gap below can never close from here —
        yet the entry would keep refusing pre-prepares at its height and
        holding its transactions out of the mempool, stalling the chain
        through repeated view changes.  Discard such entries so their
        transactions requeue for the new primary.  (If the parent did
        commit elsewhere it re-arrives via sync, and ``commit_block``'s
        ``mempool.remove`` dedupes the requeued copies.)
        """
        peer = self.peer
        if peer is None or not self._commit_buffer:
            return
        producible = {peer.ledger.head.block_hash}
        producible.update(
            state.digest for state in self._rounds.values() if state.digest is not None
        )
        for height in sorted(self._commit_buffer):
            decided = self._commit_buffer[height]
            if decided.block.prev_hash in producible:
                producible.add(decided.digest)
                continue
            self._discard_decided(self._commit_buffer.pop(height))
        self._observe_commit_buffer()

    def pending_txs(self) -> set[str]:
        """Tx ids held in open (uncommitted) rounds and in the decided
        buffer.

        The durability auditor counts these as pending: a replica cut
        off from a view change it never saw keeps its in-flight round
        alive, and the transactions in it are retained, not dropped —
        they re-enter the mempool the moment the round is superseded
        (see ``_requeue_stale_round``).  Decided-but-unapplied blocks
        likewise hold their transactions until they apply or are
        discarded (and re-queued).
        """
        held: set[str] = set()
        for state in self._rounds.values():
            if state.block is not None:
                held.update(tx.tx_id for tx in state.block.transactions)
        for decided in self._commit_buffer.values():
            held.update(tx.tx_id for tx in decided.block.transactions)
        return held

    # -- sync -------------------------------------------------------------------

    def _on_committed(
        self,
        block: Block,
        certificate: list[str],
        src: str,
        signatures: dict[str, str] | None = None,
    ) -> None:
        """A peer announced a committed block with its certificate.

        Everything beyond the quick quorum pre-filter is delegated to the
        peer's :class:`~repro.chain.sync.SyncManager`: next-in-line blocks
        verify (via :meth:`verify_synced_block`) and apply immediately,
        height-ahead blocks are buffered and the gap is fetched — the
        seed engine silently dropped those, stranding any replica that
        missed more than one block.
        """
        peer = self.peer
        assert peer is not None
        valid_signers = {signer for signer in certificate if signer in self._validator_set}
        if len(valid_signers) < self.quorum:
            return
        proof: Any = list(certificate)
        if signatures:
            proof = {"signers": list(certificate), "signatures": dict(signatures)}
        peer.sync.offer_block(block, proof, src=src)

    @staticmethod
    def _proof_parts(proof: Any) -> tuple[list[str], dict[str, str]] | None:
        """Normalize a certificate proof: legacy name list/tuple or the
        dict form ``{"signers": [...], "signatures": {name: hex}}``."""
        if isinstance(proof, dict):
            signers = proof.get("signers")
            signatures = proof.get("signatures") or {}
            if not isinstance(signers, (list, tuple)) or not isinstance(signatures, dict):
                return None
            return list(signers), dict(signatures)
        if isinstance(proof, (list, tuple)):
            return list(proof), {}
        return None

    def verify_synced_block(self, block: Block, proof: Any) -> bool:
        """A fetched block needs a 2f+1-distinct-validator certificate.

        Signers whose key is registered only count when their Ed25519
        vote signature over this block's (height, hash) verifies — all
        such signatures are checked in ONE batched call.  Signers with no
        registered key fall back to the name-set check (legacy proofs,
        keyless unit-test engines).
        """
        parts = self._proof_parts(proof)
        if parts is None:
            return False
        signers, signatures = parts
        counted: set[str] = set()
        items: list[tuple[bytes, bytes, bytes]] = []
        item_signers: list[str] = []
        for signer in sorted(set(signers) & self._validator_set):
            key = self.validator_keys.get(signer)
            if key is None:
                counted.add(signer)
                continue
            sig_hex = signatures.get(signer)
            try:
                sig = bytes.fromhex(sig_hex) if isinstance(sig_hex, str) else None
            except ValueError:
                sig = None
            if sig is None:
                continue  # known validator, no usable signature: not counted
            items.append((key, _vote_message(signer, block.height, block.block_hash), sig))
            item_signers.append(signer)
        if items:
            labels = {"peer": self.peer.node_id} if self.peer is not None else {}
            registry = self.peer.obs if self.peer is not None else None
            verdicts = verify_many(items, registry=registry, **labels)
            counted.update(s for s, ok in zip(item_signers, verdicts) if ok)
        return len(counted) >= self.quorum

    def sync_proof(self, height: int) -> Any:
        """Serve the stored commit certificate alongside the block —
        dict form when vote signatures were recorded, legacy name list
        otherwise."""
        entry = self.commit_certificates.get(height)
        if entry is None:
            return None
        signatures = self.commit_signatures.get(height)
        if signatures:
            return {"signers": list(entry[1]), "signatures": dict(signatures)}
        return list(entry[1])

    def on_synced_block(self, block: Block, proof: Any) -> None:
        parts = self._proof_parts(proof)
        if parts is None:
            return
        signers, signatures = parts
        self._record_certificate(
            block.height, block.block_hash, sorted(signers), signatures
        )
        self._cleanup_height(block.height)

    def on_restart(self) -> None:
        """Crash-restart: open rounds, vote tallies, the decided-block
        buffer, and timers are volatile and do not survive; the view
        number is recovered from stable storage (Castro–Liskov §4.3
        persists it for exactly this reason), so it is kept."""
        for event in (self._tick_event, self._timer_event):
            if event is not None:
                event.cancel()
        self._tick_event = self._timer_event = None
        if self.peer is not None:
            for state in self._rounds.values():
                if state.span is not None:
                    self.peer.tracer.finish(state.span, outcome="restart")
            for decided in self._commit_buffer.values():
                if decided.span is not None:
                    self.peer.tracer.finish(decided.span, outcome="restart")
        self._rounds.clear()
        self._commit_buffer.clear()
        self._observe_commit_buffer()
        self._view_votes.clear()
        self._tick_scheduled = False
        self._timer_scheduled = False
        self._timer_height = -1
        self._applying = False
        self.start()

    # -- dispatch ----------------------------------------------------------------

    def on_message(self, message: Message) -> bool:
        payload = message.payload
        if message.kind == _PRE_PREPARE:
            self._accept_pre_prepare(payload["view"], payload["height"], payload["block"], message.src)
        elif message.kind == _PREPARE:
            self._on_prepare(payload["view"], payload["height"], payload["digest"], message.src)
        elif message.kind == _COMMIT:
            self._on_commit(
                payload["view"], payload["height"], payload["digest"], message.src,
                payload.get("signature"),
            )
        elif message.kind == _VIEW_CHANGE:
            self._vote_view_change(payload["new_view"], message.src)
        elif message.kind == _COMMITTED:
            self._on_committed(
                payload["block"], payload["certificate"], message.src,
                payload.get("signatures"),
            )
        else:
            return False
        return True
