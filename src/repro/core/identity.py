"""Verified identities: the platform's accountability root (§IV).

"Within the blockchain platform, each record is signed and easy to
track.  Can't deny that he/she has created this news."  That property
needs an identity layer binding ledger addresses to verified
participants with roles.  Registration is open; *verification* is the
gate — a governance account (or m-of-n in a real deployment) attests an
identity, after which the account may publish, vote, or found platforms.
"""

from __future__ import annotations

from repro.chain.contracts import Contract, ContractContext, contract_method

__all__ = ["IdentityContract", "ROLES"]

ROLES = ("consumer", "creator", "journalist", "publisher", "checker", "developer")


def identity_key(address: str) -> str:
    return f"id:{address}"


class IdentityContract(Contract):
    """On-chain registry of participants and their verification status."""

    name = "identity"

    @contract_method
    def register(self, ctx: ContractContext, display_name: str, role: str):
        """Self-register an identity (unverified until attested)."""
        ctx.require(role in ROLES, f"unknown role {role!r}; valid: {ROLES}")
        ctx.require(bool(display_name), "display_name must be non-empty")
        key = identity_key(ctx.caller)
        ctx.require(ctx.get(key) is None, "identity already registered")
        record = {
            "address": ctx.caller,
            "display_name": display_name,
            "role": role,
            "verified": False,
            "registered_at": ctx.timestamp,
            "verified_by": None,
        }
        ctx.put(key, record)
        ctx.emit("identity-registered", address=ctx.caller, role=role)
        return record

    @contract_method
    def verify(self, ctx: ContractContext, address: str):
        """Attest an identity.  The first caller ever to verify becomes
        the governance root (bootstrap); afterwards only verified
        identities may attest others — a simple web-of-trust chain whose
        every link is on the ledger."""
        key = identity_key(address)
        record = ctx.get(key)
        ctx.require(record is not None, f"no identity registered for {address}")
        ctx.require(not record["verified"], "identity is already verified")
        governance_root = ctx.get("id-governance-root")
        if governance_root is None:
            ctx.put("id-governance-root", ctx.caller)
        else:
            caller_record = ctx.get(identity_key(ctx.caller))
            is_root = ctx.caller == governance_root
            ctx.require(
                is_root or (caller_record is not None and caller_record["verified"]),
                "only verified identities may attest others",
            )
        record["verified"] = True
        record["verified_by"] = ctx.caller
        ctx.put(key, record)
        ctx.emit("identity-verified", address=address, by=ctx.caller)
        return record

    @contract_method
    def get_identity(self, ctx: ContractContext, address: str):
        """Fetch an identity record (None if unregistered)."""
        return ctx.get(identity_key(address))

    @contract_method
    def require_verified(self, ctx: ContractContext, address: str):
        """Helper for cross-contract-style checks in tests/clients."""
        record = ctx.get(identity_key(address))
        ctx.require(record is not None and record["verified"], f"{address} is not a verified identity")
        return True
