"""Further property-based invariants: contract determinism, shard
schedules, cascade bookkeeping, validator aggregation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.consensus.sharded import ShardedExecutor
from repro.chain.contracts import ContractRegistry
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.core.crowdsourcing import ValidatorPool, Vote
from repro.corpus import CorpusGenerator
from repro.crypto import KeyPair
from repro.social import CascadeRunner, build_social_world
from tests.conftest import CounterContract


# -- contract determinism ------------------------------------------------------


@given(st.integers(min_value=-1000, max_value=1000), st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_contract_execution_is_deterministic(amount, preload):
    """Same state + same invocation => identical rw-sets, twice."""
    registry = ContractRegistry()
    registry.install(CounterContract())
    state = WorldState()
    if preload:
        state.apply_write_set({"count": preload})
    results = [
        registry.execute(state, "counter", "increment", {"amount": amount},
                         caller="acct:x", timestamp=1.0, tx_id="t")
        for _ in range(2)
    ]
    assert results[0].success == results[1].success
    assert results[0].read_set == results[1].read_set
    assert results[0].write_set == results[1].write_set
    assert results[0].return_value == results[1].return_value
    assert results[0].gas_used == results[1].gas_used


# -- sharded scheduling ----------------------------------------------------------


_rwsets = st.lists(
    st.tuples(
        st.sets(st.sampled_from([f"k{i}" for i in range(12)]), max_size=3),  # reads
        st.sets(st.sampled_from([f"k{i}" for i in range(12)]), min_size=1, max_size=3),  # writes
    ),
    min_size=1,
    max_size=20,
)


def _make_txs(rwsets):
    txs = []
    for index, (reads, writes) in enumerate(rwsets):
        tx = Transaction.create(KeyPair.generate(random.Random(index)), "c", "m", {}, nonce=index)
        txs.append(tx.with_execution({k: 1 for k in reads}, {k: "v" for k in writes}, (), None, ()))
    return txs


@given(_rwsets, st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_shard_schedule_invariants(rwsets, n_shards):
    txs = _make_txs(rwsets)
    schedule = ShardedExecutor(n_shards=n_shards).plan_block(txs)
    # Conservation: every transaction lands exactly once.
    assert schedule.local_count + schedule.cross_shard_count == len(txs)
    # Parallel can never beat the physics: makespan bounds.
    assert 0 < schedule.parallel_makespan <= schedule.sequential_makespan
    assert schedule.speedup >= 1.0
    # With one shard the two models coincide.
    if n_shards == 1:
        assert schedule.parallel_makespan == schedule.sequential_makespan


# -- cascade bookkeeping ------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_cascade_root_consistency(seed):
    graph, agents, corpus = build_social_world(n_agents=120, seed=seed % 1000)
    article = corpus.insertion_fake(corpus.factual(), "troll", 0.0)
    hub = max(graph.nodes(), key=lambda n: graph.out_degree(n))
    result = CascadeRunner(graph, corpus).run([(hub, article)], n_rounds=6)
    # Every event's derived article must map to its parent's root.
    for event in result.events:
        parent_root = result.root_of.get(event.parent_article_id)
        assert result.root_of[event.article_id] == parent_root
    # Reach curves never decrease and end at the recorded reach.
    curve = result.reach_curve(article.article_id)
    assert curve == sorted(curve)
    if curve:
        assert curve[-1] == result.reach(article.article_id)


# -- validator aggregation -------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.booleans(), st.floats(min_value=0.0, max_value=5.0)),
        min_size=1, max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_weighted_share_bounds_and_degeneracy(votes_spec):
    votes = [
        Vote(validator_id=f"v{i}", verdict=verdict, weight=weight)
        for i, (verdict, weight) in enumerate(votes_spec)
    ]
    weighted = ValidatorPool.weighted_share(votes)
    majority = ValidatorPool.majority_share(votes)
    assert 0.0 <= weighted <= 1.0
    assert 0.0 <= majority <= 1.0
    # Uniform weights collapse the two aggregations.
    uniform = [Vote(v.validator_id, v.verdict, 1.0) for v in votes]
    assert abs(ValidatorPool.weighted_share(uniform) - ValidatorPool.majority_share(uniform)) < 1e-12


# -- corpus <-> ledger measured degrees ----------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_derivation_chain_degrees_bounded(seed):
    gen = CorpusGenerator(seed=seed % 500)
    article = gen.factual()
    for _ in range(4):
        article = gen.malicious_derivation(article, gen.next_author(), 1.0)
        assert 0.0 <= article.modification_degree <= 1.0
        assert 0.0 <= article.cumulative_distortion <= 1.0
        assert article.label_fake
