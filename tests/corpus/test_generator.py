"""Corpus generator: label balance, the 72.3% calibration, determinism."""

import pytest

from repro.corpus import PAPER_MUTATED_FAKE_FRACTION, CorpusGenerator
from repro.errors import CorpusError


@pytest.fixture
def gen():
    return CorpusGenerator(seed=5)


def test_label_counts_exact(gen):
    corpus = gen.labeled_corpus(n_factual=80, n_fake=60)
    assert len(corpus.factual) == 80
    assert len(corpus.fakes) == 60
    assert len(corpus) == 140


def test_mutated_fake_fraction_matches_paper(gen):
    corpus = gen.labeled_corpus(n_factual=100, n_fake=200)
    mutated = [a for a in corpus.fakes if a.parents and not a.fabricated]
    fabricated = [a for a in corpus.fakes if a.fabricated and not a.parents]
    assert len(mutated) == round(200 * PAPER_MUTATED_FAKE_FRACTION)
    assert len(mutated) + len(fabricated) == 200


def test_custom_mutation_fraction(gen):
    corpus = gen.labeled_corpus(n_factual=50, n_fake=100, mutated_fake_fraction=0.5)
    mutated = [a for a in corpus.fakes if a.parents and not a.fabricated]
    assert len(mutated) == 50


def test_benign_derivations_present_and_factual(gen):
    corpus = gen.labeled_corpus(n_factual=100, n_fake=10)
    derived_factual = [a for a in corpus.factual if a.parents]
    assert derived_factual, "corpus should include honest relays/quotes"
    assert all(not a.label_fake for a in derived_factual)


def test_determinism():
    a = CorpusGenerator(seed=42).labeled_corpus(50, 50)
    b = CorpusGenerator(seed=42).labeled_corpus(50, 50)
    assert [x.article_id for x in a] == [x.article_id for x in b]
    assert [x.text for x in a] == [x.text for x in b]


def test_different_seeds_differ():
    a = CorpusGenerator(seed=1).labeled_corpus(30, 30)
    b = CorpusGenerator(seed=2).labeled_corpus(30, 30)
    assert [x.text for x in a] != [x.text for x in b]


def test_unique_ids(gen):
    corpus = gen.labeled_corpus(100, 100)
    ids = [a.article_id for a in corpus]
    assert len(set(ids)) == len(ids)


def test_by_id_lookup(gen):
    corpus = gen.labeled_corpus(20, 20)
    first = corpus.articles[0]
    assert corpus.by_id[first.article_id] is first


def test_texts_and_labels_aligned(gen):
    corpus = gen.labeled_corpus(30, 30)
    texts, labels = corpus.texts_and_labels()
    assert len(texts) == len(labels) == 60
    for article, label in zip(corpus.articles, labels):
        assert label == int(article.label_fake)


def test_malicious_derivation_always_fake(gen):
    parent = gen.factual()
    for _ in range(25):
        fake = gen.malicious_derivation(parent, gen.next_author(), 1.0)
        assert fake.label_fake


def test_benign_derivation_never_fake(gen):
    originals = [gen.factual() for _ in range(5)]
    for _ in range(25):
        derived = gen.benign_derivation(originals[0], gen.next_author(), 1.0, pool=originals)
        assert not derived.label_fake


def test_topic_pinning(gen):
    article = gen.factual(topic="health")
    assert article.topic == "health"


def test_invalid_params(gen):
    with pytest.raises(CorpusError):
        gen.labeled_corpus(n_factual=1, n_fake=5)
    with pytest.raises(CorpusError):
        gen.labeled_corpus(mutated_fake_fraction=1.5)


def test_timestamps_monotonic(gen):
    corpus = gen.labeled_corpus(20, 20, start_time=100.0, time_step=2.0)
    assert all(a.timestamp >= 100.0 for a in corpus)
