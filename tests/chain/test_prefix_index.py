"""Regression tests for the sorted-key prefix index on WorldState.

The seed implementation of ``keys_with_prefix`` materialized and sorted
the *entire* keyspace on every call — O(n log n) per scan.  The fix
maintains a sorted key index updated on commit (O(log n) per write) and
serves scans by bisect + walk, O(log n + k).  These tests fail on the
pre-fix code: the index attribute did not exist, and nothing kept it
consistent across inserts, overwrites, and deletes.
"""

import random

from repro.chain.state import WorldState


def _brute_force(state, prefix):
    return sorted(k for k in state._store if k.startswith(prefix))


def test_index_exists_and_matches_store():
    state = WorldState()
    state.apply_write_set({"b": 1, "a": 2, "c": 3})
    assert state._sorted_keys == ["a", "b", "c"]


def test_scan_correct_after_mixed_operations():
    state = WorldState()
    rng = random.Random(7)
    alive = {}
    for round_no in range(30):
        writes = {}
        for _ in range(20):
            key = f"pre{rng.randrange(5)}/k{rng.randrange(200):04d}"
            if alive and rng.random() < 0.3:
                victim = rng.choice(sorted(alive))
                writes[victim] = None  # delete
                alive.pop(victim, None)
            else:
                writes[key] = {"round": round_no}
                alive[key] = True
        state.apply_write_set(writes)
        # Index stays sorted and exactly mirrors the committed store.
        assert state._sorted_keys == sorted(state._store)
        for prefix in ("pre0/", "pre3/", "pre", "missing/"):
            assert list(state.keys_with_prefix(prefix)) == _brute_force(state, prefix)


def test_overwrite_does_not_duplicate_index_entry():
    state = WorldState()
    state.apply_write_set({"k": 1})
    state.apply_write_set({"k": 2})
    state.apply_write_set({"k": 3})
    assert state._sorted_keys == ["k"]
    assert list(state.keys_with_prefix("k")) == ["k"]


def test_delete_of_absent_key_leaves_index_intact():
    state = WorldState()
    state.apply_write_set({"a": 1, "b": 2})
    state.apply_write_set({"ghost": None})
    assert state._sorted_keys == ["a", "b"]


def test_scan_is_lazy_and_stops_at_prefix_boundary():
    state = WorldState()
    state.apply_write_set({f"aa/{i}": i for i in range(100)})
    state.apply_write_set({f"zz/{i}": i for i in range(100)})
    scan = state.keys_with_prefix("aa/")
    first = next(scan)
    assert first == "aa/0"
    assert len(list(scan)) == 99  # never touches the zz/ half
