"""Known-clean corpus for the DET family: the blessed idioms."""

import random

from repro.crypto import MerkleTree, hash_json


def seeded_jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random() * 0.5


def threaded_pick(rng: random.Random, options):
    return rng.choice(options)


def derived_rng(seed: int) -> random.Random:
    return random.Random(f"chaos:{seed}")


def ordered_root(digests):
    return MerkleTree(sorted(set(digests)))


def ordered_payload(tags):
    return hash_json(sorted({tag for tag in tags}))
