PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test chaos bench recovery obs-demo

# Byte-compile everything (pyflakes is not vendored; compileall still
# catches syntax errors across src/tests/benchmarks before the suite runs).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

# Tier-1: fast default suite (chaos-marked sweeps excluded via addopts).
test: lint
	$(PYTHON) -m pytest -x -q

# Extended seeded chaos/invariant-audit sweeps (slow, opt-in).
chaos:
	$(PYTHON) -m pytest -m chaos

bench:
	$(PYTHON) -m pytest benchmarks -q

# Crash-recovery: deep catch-up tests + the recovery benchmark
# (writes benchmarks/latest_recovery.json).
recovery:
	$(PYTHON) -m pytest tests/chain/test_sync_recovery.py benchmarks/bench_recovery.py -q

# Traced end-to-end demo: runs a small PBFT workload with a crash/restart,
# writes benchmarks/latest_trace.jsonl, and prints the per-phase report.
obs-demo:
	$(PYTHON) -m repro.cli report --demo --trace benchmarks/latest_trace.jsonl
