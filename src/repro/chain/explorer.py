"""Chain explorer: human-readable views over blocks and transactions.

The inspection surface a block-explorer UI would sit on: summaries of
the chain head, any block, any transaction, and the event stream — all
plain dicts/strings so they serialize straight into a JSON API or a
terminal table.

Every query function takes an optional ``index``
(:class:`repro.chain.index.ChainIndex`).  When one is supplied and
covers the ledger's height, answers come from its materialized views in
O(log n + k)-class time; otherwise the functions fall back to the
ledger scan.  The two paths are answer-identical by contract — the
scan-vs-index equivalence tests and ``benchmarks/bench_explorer.py``
assert it on randomized chains — so the scan stays available as the
cross-check oracle, not as a second source of truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chain.index import ChainIndex

__all__ = ["chain_summary", "describe_block", "describe_transaction", "find_transactions"]


def _index_covers(index: "ChainIndex | None", ledger: Ledger) -> bool:
    """An index only answers for the exact height it has seen."""
    return index is not None and index.height == ledger.height


def chain_summary(ledger: Ledger, index: "ChainIndex | None" = None) -> dict[str, Any]:
    """Head-of-chain overview."""
    head = ledger.head
    if _index_covers(index, ledger):
        total = len(index)
        valid = index.valid_transactions
        contracts = index.contract_counts()
    else:
        # Single scan computing the valid count and the per-contract
        # histogram together (the seed walked the whole chain twice).
        total = 0
        valid = 0
        contracts = {}
        for committed in ledger.transactions(valid_only=False):
            total += 1
            if committed.valid:
                valid += 1
            name = committed.transaction.contract
            contracts[name] = contracts.get(name, 0) + 1
        contracts = dict(sorted(contracts.items()))
    return {
        "height": ledger.height,
        "head_hash": head.block_hash,
        "head_timestamp": head.timestamp,
        "blocks": len(ledger),
        "transactions": total,
        "valid_transactions": valid,
        "invalid_transactions": total - valid,
        "transactions_by_contract": contracts,
    }


def describe_block(block: Block) -> dict[str, Any]:
    """One block's header plus transaction digest lines."""
    return {
        "height": block.height,
        "hash": block.block_hash,
        "prev_hash": block.prev_hash,
        "merkle_root": block.merkle_root,
        "timestamp": block.timestamp,
        "proposer": block.proposer,
        "tx_count": len(block),
        "transactions": [
            f"{tx.tx_id[:12]} {tx.contract}.{tx.method} from {tx.sender[:14]}"
            for tx in block.transactions
        ],
    }


def describe_transaction(ledger: Ledger, tx_id: str) -> dict[str, Any] | None:
    """Full commitment record for one transaction (None if unknown)."""
    committed = ledger.get_transaction(tx_id)
    if committed is None:
        return None
    tx: Transaction = committed.transaction
    return {
        "tx_id": tx.tx_id,
        "block_height": committed.block_height,
        "index_in_block": committed.tx_index,
        "valid": committed.valid,
        "sender": tx.sender,
        "contract": tx.contract,
        "method": tx.method,
        "args": tx.args,
        "timestamp": tx.timestamp,
        "reads": len(tx.read_set),
        "writes": len(tx.write_set),
        "events": [event.get("kind") for event in tx.events],
        "endorsements": [e.peer_id for e in tx.endorsements],
        "return_value": tx.return_value,
    }


def find_transactions(
    ledger: Ledger,
    contract: str | None = None,
    method: str | None = None,
    sender: str | None = None,
    limit: int = 50,
    index: "ChainIndex | None" = None,
) -> list[dict[str, Any]]:
    """Filtered transaction search, newest first.

    With an up-to-date *index* this never touches a block: the interned
    views answer directly.  The scan fallback walks blocks newest-first
    and stops at *limit* — the seed built ``list(ledger.transactions())``
    (the entire chain) before applying the limit.
    """
    if limit <= 0:
        return []
    if _index_covers(index, ledger):
        return [
            {
                "tx_id": row.tx_id,
                "block_height": row.block_height,
                "contract": row.contract,
                "method": row.method,
                "sender": row.sender,
                "valid": row.valid,
            }
            for row in index.find_transactions(
                contract=contract, method=method, sender=sender, limit=limit
            )
        ]
    matches = []
    for committed in ledger.transactions_newest_first(valid_only=False):
        tx = committed.transaction
        if contract is not None and tx.contract != contract:
            continue
        if method is not None and tx.method != method:
            continue
        if sender is not None and tx.sender != sender:
            continue
        matches.append(
            {
                "tx_id": tx.tx_id,
                "block_height": committed.block_height,
                "contract": tx.contract,
                "method": tx.method,
                "sender": tx.sender,
                "valid": committed.valid,
            }
        )
        if len(matches) >= limit:
            break
    return matches
