"""The factual news database — contribution (1) of the paper.

§VI: a smart-contract-managed store that is "a root of blockchain data
architecture ... provides the ground truth and corner stone for our
system".  It bootstraps from records that are facts *by nature* (the
paper's examples: official speech records of lawmakers and public
figures) and grows by promotion: an article whose ranking pipeline
verdict clears the promotion bar can be added, making the database "a
powerful trusting news engine".

No one can modify an entry once stored — enforced here by the contract
refusing overwrites, and systemically by the ledger's immutability.
"""

from __future__ import annotations

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.core.identity import identity_key

__all__ = ["FactualDatabaseContract", "fact_key"]

# Promotion requires at least this final factualness score (see
# repro.core.ranking for how the score is assembled).
PROMOTION_THRESHOLD = 0.75


def fact_key(fact_id: str) -> str:
    return f"fact:{fact_id}"


class FactualDatabaseContract(Contract):
    """Append-only ground-truth store managed on-chain."""

    name = "factualdb"

    @contract_method
    def seed_fact(
        self,
        ctx: ContractContext,
        fact_id: str,
        content_hash: str,
        source: str,
        topic: str,
    ):
        """Bootstrap entry from an official public record.

        Only verified identities may seed (the operator importing the
        congressional record is accountable for the import).
        """
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(
            caller is not None and caller["verified"],
            "only verified identities may seed facts",
        )
        key = fact_key(fact_id)
        ctx.require(ctx.get(key) is None, f"fact {fact_id} already recorded")
        record = {
            "fact_id": fact_id,
            "content_hash": content_hash,
            "source": source,
            "topic": topic,
            "kind": "seed",
            "added_by": ctx.caller,
            "added_at": ctx.timestamp,
            "score": 1.0,
        }
        ctx.put(key, record)
        ctx.emit("fact-seeded", fact_id=fact_id, topic=topic, source=source)
        return record

    @contract_method
    def promote(
        self,
        ctx: ContractContext,
        fact_id: str,
        content_hash: str,
        topic: str,
        article_id: str,
        score: float,
    ):
        """Promote a ranked article into the factual database.

        The promotion bar is enforced on-chain so a buggy (or corrupt)
        off-chain ranking service cannot quietly pollute ground truth.
        """
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(
            caller is not None and caller["verified"],
            "only verified identities may promote facts",
        )
        ctx.require(
            score >= PROMOTION_THRESHOLD,
            f"score {score:.3f} below promotion threshold {PROMOTION_THRESHOLD}",
        )
        key = fact_key(fact_id)
        ctx.require(ctx.get(key) is None, f"fact {fact_id} already recorded")
        record = {
            "fact_id": fact_id,
            "content_hash": content_hash,
            "topic": topic,
            "kind": "promoted",
            "article_id": article_id,
            "added_by": ctx.caller,
            "added_at": ctx.timestamp,
            "score": score,
        }
        ctx.put(key, record)
        ctx.emit("fact-promoted", fact_id=fact_id, article_id=article_id, score=score)
        return record

    @contract_method
    def get_fact(self, ctx: ContractContext, fact_id: str):
        return ctx.get(fact_key(fact_id))

    @contract_method
    def list_facts(self, ctx: ContractContext, topic: str | None = None):
        """All fact ids (optionally filtered by topic)."""
        facts = []
        for key in ctx.keys_with_prefix("fact:"):
            record = ctx.get(key)
            if topic is None or record["topic"] == topic:
                facts.append(record["fact_id"])
        return facts
