"""Pure-Python Ed25519 (RFC 8032) signatures.

Implemented from scratch on top of ``hashlib.sha512`` so the blockchain
substrate has no dependency on external crypto packages.  Points are kept
in extended homogeneous coordinates (X, Y, Z, T) for efficient addition
and doubling.  Scalar multiplication is *not* naive double-and-add:

- **fixed-base** multiplications (signing, key generation) walk a 4-bit
  windowed table of base-point multiples built once at import, so
  ``s*G`` is at most 63 point additions with no doublings;
- **verification** evaluates ``s*G - h*A`` in a single Straus/Shamir
  interleaved double-scalar pass: one shared doubling ladder with wNAF
  (width-w non-adjacent form) digit recoding, a precomputed wNAF table
  of odd base-point multiples, and a per-key table of odd multiples of
  ``-A`` kept in a bounded cache so repeat signers skip both point
  decompression and table construction;
- **batch verification** (:func:`verify_batch`) checks a whole block's
  signatures at once via Bernstein-style random linear combination — one
  multi-scalar multiplication with deterministic (hash-derived, odd)
  128-bit coefficients — and bisects to per-signature verification when
  the combined check fails, so verdicts always match :func:`verify`.

This module deliberately exposes only the byte-level API:

- :func:`generate_public_key` — 32-byte seed -> 32-byte public key
- :func:`sign` — (seed, message) -> 64-byte signature
- :func:`verify` — (public key, message, signature) -> bool
- :func:`verify_batch` — list of (public key, message, signature) -> list of bool

Key management lives in :mod:`repro.crypto.keys`.
"""

from __future__ import annotations

import hashlib

from repro.errors import CryptoError

__all__ = [
    "generate_public_key",
    "sign",
    "verify",
    "verify_batch",
    "verify_cache_stats",
    "verify_cache_clear",
    "point_cache_stats",
    "point_cache_clear",
    "batch_stats",
    "batch_stats_clear",
    "SEED_BYTES",
    "SIG_BYTES",
]

SEED_BYTES = 32
SIG_BYTES = 64

_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P
_I = pow(2, (_P - 1) // 4, _P)  # sqrt(-1)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _P - 2, _P)


def _recover_x(y: int, sign_bit: int) -> int:
    """Recover the x coordinate from y and the encoded sign bit."""
    if y >= _P:
        raise CryptoError("point y coordinate out of range")
    x2 = (y * y - 1) * _inv(_D * y * y + 1) % _P
    if x2 == 0:
        if sign_bit:
            raise CryptoError("invalid point encoding")
        return 0
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = x * _I % _P
    if (x * x - x2) % _P != 0:
        raise CryptoError("invalid point encoding")
    if (x & 1) != sign_bit:
        x = _P - x
    return x


# Points as (X, Y, Z, T) extended coordinates with x = X/Z, y = Y/Z, xy = T/Z.
_Point = tuple[int, int, int, int]

_G_Y = 4 * _inv(5) % _P
_G_X = _recover_x(_G_Y, 0)
_G: _Point = (_G_X, _G_Y, 1, _G_X * _G_Y % _P)
_IDENTITY: _Point = (0, 1, 1, 0)


def _point_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_double(p: _Point) -> _Point:
    # dbl-2008-hwcd for a = -1 twisted Edwards: 4M + 4S, cheaper than the
    # unified addition (9M) — and the verification ladders below are
    # doubling-dominated, so this is the single hottest function here.
    x1, y1, z1, _ = p
    a = x1 * x1 % _P
    b = y1 * y1 % _P
    c = 2 * z1 * z1 % _P
    h = a + b
    e = h - (x1 + y1) * (x1 + y1) % _P
    g = a - b
    f = c + g
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_neg(p: _Point) -> _Point:
    x, y, z, t = p
    return (-x % _P, y, z, -t % _P)


def _point_mul(s: int, p: _Point) -> _Point:
    q = _IDENTITY
    while s > 0:
        if s & 1:
            q = _point_add(q, p)
        p = _point_add(p, p)
        s >>= 1
    return q


# -- fixed-base acceleration -------------------------------------------------
#
# Signing (and half of verification) multiplies the *base point* by a
# scalar.  With a 4-bit windowed table — table[w][d] = (16**w * d) * G —
# that multiplication becomes at most 63 point additions instead of
# ~256 doublings + ~128 additions, a ~4x speedup that the whole
# blockchain layer inherits.  The table costs ~1000 point additions
# once, at import.

_WINDOW_BITS = 4
_N_WINDOWS = 64  # 256 bits / 4


def _build_base_table() -> list[list[_Point]]:
    table: list[list[_Point]] = []
    power = _G  # (16 ** w) * G
    for _ in range(_N_WINDOWS):
        row = [_IDENTITY]
        for _ in range(15):
            row.append(_point_add(row[-1], power))
        table.append(row)
        power = _point_add(row[-1], power)  # 16 * (16**w) G
    return table


_BASE_TABLE = _build_base_table()


def _point_mul_base(s: int) -> _Point:
    """Scalar multiplication of the base point via the windowed table."""
    q = _IDENTITY
    window = 0
    while s > 0:
        digit = s & 0xF
        if digit:
            q = _point_add(q, _BASE_TABLE[window][digit])
        s >>= _WINDOW_BITS
        window += 1
    return q


# -- wNAF double/multi-scalar multiplication ---------------------------------
#
# Verification is a *variable-base* problem (``h * A`` for an arbitrary
# public key ``A``), so the fixed-base table above does not apply.  The
# classic answer is Straus/Shamir interleaving: recode every scalar in
# width-w non-adjacent form (wNAF: signed odd digits, at most one nonzero
# digit per w consecutive bits), then run ONE shared doubling ladder and
# add the precomputed odd multiple named by each scalar's digit as it
# goes by.  k scalars cost ~256 shared doublings + k * 256/(w+1)
# additions instead of k * (256 doublings + 128 additions).

_WNAF_VAR_W = 5   # variable-base window: 16 odd multiples per point
_WNAF_RLC_W = 4   # 128-bit batch coefficients: 8 odd multiples per point
_WNAF_BASE_W = 7  # fixed-base window: 64 odd multiples of G, built once


def _wnaf_digits(scalar: int, width: int) -> list[int]:
    """Width-*width* NAF recoding, least-significant digit first.

    Every digit is zero or odd with ``|digit| < 2**(width-1) * 2``; after
    a nonzero digit the next ``width - 1`` digits are zero, which is what
    makes the interleaved ladder cheap.
    """
    digits: list[int] = []
    window = 1 << width
    half = window >> 1
    while scalar > 0:
        if scalar & 1:
            digit = scalar & (window - 1)
            if digit >= half:
                digit -= window
            scalar -= digit
            digits.append(digit)
        else:
            digits.append(0)
        scalar >>= 1
    return digits


def _odd_multiples(p: _Point, count: int) -> tuple[_Point, ...]:
    """``(1*p, 3*p, 5*p, ..., (2*count-1)*p)`` — a wNAF digit table."""
    double = _point_double(p)
    table = [p]
    for _ in range(count - 1):
        table.append(_point_add(table[-1], double))
    return tuple(table)


_G_WNAF = _odd_multiples(_G, 1 << (_WNAF_BASE_W - 1))


def _straus(terms: list[tuple[list[int], tuple[_Point, ...]]]) -> _Point:
    """Interleaved multi-scalar multiplication.

    *terms* pairs a wNAF digit list with a table of odd multiples of its
    point; returns ``sum(scalar_i * point_i)`` with one shared doubling
    ladder.  Negative digits use on-the-fly point negation (free in
    twisted Edwards coordinates).
    """
    q = _IDENTITY
    top = 0
    for digits, _ in terms:
        if len(digits) > top:
            top = len(digits)
    for i in range(top - 1, -1, -1):
        q = _point_double(q)
        for digits, table in terms:
            if i < len(digits):
                digit = digits[i]
                if digit > 0:
                    q = _point_add(q, table[digit >> 1])
                elif digit < 0:
                    q = _point_add(q, _point_neg(table[(-digit) >> 1]))
    return q


def _point_equal(p: _Point, q: _Point) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    if (x1 * z2 - x2 * z1) % _P != 0:
        return False
    return (y1 * z2 - y2 * z1) % _P == 0


def _point_compress(p: _Point) -> bytes:
    x, y, z, _ = p
    zinv = _inv(z)
    x, y = x * zinv % _P, y * zinv % _P
    return int.to_bytes(y | ((x & 1) << 255), 32, "little")


def _point_decompress(data: bytes) -> _Point:
    if len(data) != 32:
        raise CryptoError("point encoding must be 32 bytes")
    encoded = int.from_bytes(data, "little")
    y = encoded & ((1 << 255) - 1)
    sign_bit = encoded >> 255
    x = _recover_x(y, sign_bit)
    return (x, y, 1, x * y % _P)


def _secret_expand(seed: bytes) -> tuple[int, bytes]:
    if len(seed) != SEED_BYTES:
        raise CryptoError(f"seed must be {SEED_BYTES} bytes, got {len(seed)}")
    h = _sha512(seed)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def generate_public_key(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    a, _ = _secret_expand(seed)
    return _point_compress(_point_mul_base(a))


def sign(seed: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature of *message* under *seed*."""
    a, prefix = _secret_expand(seed)
    public = _point_compress(_point_mul_base(a))
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    r_point = _point_compress(_point_mul_base(r))
    h = int.from_bytes(_sha512(r_point + public + message), "little") % _L
    s = (r + h * a) % _L
    return r_point + int.to_bytes(s, 32, "little")


# -- memoized verification ---------------------------------------------------
#
# In the simulator every peer re-verifies the same immutable transaction
# bytes, and verification is a pure function of its inputs, so caching
# changes no outcome — it only stops an n-peer network from paying the
# same scalar multiplications n times.  The cache is keyed on
# sha512(pubkey ‖ msg ‖ sig) rather than the raw argument tuple: an
# lru_cache key retains the full message bytes, so 200k entries of
# kilobyte-scale payloads pinned hundreds of MB.  Digest keys are a
# fixed 64 bytes regardless of payload size.  (The three inputs have
# fixed lengths — checked before lookup — so the concatenation is
# unambiguous.)  Eviction is insertion-order FIFO over a plain dict,
# which is deterministic and O(1) amortized.

_VERIFY_CACHE: dict[bytes, bool] = {}
#: Entry cap; each entry is a 64-byte key + bool, so the cache memory
#: bound no longer scales with payload size.  Tests may shrink this.
VERIFY_CACHE_MAX = 200_000

_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def verify_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters plus current size, for the obs registry
    (see :func:`repro.obs.export.snapshot_crypto_cache`)."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "evictions": _cache_evictions,
        "size": len(_VERIFY_CACHE),
    }


def verify_cache_clear() -> None:
    """Reset the verification cache and its counters (test isolation)."""
    global _cache_hits, _cache_misses, _cache_evictions
    _VERIFY_CACHE.clear()
    _cache_hits = _cache_misses = _cache_evictions = 0


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature; returns ``False`` on any mismatch.

    Malformed inputs (wrong lengths, non-points) return ``False`` rather
    than raising, so callers can treat all bad signatures uniformly.
    Results are memoized on a bounded digest-keyed cache (see above).
    """
    global _cache_hits, _cache_misses
    if len(public_key) != 32 or len(signature) != SIG_BYTES:
        return False
    key = _sha512(public_key + message + signature)
    cached = _VERIFY_CACHE.get(key)
    if cached is not None:
        _cache_hits += 1
        return cached
    _cache_misses += 1
    result = _verify_uncached(public_key, message, signature)
    _cache_store(key, result)
    return result


def _evict_oldest() -> None:
    global _cache_evictions
    oldest = next(iter(_VERIFY_CACHE))
    del _VERIFY_CACHE[oldest]
    _cache_evictions += 1


def _cache_store(key: bytes, result: bool) -> None:
    if len(_VERIFY_CACHE) >= VERIFY_CACHE_MAX:
        _evict_oldest()
    _VERIFY_CACHE[key] = result


# -- decompressed public-key point cache -------------------------------------
#
# Decompressing a public key costs two field exponentiations (~0.65 ms
# here) and the wNAF table of odd multiples of ``-A`` costs another
# ~16 point ops — but the simulator's signer population is tiny and
# every block re-verifies the same few keys.  A bounded FIFO cache of
# (decompressed A, odd-multiples table) makes repeat signers skip both.

_POINT_CACHE: dict[bytes, tuple[_Point, tuple[_Point, ...]]] = {}
#: Entry cap; each entry holds 17 points (~4 KB), so the default bounds
#: the cache near 16 MB.  Tests may shrink this.
POINT_CACHE_MAX = 4096

_point_hits = 0
_point_misses = 0
_point_evictions = 0


def point_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters plus current size, matching the shape
    of :func:`verify_cache_stats`."""
    return {
        "hits": _point_hits,
        "misses": _point_misses,
        "evictions": _point_evictions,
        "size": len(_POINT_CACHE),
    }


def point_cache_clear() -> None:
    """Reset the decompressed-point cache and its counters."""
    global _point_hits, _point_misses, _point_evictions
    _POINT_CACHE.clear()
    _point_hits = _point_misses = _point_evictions = 0


def _point_cache_get(public_key: bytes) -> tuple[_Point, tuple[_Point, ...]] | None:
    """Decompressed ``A`` plus odd multiples of ``-A``, or ``None`` if
    *public_key* is not a valid point encoding (not cached: the verify
    cache already memoizes the ``False`` verdict per signature)."""
    global _point_hits, _point_misses, _point_evictions
    entry = _POINT_CACHE.get(public_key)
    if entry is not None:
        _point_hits += 1
        return entry
    try:
        a_point = _point_decompress(public_key)
    except CryptoError:
        return None
    _point_misses += 1
    table = _odd_multiples(_point_neg(a_point), 1 << (_WNAF_VAR_W - 1))
    if len(_POINT_CACHE) >= POINT_CACHE_MAX:
        oldest = next(iter(_POINT_CACHE))
        del _POINT_CACHE[oldest]
        _point_evictions += 1
    _POINT_CACHE[public_key] = (a_point, table)
    return (a_point, table)


def _verify_uncached(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Single-signature fast path: ``s*G - h*A == R`` in one interleaved
    Straus/Shamir wNAF pass (one shared doubling ladder) instead of two
    independent scalar multiplications."""
    entry = _point_cache_get(public_key)
    if entry is None:
        return False
    try:
        r_point = _point_decompress(signature[:32])
    except CryptoError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    h = int.from_bytes(_sha512(signature[:32] + public_key + message), "little") % _L
    combined = _straus([
        (_wnaf_digits(s, _WNAF_BASE_W), _G_WNAF),
        (_wnaf_digits(h, _WNAF_VAR_W), entry[1]),
    ])
    return _point_equal(combined, r_point)


def _verify_reference(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """The seed-era verification path (two independent scalar mults,
    naive double-and-add for ``h*A``).  Kept as the oracle for property
    tests and as the baseline the micro-benchmark measures speedups
    against; not used by :func:`verify`."""
    if len(public_key) != 32 or len(signature) != SIG_BYTES:
        return False
    try:
        a_point = _point_decompress(public_key)
        r_point = _point_decompress(signature[:32])
    except CryptoError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    h = int.from_bytes(_sha512(signature[:32] + public_key + message), "little") % _L
    left = _point_mul_base(s)
    right = _point_add(r_point, _point_mul(h, a_point))
    return _point_equal(left, right)


# -- batch verification ------------------------------------------------------
#
# Bernstein-style random-linear-combination batching: instead of n
# separate ``s_i*G - h_i*A_i - R_i == 0`` checks, verify
#
#     sum_i z_i * (s_i*G - h_i*A_i - R_i) == identity
#
# as ONE multi-scalar multiplication — all n checks share a single
# doubling ladder, so the per-signature cost collapses to the wNAF
# additions.  Correctness notes, because the details are sharp:
#
# - The coefficients ``z_i`` are derived deterministically (sha512 over
#   the whole batch's digest keys — no ``random``, so replays are
#   reproducible) and forced to be ODD 128-bit values.  Odd z is
#   invertible mod 8, so a single signature whose defect is a
#   small-order (torsion) point can never be masked: ``z*T`` has the
#   same order as ``T``.
# - The scalar on G may be reduced mod L (G generates the prime-order
#   subgroup), but scalars on arbitrary points A_i / R_i may only be
#   reduced mod 8L (the full group exponent): adversarial keys and R
#   values need not lie in the prime-order subgroup, and reducing mod L
#   would silently change the check for them.  For the same reason the
#   combination subtracts by negating the *points* (tables hold odd
#   multiples of -A and -R), never by negating scalars mod L.
# - If the combined check fails, divide-and-conquer bisection re-checks
#   each half, recursing down to single signatures — verdicts therefore
#   always agree with :func:`verify`.  (A false *accept* would need
#   either a ~2^-128 scalar collision or multiple adversarial
#   signatures whose torsion defects cancel each other; no false
#   rejects are possible since valid signatures contribute exactly the
#   identity.)

_8L = 8 * _L

_batch_calls = 0
_batch_items = 0
_batch_bisections = 0


def batch_stats() -> dict[str, int]:
    """Counters for the obs registry: batch calls, total items, and how
    many times the combined check failed and had to bisect."""
    return {
        "calls": _batch_calls,
        "items": _batch_items,
        "bisections": _batch_bisections,
    }


def batch_stats_clear() -> None:
    """Reset the batch-verification counters."""
    global _batch_calls, _batch_items, _batch_bisections
    _batch_calls = _batch_items = _batch_bisections = 0


# One pending (not-cached, well-formed) signature: the verify-cache
# digest key, the scalars s and h, the wNAF tables for -A and -R, and
# the decompressed R for the single-signature base case.
_BatchEntry = tuple[bytes, int, int, tuple[_Point, ...], tuple[_Point, ...], _Point]


def _batch_coefficients(entries: list[_BatchEntry]) -> list[int]:
    seed = _sha512(b"repro.ed25519.batch-v1" + b"".join(e[0] for e in entries))
    zs: list[int] = []
    for i in range(len(entries)):
        z = int.from_bytes(
            _sha512(seed + i.to_bytes(4, "little") + entries[i][0]), "little"
        )
        zs.append((z & ((1 << 128) - 1)) | 1)
    return zs


def _combined_check(entries: list[_BatchEntry]) -> bool:
    g_scalar = 0
    terms: list[tuple[list[int], tuple[_Point, ...]]] = []
    for (_, s, h, neg_a_table, neg_r_table, _), z in zip(
        entries, _batch_coefficients(entries)
    ):
        g_scalar += z * s
        terms.append((_wnaf_digits(z * h % _8L, _WNAF_VAR_W), neg_a_table))
        terms.append((_wnaf_digits(z, _WNAF_RLC_W), neg_r_table))
    terms.insert(0, (_wnaf_digits(g_scalar % _L, _WNAF_BASE_W), _G_WNAF))
    return _point_equal(_straus(terms), _IDENTITY)


def _batch_verify_exact(entries: list[_BatchEntry]) -> list[bool]:
    global _batch_bisections
    if len(entries) == 1:
        _, s, h, neg_a_table, _, r_point = entries[0]
        combined = _straus([
            (_wnaf_digits(s, _WNAF_BASE_W), _G_WNAF),
            (_wnaf_digits(h, _WNAF_VAR_W), neg_a_table),
        ])
        return [_point_equal(combined, r_point)]
    if _combined_check(entries):
        return [True] * len(entries)
    _batch_bisections += 1
    mid = len(entries) // 2
    return _batch_verify_exact(entries[:mid]) + _batch_verify_exact(entries[mid:])


def verify_batch(items: list[tuple[bytes, bytes, bytes]]) -> list[bool]:
    """Verify many ``(public_key, message, signature)`` triples at once.

    Returns one bool per item, in order, with verdicts identical to
    calling :func:`verify` on each — but the happy path costs one
    multi-scalar multiplication for the whole batch instead of n
    double-scalar ones.  Consults and populates the same bounded
    digest-keyed cache as :func:`verify`, so a batch-verified block's
    signatures are cache hits for every later per-transaction check.
    """
    global _cache_hits, _cache_misses, _batch_calls, _batch_items
    _batch_calls += 1
    _batch_items += len(items)
    results: list[bool] = [False] * len(items)
    pending: list[tuple[int, _BatchEntry]] = []
    for pos, (public_key, message, signature) in enumerate(items):
        if len(public_key) != 32 or len(signature) != SIG_BYTES:
            continue  # malformed lengths bypass the cache, as in verify()
        key = _sha512(public_key + message + signature)
        cached = _VERIFY_CACHE.get(key)
        if cached is not None:
            _cache_hits += 1
            results[pos] = cached
            continue
        _cache_misses += 1
        entry = _point_cache_get(public_key)
        if entry is None:
            _cache_store(key, False)
            continue
        try:
            r_point = _point_decompress(signature[:32])
        except CryptoError:
            _cache_store(key, False)
            continue
        s = int.from_bytes(signature[32:], "little")
        if s >= _L:
            _cache_store(key, False)
            continue
        h = int.from_bytes(
            _sha512(signature[:32] + public_key + message), "little"
        ) % _L
        neg_r_table = _odd_multiples(_point_neg(r_point), 1 << (_WNAF_RLC_W - 1))
        pending.append((pos, (key, s, h, entry[1], neg_r_table, r_point)))
    if pending:
        verdicts = _batch_verify_exact([entry for _, entry in pending])
        for (pos, entry), verdict in zip(pending, verdicts):
            _cache_store(entry[0], verdict)
            results[pos] = verdict
    return results
