"""Randomized fault schedules: consensus safety must survive all of them.

Each case builds a network, injects a random mix of crashes, recoveries,
partitions, heals, and message drops while a client submits
transactions, then asserts the two invariants that define safety:

- no two live peers ever disagree on a committed block (prefix check),
- equal-height peers hold bit-identical world state (app-hash check).

Liveness under arbitrary faults is *not* asserted (a partitioned
minority may stall — that is correct); only that whatever commits is
consistent.
"""

import random

import pytest

from repro.chain import BlockchainNetwork, InvariantAuditor
from repro.simnet import FailureSchedule, UniformLatency


def _run_chaos(seed: int, consensus: str) -> tuple[BlockchainNetwork, InvariantAuditor]:
    from tests.conftest import CounterContract

    rng = random.Random(seed)
    network = BlockchainNetwork(
        n_peers=4, consensus=consensus, block_interval=0.5,
        latency=UniformLatency(0.01, 0.08), seed=seed,
        view_timeout=4.0,
        drop_probability=rng.choice([0.0, 0.02]),
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)  # strict: any violation raises
    schedule = FailureSchedule(network.sim, network.net)
    peer_ids = [p.node_id for p in network.peers]
    # Random fault plan: at most one peer down at a time (stay within f=1).
    victim = rng.choice(peer_ids)
    crash_at = rng.uniform(2.0, 10.0)
    schedule.crash_at(crash_at, victim)
    schedule.recover_at(crash_at + rng.uniform(3.0, 8.0), victim)
    if rng.random() < 0.5:
        isolated = rng.choice(peer_ids)
        partition_at = rng.uniform(5.0, 15.0)
        schedule.partition_at(partition_at, {p for p in peer_ids if p != isolated})
        schedule.heal_at(partition_at + rng.uniform(2.0, 6.0))
    client = network.client()
    for index in range(15):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        entry = rng.choice(network.peers)
        if entry.submit(tx):  # may be crashed/partitioned — that's the point
            auditor.track_tx(tx.tx_id)
        network.run_for(rng.uniform(0.5, 2.0))
    network.run_for(30.0)
    return network, auditor


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("consensus", ["poa", "pbft"])
def test_safety_under_random_faults(seed, consensus):
    network, auditor = _run_chaos(1000 + seed, consensus)
    network.assert_convergence()  # prefix + state-digest consistency
    assert not auditor.final_check()  # agreement/certificates/durability too
    for peer in network.peers:
        assert peer.ledger.verify_chain()


def test_pbft_byzantine_plus_crash_is_beyond_f_but_safe():
    """n=4 tolerates f=1; a byzantine primary *plus* a crashed replica is
    beyond the bound, so liveness may be lost — but safety must hold."""
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5, seed=77,
        byzantine_peers={"peer-0"}, view_timeout=3.0,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)
    network.peers[3].crashed = True
    client = network.client()
    for _ in range(5):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.peers[1].submit(tx)
        network.run_for(2.0)
    network.run_for(30.0)
    network.assert_convergence()  # no fork among live honest peers
    auditor.check_agreement()
    auditor.check_certificates()
    assert not auditor.violations
