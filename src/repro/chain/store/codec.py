"""Canonical JSON codec for durable block-log records and snapshots.

One record encodes everything ``Peer.restart`` needs to rebuild the
block's effect without re-running consensus: the block itself (header +
full transactions), the per-tx validity verdicts the commit path
produced, the per-tx error strings (so rebuilt failure receipts are
byte-equal to the originals, not generic markers), and the consensus
proof (PBFT commit certificate + vote signatures) so recovery can
re-verify the tail *before* trusting it.

Encoding is compact sorted-key JSON — deterministic bytes, so the CRC in
the log framing (see :mod:`repro.chain.store.log`) pins the exact
content, and two peers logging the same block produce identical records.
``default=str`` matches the transaction-signing payload convention.
"""

from __future__ import annotations

import json
from typing import Any

from repro.chain.block import Block
from repro.chain.transaction import Endorsement, Transaction, TxReceipt

__all__ = [
    "encode_record",
    "decode_record",
    "encode_obj",
    "decode_obj",
    "block_to_obj",
    "block_from_obj",
    "receipt_to_obj",
    "receipt_from_obj",
]


def encode_obj(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str).encode("utf-8")


def decode_obj(data: bytes) -> Any:
    return json.loads(data.decode("utf-8"))


def _tx_to_obj(tx: Transaction) -> dict[str, Any]:
    return {
        "sender": tx.sender,
        "public_key_hex": tx.public_key_hex,
        "contract": tx.contract,
        "method": tx.method,
        "args": tx.args,
        "nonce": tx.nonce,
        "timestamp": tx.timestamp,
        "signature_hex": tx.signature_hex,
        "tx_id": tx.tx_id,
        "read_set": tx.read_set,
        "write_set": tx.write_set,
        "endorsements": [
            {
                "peer_id": e.peer_id,
                "public_key_hex": e.public_key_hex,
                "digest": e.digest,
                "signature_hex": e.signature_hex,
            }
            for e in tx.endorsements
        ],
        "events": list(tx.events),
        "return_value": tx.return_value,
    }


def _tx_from_obj(obj: dict[str, Any]) -> Transaction:
    return Transaction(
        sender=obj["sender"],
        public_key_hex=obj["public_key_hex"],
        contract=obj["contract"],
        method=obj["method"],
        args=obj["args"],
        nonce=obj["nonce"],
        timestamp=obj["timestamp"],
        signature_hex=obj["signature_hex"],
        tx_id=obj["tx_id"],
        read_set=dict(obj["read_set"]),
        write_set=dict(obj["write_set"]),
        endorsements=tuple(Endorsement(**e) for e in obj["endorsements"]),
        events=tuple(obj["events"]),
        return_value=obj["return_value"],
    )


def block_to_obj(block: Block) -> dict[str, Any]:
    return {
        "height": block.height,
        "prev_hash": block.prev_hash,
        "merkle_root": block.merkle_root,
        "timestamp": block.timestamp,
        "proposer": block.proposer,
        "block_hash": block.block_hash,
        "transactions": [_tx_to_obj(tx) for tx in block.transactions],
    }


def block_from_obj(obj: dict[str, Any]) -> Block:
    return Block(
        height=obj["height"],
        prev_hash=obj["prev_hash"],
        merkle_root=obj["merkle_root"],
        timestamp=obj["timestamp"],
        proposer=obj["proposer"],
        transactions=tuple(_tx_from_obj(t) for t in obj["transactions"]),
        block_hash=obj["block_hash"],
    )


def receipt_to_obj(receipt: TxReceipt) -> dict[str, Any]:
    return {
        "tx_id": receipt.tx_id,
        "block_height": receipt.block_height,
        "success": receipt.success,
        "return_value": receipt.return_value,
        "events": list(receipt.events),
        "error": receipt.error,
        "gas_used": receipt.gas_used,
    }


def receipt_from_obj(obj: dict[str, Any]) -> TxReceipt:
    return TxReceipt(
        tx_id=obj["tx_id"],
        block_height=obj["block_height"],
        success=obj["success"],
        return_value=obj["return_value"],
        events=tuple(obj["events"]),
        error=obj["error"],
        gas_used=obj.get("gas_used", 0),
    )


def encode_record(
    block: Block,
    validity: list[bool],
    errors: list[str | None] | None = None,
    proof: Any = None,
) -> bytes:
    """One log-record payload: block + commit verdicts + consensus proof."""
    return encode_obj(
        {
            "block": block_to_obj(block),
            "validity": list(validity),
            "errors": list(errors) if errors is not None else [None] * len(validity),
            "proof": proof,
        }
    )


def decode_record(payload: bytes) -> tuple[Block, list[bool], list[str | None], Any]:
    obj = decode_obj(payload)
    return (
        block_from_obj(obj["block"]),
        [bool(v) for v in obj["validity"]],
        list(obj["errors"]),
        obj["proof"],
    )
