"""Containment reports, messenger selection, correction; predictors."""

import random

import numpy as np
import pytest

from repro.core import (
    CorrectionCampaign,
    FakeRiskPredictor,
    ViralityPredictor,
    community_exposure,
    containment_report,
    select_messengers,
    author_history_features,
    early_cascade_features,
)
from repro.corpus import CorpusGenerator
from repro.errors import MLError
from repro.social import (
    AgentKind,
    CascadeRunner,
    bind_agents,
    build_social_world,
    make_population,
    polarized_follow_graph,
)


def _cascade(seed=33, n_agents=300):
    graph, agents, corpus = build_social_world(n_agents=n_agents, seed=seed)
    hub = max(graph.nodes(), key=lambda n: graph.out_degree(n))
    article = corpus.insertion_fake(corpus.factual(), "troll", 0.0)
    result = CascadeRunner(graph, corpus).run([(hub, article)], n_rounds=10)
    return graph, agents, corpus, article, result


def test_containment_report_shapes():
    _, _, _, article, result = _cascade()
    report = containment_report(result, article.article_id, flag_round=2)
    assert report.final_reach == result.reach(article.article_id)
    assert report.reach_at_flag <= report.final_reach
    assert 0.0 <= report.containment <= 1.0


def test_containment_on_stopped_cascade():
    _, _, _, article, result = _cascade()
    # Flag at the very end: no post-flag growth -> containment 1 (or no
    # pre-growth edge case 0).
    last = len(result.reach_curve(article.article_id)) - 1
    report = containment_report(result, article.article_id, flag_round=last)
    assert report.growth_after == 0.0


def test_community_exposure_partition():
    rng = random.Random(0)
    graph = polarized_follow_graph(200, seed=3)
    agents = make_population(200, rng)
    bind_agents(graph, agents)
    corpus = CorpusGenerator(seed=3)
    hub = max(graph.nodes(), key=lambda n: graph.out_degree(n))
    article = corpus.insertion_fake(corpus.factual(), "troll", 0.0)
    result = CascadeRunner(graph, corpus).run([(hub, article)], n_rounds=8)
    agents_by_id = {a.agent_id: a for a in agents}
    exposure = community_exposure(result, article.article_id, agents_by_id)
    assert sum(exposure.values()) == result.reach(article.article_id)
    assert set(exposure) <= {0, 1}


def test_messenger_selection_prefers_ingroup_journalists():
    rng = random.Random(1)
    agents = make_population(100, rng, journalist_fraction=0.1)
    for index, agent in enumerate(agents):
        agent.community = index % 2
    messengers = select_messengers(agents, target_community=1, k=3)
    assert len(messengers) == 3
    assert all(m.community == 1 for m in messengers)
    assert all(not m.malicious for m in messengers)
    journalists_available = [
        a for a in agents if a.community == 1 and a.kind is AgentKind.JOURNALIST and not a.malicious
    ]
    if journalists_available:
        assert messengers[0].kind is AgentKind.JOURNALIST


def test_correction_ingroup_beats_outgroup():
    rng_a, rng_b = random.Random(2), random.Random(2)
    agents = make_population(400, random.Random(3))
    for agent in agents:
        agent.community = 0
    campaign = CorrectionCampaign()
    in_group = [a for a in agents if not a.malicious][:2]
    out_group = make_population(2, random.Random(4))
    for messenger in out_group:
        messenger.community = 1
    accept_in = campaign.run(agents, in_group, rng_a)
    accept_out = campaign.run(agents, out_group, rng_b)
    assert accept_in > accept_out


def test_correction_empty_exposed():
    assert CorrectionCampaign().run([], [], random.Random(0)) == 0.0


# -- prediction ------------------------------------------------------------------


def test_author_history_features_from_ledger(platform):
    platform.register_participant("acme", role="publisher")
    platform.create_distribution_platform("acme", "acme-news")
    platform.create_news_room("acme", "acme-news", "desk", "politics")
    gen = CorpusGenerator(seed=40)
    seed_article = gen.factual(topic="politics")
    platform.seed_fact("f-1", seed_article.text, "record", "politics")
    platform.publish_article("acme", "acme-news", "desk", "a-1", seed_article.text, "politics")
    features = author_history_features(platform.graph, platform.address_of("acme"))
    assert features[0] == 1.0  # volume
    assert features[1] == pytest.approx(0.0, abs=0.05)  # mean degree
    # Unknown author gets priors.
    assert author_history_features(platform.graph, "acct:" + "f" * 40) == [0.0, 0.5, 0.5]


def test_fake_risk_predictor_separates(platform):
    gen = CorpusGenerator(seed=41)
    corpus = gen.labeled_corpus(n_factual=120, n_fake=120)
    graph = platform.graph  # empty history: content features carry it
    predictor = FakeRiskPredictor().fit(corpus.articles, graph)
    test_corpus = CorpusGenerator(seed=42).labeled_corpus(n_factual=40, n_fake=40)
    risks = predictor.risk(test_corpus.articles, graph)
    labels = np.array([int(a.label_fake) for a in test_corpus.articles])
    assert risks[labels == 1].mean() > risks[labels == 0].mean() + 0.2


def test_fake_risk_unfitted_raises(platform):
    with pytest.raises(MLError):
        FakeRiskPredictor().risk([], platform.graph)


def test_early_cascade_features_shape():
    graph, agents, corpus, article, result = _cascade(seed=50)
    agents_by_id = {a.agent_id: a for a in agents}
    features = early_cascade_features(result, article.article_id, agents_by_id, upto_round=3)
    assert len(features) == 5
    assert features[0] >= 0  # shares
    assert 0 <= features[2] <= 1  # bot fraction


def test_virality_predictor_end_to_end():
    rows, reaches = [], []
    for trial in range(24):
        graph, agents, corpus, article, result = _cascade(seed=60 + trial, n_agents=250)
        agents_by_id = {a.agent_id: a for a in agents}
        rows.append(early_cascade_features(result, article.article_id, agents_by_id, upto_round=3))
        reaches.append(result.reach(article.article_id))
    threshold = int(np.median(reaches))
    predictor = ViralityPredictor(viral_threshold=max(2, threshold)).fit(rows, reaches)
    probabilities = predictor.predict_viral(rows)
    labels = np.array([int(r >= max(2, threshold)) for r in reaches])
    # Early telemetry should separate viral from fizzled in-sample.
    assert probabilities[labels == 1].mean() > probabilities[labels == 0].mean()


def test_virality_predictor_needs_both_classes():
    with pytest.raises(MLError):
        ViralityPredictor(viral_threshold=1).fit([[1.0] * 5, [2.0] * 5], [5, 6])
