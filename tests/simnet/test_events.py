"""Discrete-event simulator semantics."""

import pytest

from repro.errors import SimulationError
from repro.simnet import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, lambda label=label: fired.append(label))
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.5]
    assert sim.now == 2.5


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(10.0, lambda: fired.append("late"))
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_cancelled_event_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_max_events_bounds_execution():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    sim.run(max_events=25)
    assert sim.events_processed == 25


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: sim.schedule_at(7.5, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [7.5]


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_pending_counts_live_events():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    event.cancel()
    assert sim.pending == 1


def test_pending_stays_consistent_cancelling_from_large_queue():
    """`pending` is maintained incrementally, so cancelling events deep
    in a large queue must update the count without rescanning it (the
    seed implementation walked the whole heap per call)."""
    sim = Simulator()
    events = [sim.schedule(float(i % 97) + 1.0, lambda: None) for i in range(10_000)]
    assert sim.pending == 10_000
    for event in events[::3]:
        event.cancel()
    cancelled = len(events[::3])
    assert sim.pending == 10_000 - cancelled
    # Double-cancel must not double-decrement.
    events[0].cancel()
    assert sim.pending == 10_000 - cancelled
    # Draining fires exactly the live events and ends at zero pending.
    sim.run()
    assert sim.events_processed == 10_000 - cancelled
    assert sim.pending == 0


def test_pending_tracks_pops_and_mid_run_schedules():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth:
            sim.schedule(1.0, chain, args=(depth - 1,))

    sim.schedule(1.0, chain, args=(3,))
    assert sim.pending == 1
    sim.run()
    assert fired == [3, 2, 1, 0]
    assert sim.pending == 0


def test_schedule_args_avoid_closures():
    sim = Simulator()
    got = []
    sim.schedule(1.0, got.append, args=("payload",))
    sim.schedule_at(2.0, lambda a, b: got.append((a, b)), args=(1, 2))
    sim.run()
    assert got == ["payload", (1, 2)]
