"""Bot-ring detection from the propagation ledger (§II).

Grinberg et al. [36], which the paper builds its threat model on: fake
news spread "is driven substantially by bots and cyborgs" and "the
concentration of fake news sources offers both a challenge for
detection algorithms and a promise for more targeted interventions".

The ledger makes the concentration *visible*: coordinated amplification
rings re-share each other's content reciprocally, which organic
propagation (approximately a tree) almost never does.  Detection here
is structural + behavioural:

- :func:`account_activity_features` — per-account behavioural signals
  (volume, reciprocity, source concentration, mutation rate),
- :func:`detect_bot_rings` — connected components of the *mutual-share*
  graph (pairs that amplified each other), the ring signature,
- :func:`bot_scores` — a [0, 1] heuristic fusing both.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import networkx as nx

from repro.social.cascade import ShareEvent

__all__ = ["AccountActivity", "account_activity_features", "detect_bot_rings", "bot_scores"]


@dataclass(frozen=True)
class AccountActivity:
    """Behavioural summary of one account's sharing."""

    agent_id: str
    shares: int
    distinct_sources: int
    reciprocity: float  # fraction of its source ties that are mutual
    source_concentration: float  # Herfindahl index over sources
    mutation_rate: float  # fraction of shares that modified content

    @property
    def is_suspicious(self) -> bool:
        return self.reciprocity > 0.3 and self.shares >= 3


def account_activity_features(events: list[ShareEvent]) -> dict[str, AccountActivity]:
    """Per-account behavioural features from share events."""
    shares_by: dict[str, list[ShareEvent]] = defaultdict(list)
    pair_counts: Counter[tuple[str, str]] = Counter()
    for event in events:
        shares_by[event.agent_id].append(event)
        pair_counts[(event.source_agent_id, event.agent_id)] += 1
    features = {}
    for agent_id, agent_events in shares_by.items():
        sources = Counter(e.source_agent_id for e in agent_events)
        total = sum(sources.values())
        concentration = sum((count / total) ** 2 for count in sources.values())
        mutual = sum(
            1 for source in sources if pair_counts.get((agent_id, source), 0) > 0
        )
        mutations = sum(1 for e in agent_events if e.op not in ("relay",))
        features[agent_id] = AccountActivity(
            agent_id=agent_id,
            shares=len(agent_events),
            distinct_sources=len(sources),
            reciprocity=mutual / len(sources) if sources else 0.0,
            source_concentration=concentration,
            mutation_rate=mutations / len(agent_events),
        )
    return features


def detect_bot_rings(
    events: list[ShareEvent],
    min_ring_size: int = 3,
    min_mutual_weight: int = 2,
    min_partners: int = 2,
) -> list[set[str]]:
    """Find coordinated amplification rings.

    A single mutual share can happen organically (mutual follows exist,
    and two accounts may each once re-share the other's *different*
    stories).  Coordination looks different: pairs that re-share each
    other **repeatedly** (direction weights >= ``min_mutual_weight``),
    and accounts embedded in a **dense** mutual neighbourhood (the
    k-core with ``min_partners`` mutual partners each).  Rings are the
    connected components of that filtered graph with at least
    ``min_ring_size`` members.
    """
    forward: Counter[tuple[str, str]] = Counter()
    for event in events:
        if event.source_agent_id != event.agent_id:
            forward[(event.source_agent_id, event.agent_id)] += 1
    mutual = nx.Graph()
    for (a, b), weight in forward.items():
        reverse_weight = forward.get((b, a), 0)
        if weight >= min_mutual_weight and reverse_weight >= min_mutual_weight:
            mutual.add_edge(a, b, weight=min(weight, reverse_weight))
    dense = nx.k_core(mutual, k=min_partners) if mutual.number_of_nodes() else mutual
    rings = [
        set(component)
        for component in nx.connected_components(dense)
        if len(component) >= min_ring_size
    ]
    rings.sort(key=lambda ring: (-len(ring), min(ring)))
    return rings


def bot_scores(events: list[ShareEvent], min_ring_size: int = 3) -> dict[str, float]:
    """[0, 1] bot-likelihood per account: ring membership + behaviour.

    Ring membership is the dominant signal (0.6); the rest comes from
    behavioural excess (volume, reciprocity, mutation habit) so lone
    aggressive bots still score above organic users.
    """
    features = account_activity_features(events)
    ring_members: set[str] = set()
    for ring in detect_bot_rings(events, min_ring_size=min_ring_size):
        ring_members |= ring
    if not features:
        return {}
    max_shares = max(activity.shares for activity in features.values())
    scores = {}
    for agent_id, activity in features.items():
        behavioural = (
            0.15 * (activity.shares / max_shares)
            + 0.15 * activity.reciprocity
            + 0.10 * activity.mutation_rate
        )
        scores[agent_id] = min(1.0, (0.6 if agent_id in ring_members else 0.0) + behavioural)
    return scores
