"""Pipelined PBFT — sustained ordering throughput vs pipeline depth.

The E9 scalability sweep measures consensus cost across network sizes;
this benchmark holds the network fixed (4 validators, the paper's
minimum byzantine quorum) and sweeps the *pipeline depth*: how many PBFT
sequence numbers the primary keeps in flight at once.  Depth 1 is the
seed's one-block-per-round-trip engine; deeper windows overlap the
pre-prepare/prepare/commit round trips of consecutive heights, so
sustained tx/s should scale with depth until the batch supply (mempool)
or the commit path becomes the bottleneck — while per-tx commit latency
stays flat (pipelining adds concurrency, not queueing).

Safety rides along: the same seeded chaos/invariant audit that gates the
engine in tier-1 (crashes, partitions, latency spikes, rogue flooders;
agreement/certificate/durability/convergence/catch-up/pipeline
invariants) is re-run at depth 4, and any violation fails the benchmark.

REPRO_BENCH_SMOKE=1 shrinks the workload and the chaos seed sweep to a
CI-sized pass (depths 1 and 4 only, 2 chaos seeds) so every PR exercises
depth > 1; the full run sweeps depths 1/2/4/8 and chaos seeds 0-9.
"""

from __future__ import annotations

import os

from benchmarks.conftest import emit
from repro.chain import BlockchainNetwork, Contract, contract_method
from repro.simnet import FixedLatency

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

N_TXS = 80 if _SMOKE else 240
DEPTHS = (1, 4) if _SMOKE else (1, 2, 4, 8)
CHAOS_SEEDS = range(2) if _SMOKE else range(10)
MAX_BLOCK_TXS = 10


class KVContract(Contract):
    """Disjoint-key writes so MVCC conflicts don't confound throughput."""

    name = "kv"

    @contract_method
    def put(self, ctx, key: str, value: str):
        ctx.put(key, value)
        return True


def _run_depth(depth: int) -> dict:
    """One sustained-throughput run at *depth*.

    The whole workload is admitted up front (mempool saturated), so the
    primary always has batches available and the measured rate is the
    ordering pipeline's, not the submission loop's.
    """
    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.05,
        latency=FixedLatency(0.05), max_block_txs=MAX_BLOCK_TXS,
        seed=77, view_timeout=5.0, pipeline_depth=depth,
    )
    network.install_contract(KVContract)
    client = network.client()
    tx_ids = [
        client.invoke("kv", "put", {"key": f"k-{index}", "value": "v"}, wait=False)
        for index in range(N_TXS)
    ]
    for tx_id in tx_ids:
        network.wait_for_receipt(tx_id, timeout=300.0)
    network.run_for(5.0)
    network.stop()
    network.assert_convergence()
    reference = max(network.peers, key=lambda p: p.ledger.height)
    assert all(
        tx_id in reference.receipts and reference.receipts[tx_id].success
        for tx_id in tx_ids
    ), "workload did not fully commit"
    commit_times = reference.metrics.commit_times
    elapsed = max(commit_times)
    latency = network.obs.histogram("phase.commit_latency", peer=reference.node_id)
    return {
        "depth": depth,
        "throughput_tx_per_s": N_TXS / elapsed,
        "commit_latency_p50_s": latency.percentile(0.50),
        "commit_latency_p95_s": latency.percentile(0.95),
        "blocks": reference.ledger.height,
        "sim_time_to_last_commit_s": elapsed,
    }


def _chaos_at_depth_4() -> dict:
    """The engine-gating chaos audit, re-run with the pipeline open."""
    from tests.chain.test_chaos_audit import run_chaos_audited

    violations = 0
    blocks = 0
    for seed in CHAOS_SEEDS:
        _, auditor, _ = run_chaos_audited(seed, pipeline_depth=4)
        violations += len(auditor.violations)
        blocks += auditor.blocks_audited
    return {
        "seeds": len(list(CHAOS_SEEDS)),
        "violations": violations,
        "blocks_audited": blocks,
    }


def _sweep() -> dict:
    return {
        "depths": [_run_depth(depth) for depth in DEPTHS],
        "chaos": _chaos_at_depth_4(),
    }


def test_pipeline_depth_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    by_depth = {entry["depth"]: entry for entry in results["depths"]}
    base = by_depth[DEPTHS[0]]["throughput_tx_per_s"]
    rows = [f"{'depth':>5} {'tx/s(sim)':>10} {'speedup':>8} {'p50(s)':>7} "
            f"{'p95(s)':>7} {'blocks':>7}"]
    for entry in results["depths"]:
        rows.append(
            f"{entry['depth']:>5} {entry['throughput_tx_per_s']:>10.1f} "
            f"{entry['throughput_tx_per_s'] / base:>7.2f}x "
            f"{entry['commit_latency_p50_s']:>7.3f} "
            f"{entry['commit_latency_p95_s']:>7.3f} {entry['blocks']:>7}"
        )
    chaos = results["chaos"]
    rows.append(
        f"chaos audit @ depth 4: {chaos['seeds']} seeds, "
        f"{chaos['blocks_audited']} blocks audited, "
        f"{chaos['violations']} violations"
    )
    if _SMOKE:
        rows.append("(smoke mode: depths 1/4 only, 2 chaos seeds — full run "
                    "sweeps 1/2/4/8 and seeds 0-9)")
    metrics = {f"depth_{entry['depth']}": entry for entry in results["depths"]}
    metrics["chaos_depth4"] = chaos
    emit(benchmark, "Pipelined PBFT — throughput vs pipeline depth (4 validators)",
         rows, metrics=metrics)
    # The tentpole's gate: depth 4 must sustain >= 1.8x the depth-1 rate.
    assert by_depth[4]["throughput_tx_per_s"] >= 1.8 * base, (
        "pipelining failed to deliver sustained throughput"
    )
    # And it must not cost tail latency: p95 stays within 2x of depth 1.
    assert by_depth[4]["commit_latency_p95_s"] <= 2.0 * max(
        by_depth[DEPTHS[0]]["commit_latency_p95_s"], 1e-9
    )
    # Safety is non-negotiable at any depth.
    assert chaos["violations"] == 0
