"""E2 — Fig. 2: the five-role ecosystem economy.

Workload: 300 agents (consumers/creators/checkers/developers/publishers,
20% dishonest), 30 settlement rounds.  The figure's claim quantified:
honest participation out-earns dishonest participation in every role
that has a strategy choice, so the incentive design supports the
trusting-news goal.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core import EcosystemSimulator

N_AGENTS = 300
N_ROUNDS = 30


def _run():
    simulator = EcosystemSimulator.generate(
        n_agents=N_AGENTS, seed=42, dishonest_fraction=0.2
    )
    simulator.run(n_rounds=N_ROUNDS)
    return simulator


def test_e2_ecosystem_economy(benchmark):
    simulator = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [f"{'role':<12} {'honest mean':>12} {'dishonest mean':>15}"]
    for role in ("creator", "checker", "consumer", "developer", "publisher"):
        earnings = simulator.earnings_by(role=role)
        rows.append(f"{role:<12} {earnings['honest']:>12.2f} {earnings['dishonest']:>15.2f}")
    overall = simulator.earnings_by()
    rows.append(f"{'ALL':<12} {overall['honest']:>12.2f} {overall['dishonest']:>15.2f}")
    total_fees = sum(r["fees"] for r in simulator.round_log)
    total_penalties = sum(r["penalties"] for r in simulator.round_log)
    rows.append(f"flows over {N_ROUNDS} rounds: fees={total_fees:.0f} penalties={total_penalties:.0f}")
    emit(benchmark, "E2 Fig.2 — ecosystem earnings by role and honesty", rows)
    creators = simulator.earnings_by(role="creator")
    checkers = simulator.earnings_by(role="checker")
    assert creators["honest"] > creators["dishonest"]
    assert checkers["honest"] > checkers["dishonest"]
