"""Property: the vectorized cascade engine IS the scalar engine.

Hypothesis drives the world space — graph family (scale-free,
small-world, polarized SBM), population seed, botnet presence,
intervention predicates — while both engines consume one keyed draw
source.  Keyed draws make every share/verify/mutate decision a pure
function of (article, agent, purpose), so the two engines must agree
*byte for byte*: same events in the same order, same mutated articles,
same exposure sets, same round curves.  Any divergence is a real
semantics bug in one engine, never an artifact of draw-consumption
order.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus import CorpusGenerator
from repro.social import (
    CascadeRunner,
    FastCascadeRunner,
    KeyedDraws,
    bind_agents,
    interconnect,
    make_botnet,
    make_population,
    polarized_follow_graph,
    scale_free_follow_graph,
    small_world_follow_graph,
)

_FAMILIES = ("scale_free", "small_world", "polarized")
_INTERVENTIONS = ("none", "flagged", "promoted", "both")


def _build_graph(family: str, n_agents: int, seed: int):
    if family == "scale_free":
        return scale_free_follow_graph(n_agents, seed=seed)
    if family == "small_world":
        return small_world_follow_graph(n_agents, k_neighbors=6, rewire=0.2, seed=seed)
    return polarized_follow_graph(n_agents, p_within=0.06, p_across=0.004, seed=seed)


def _predicates(intervention: str):
    # Pure functions of the article id: both engines may evaluate them
    # any number of times in any order and must see the same answer.
    flagged = (lambda aid: aid.endswith(("0", "3", "6"))) \
        if intervention in ("flagged", "both") else None
    promoted = (lambda aid: aid.endswith(("1", "7"))) \
        if intervention in ("promoted", "both") else None
    return flagged, promoted


@given(
    family=st.sampled_from(_FAMILIES),
    intervention=st.sampled_from(_INTERVENTIONS),
    n_agents=st.integers(min_value=40, max_value=140),
    world_seed=st.integers(min_value=0, max_value=10**6),
    draws_seed=st.integers(min_value=0, max_value=10**6),
    with_ring=st.booleans(),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_scalar_and_vectorized_engines_agree_byte_for_byte(
    family, intervention, n_agents, world_seed, draws_seed, with_ring
):
    rng = random.Random(world_seed)
    graph = _build_graph(family, n_agents, world_seed)
    agents = make_population(n_agents, rng, bot_fraction=0.1)
    bind_agents(graph, agents)
    if with_ring:
        recruits = make_botnet(agents, size=min(6, n_agents // 8), rng=rng, ring_id="farm")
        interconnect(graph, recruits)
    flagged, promoted = _predicates(intervention)
    draws = KeyedDraws(seed=draws_seed)
    seed_nodes = [0, n_agents // 2]

    def seeds(corpus):
        fact = corpus.factual(timestamp=0.0)
        fake = corpus.insertion_fake(fact, "agent-seed", 0.0)
        return list(zip(seed_nodes, (fact, fake)))

    def clear_seen():
        for node in graph.nodes():
            graph.nodes[node]["agent"].seen.clear()

    clear_seen()
    corpus_a = CorpusGenerator(seed=world_seed + 1)
    scalar = CascadeRunner(
        graph, corpus_a, rng=random.Random(2), draws=draws,
        flagged=flagged, promoted=promoted,
    ).run(seeds(corpus_a), n_rounds=6)

    clear_seen()
    corpus_b = CorpusGenerator(seed=world_seed + 1)
    fast = FastCascadeRunner(
        graph, corpus_b, seed=2, draws=draws,
        flagged=flagged, promoted=promoted,
    ).run(seeds(corpus_b), n_rounds=6)

    assert scalar.events == fast.events
    assert scalar.articles == fast.articles
    assert scalar.root_of == fast.root_of
    assert scalar.children_by_root == fast.children_by_root
    assert scalar.shares_by_round == fast.shares_by_round
    assert scalar.exposures_by_round == fast.exposures_by_round
    assert scalar.exposed_agents == fast.exposed_agents
    # Reach curves and mutation-op mix follow from the above, but state
    # the property's headline claims directly:
    for root in scalar.exposed_agents:
        assert scalar.reach_curve(root) == fast.reach_curve(root)
    assert [e.op for e in scalar.events] == [e.op for e in fast.events]
