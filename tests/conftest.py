"""Shared fixtures for the test suite.

Everything is seeded, so any test can be re-run in isolation and see the
identical world.  Session-scoped fixtures hold expensive artifacts
(trained scorer, large corpus) that tests treat as read-only; anything a
test mutates is function-scoped.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import Contract, LocalChain, contract_method
from repro.corpus import CorpusGenerator
from repro.core import TrustingNewsPlatform
from repro.ml import FakeNewsScorer


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def corpus_gen() -> CorpusGenerator:
    return CorpusGenerator(seed=99)


@pytest.fixture
def local_chain() -> LocalChain:
    return LocalChain(seed=11)


class CounterContract(Contract):
    """Tiny contract used across chain-layer tests."""

    name = "counter"

    @contract_method
    def increment(self, ctx, amount: int = 1):
        value = (ctx.get("count") or 0) + amount
        ctx.put("count", value)
        ctx.emit("incremented", amount=amount, new=value)
        return value

    @contract_method
    def read(self, ctx):
        return ctx.get("count") or 0

    @contract_method
    def fail(self, ctx):
        ctx.require(False, "deliberate failure")

    @contract_method
    def burn_gas(self, ctx, keys: int = 100000):
        for index in range(keys):
            ctx.put(f"k{index}", "x" * 100)


@pytest.fixture
def counter_contract_cls():
    return CounterContract


@pytest.fixture
def platform() -> TrustingNewsPlatform:
    return TrustingNewsPlatform(seed=7)


@pytest.fixture(scope="session")
def trained_scorer() -> FakeNewsScorer:
    """A scorer trained once on a small labeled corpus (read-only)."""
    gen = CorpusGenerator(seed=2024)
    corpus = gen.labeled_corpus(n_factual=150, n_fake=150)
    texts, labels = corpus.texts_and_labels()
    return FakeNewsScorer(seed=1).fit(texts, labels)


@pytest.fixture(scope="session")
def eval_corpus():
    """Held-out labeled corpus (read-only)."""
    return CorpusGenerator(seed=2025).labeled_corpus(n_factual=80, n_fake=80)
