"""Smart-contract framework: runtime, base class, registry, endorsement."""

from repro.chain.contracts.contract import Contract, ContractRegistry, contract_method
from repro.chain.contracts.endorsement import EndorsementPolicy, check_endorsements
from repro.chain.contracts.runtime import ContractContext, ExecutionResult, GasSchedule

__all__ = [
    "Contract",
    "ContractRegistry",
    "contract_method",
    "EndorsementPolicy",
    "check_endorsements",
    "ContractContext",
    "ExecutionResult",
    "GasSchedule",
]
