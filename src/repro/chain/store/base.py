"""The pluggable block-store interface.

A :class:`~repro.chain.peer.Peer` owns exactly one
:class:`BlockStore`.  The commit path calls :meth:`BlockStore.on_commit`
for every block the ledger accepted — the durable backend write-ahead
logs it and only then acknowledges durability — and
:meth:`BlockStore.maybe_snapshot` afterwards so the backend can decide
when a world-state snapshot is due.  ``Peer.restart`` calls
:meth:`BlockStore.recover`: a backend that can rebuild the chain from
its own media returns a :class:`RecoveredChain`; the in-memory backend
returns ``None``, which tells the peer to fall back to the seed
behaviour (keep the in-memory ledger, replay state from it).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.consensus.base import ConsensusEngine
    from repro.chain.ledger import Ledger
    from repro.chain.state import WorldState
    from repro.chain.transaction import TxReceipt
    from repro.obs import MetricsRegistry

__all__ = ["BlockStore", "Degradation", "RecoveryReport", "RecoveredChain"]


@dataclass(frozen=True)
class Degradation:
    """One graceful step *down* the recovery ladder.

    Every degradation is counted in the obs registry (``store.degradations``
    with a ``kind`` label) and listed in the :class:`RecoveryReport`, so a
    recovery that lost anything is loud — the storage-durability invariant
    in :mod:`repro.chain.audit` fails any acked-block loss that is *not*
    matched by a reported degradation.
    """

    kind: str  # e.g. "torn-tail", "crc-mismatch", "snapshot-fallback", "full-replay"
    detail: str
    height: int | None = None


@dataclass
class RecoveryReport:
    """What one recovery did, and what it could not save."""

    mode: str = "empty"  # "snapshot+tail" | "full-replay" | "empty"
    recovered_height: int = 0
    snapshot_height: int = 0  # 0 = recovery did not use a snapshot
    log_records: int = 0  # records proven valid in the final scan
    tail_records: int = 0  # records decoded + verified above the snapshot
    truncated_bytes: int = 0  # garbage bytes cut off the log across repairs
    degradations: list[Degradation] = field(default_factory=list)
    #: heights acknowledged durable before the crash that recovery could
    #: NOT produce, with the reason — the loss is injected-fault damage
    #: and must line up with ``degradations`` (audited).
    missing_acked: dict[int, str] = field(default_factory=dict)
    #: tail records carried no consensus proof (e.g. PoA, or a
    #: join_peer-bootstrapped range) and were accepted on checksum +
    #: linkage alone.
    unproven_records: int = 0

    def summary(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "recovered_height": self.recovered_height,
            "snapshot_height": self.snapshot_height,
            "log_records": self.log_records,
            "tail_records": self.tail_records,
            "truncated_bytes": self.truncated_bytes,
            "degradations": [
                {"kind": d.kind, "detail": d.detail, "height": d.height}
                for d in self.degradations
            ],
            "missing_acked": dict(sorted(self.missing_acked.items())),
            "unproven_records": self.unproven_records,
        }


@dataclass
class RecoveredChain:
    """A backend's verified reconstruction of the chain."""

    ledger: "Ledger"
    state: "WorldState"
    receipts: dict[str, "TxReceipt"]
    #: height -> consensus proof for records recovery decoded, so the
    #: peer can re-seed its engine's certificate map.
    proofs: dict[int, Any]
    report: RecoveryReport


class BlockStore(abc.ABC):
    """Storage backend interface — see the module docstring."""

    kind: str = "abstract"

    def attach(self, registry: "MetricsRegistry", node_id: str) -> None:
        """Bind obs counters to the owning peer's registry (optional)."""

    @abc.abstractmethod
    def on_commit(
        self,
        block: Any,
        validity: list[bool],
        proof: Any = None,
        errors: list[str | None] | None = None,
    ) -> bool:
        """Persist one committed block; ``True`` = acknowledged durable."""

    @abc.abstractmethod
    def maybe_snapshot(
        self, ledger: "Ledger", state: "WorldState", receipts: dict[str, "TxReceipt"]
    ) -> bool:
        """Write a snapshot if policy says one is due; ``True`` if written."""

    @abc.abstractmethod
    def recover(self, engine: "ConsensusEngine | None" = None) -> RecoveredChain | None:
        """Rebuild the chain from storage; ``None`` = backend has no media
        (caller keeps its in-memory ledger and replays from it)."""
