"""Integration: the full Fig. 1 pipeline and Fig. 4 cascade-on-chain flow."""

import pytest

from repro.core import ExpertFinder, TrustingNewsPlatform, ValidatorPool, containment_report
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.social import CascadeRunner, build_social_world


@pytest.fixture(scope="module")
def cascade_platform():
    """A platform that ingested a full social cascade onto its chain."""
    platform = TrustingNewsPlatform(seed=81)
    graph, agents, corpus = build_social_world(n_agents=250, seed=81)
    fact = corpus.factual(topic="elections")
    platform.seed_fact("f-root", fact.text, "count-certification", "elections")
    # The originator publishes through a proper newsroom.
    platform.register_participant("wire", role="publisher")
    platform.create_distribution_platform("wire", "wire-svc")
    platform.create_news_room("wire", "wire-svc", "votes", "elections")
    report = relay(fact, "wire", 0.5)
    published = platform.publish_article("wire", "wire-svc", "votes", report.article_id or "seed-art",
                                         report.text, "elections")
    seed_article = corpus.relay_derivation(fact, "agent-00000", 0.0)
    # Bind the cascade to the chain: every share becomes a transaction.
    runner = CascadeRunner(
        graph, corpus,
        on_share=lambda event, article: platform.ingest_share(event, article, topic="elections"),
    )
    # Seed the cascade with an on-chain article.
    platform.ingest_share(
        type("E", (), {"agent_id": "agent-00000", "parent_article_id": published.article_id,
                       "op": "relay", "article_id": seed_article.article_id})(),
        seed_article, topic="elections",
    )
    hub = max(graph.nodes(), key=lambda n: graph.out_degree(n))
    result = runner.run([(hub, seed_article)], n_rounds=8)
    return platform, result, published, seed_article, agents


def test_every_share_recorded_on_chain(cascade_platform):
    platform, result, published, seed, agents = cascade_platform
    graph = platform.graph
    for event in result.events:
        assert event.article_id in graph, f"share {event.article_id} missing from ledger graph"


def test_cascade_lineage_traces_to_fact(cascade_platform):
    platform, result, published, seed, agents = cascade_platform
    relays = [e for e in result.events if e.op == "relay"]
    assert relays
    trace = platform.trace(relays[0].article_id)
    assert trace.traceable
    assert trace.root == "fact:f-root"


def test_mutated_shares_score_lower(cascade_platform):
    platform, result, published, seed, agents = cascade_platform
    mutated = [e for e in result.events if e.op in ("insert", "distort")]
    faithful = [e for e in result.events if e.op == "relay"]
    if not mutated:
        pytest.skip("this seed produced no malicious shares")
    mut_scores = [platform.trace(e.article_id).provenance_score for e in mutated[:10]]
    rel_scores = [platform.trace(e.article_id).provenance_score for e in faithful[:10]]
    assert sum(mut_scores) / len(mut_scores) < sum(rel_scores) / len(rel_scores)


def test_ledger_audit_after_cascade(cascade_platform):
    platform, *_ = cascade_platform
    assert platform.chain.ledger.verify_chain()
    stats = platform.stats()
    assert stats["articles"] > 10
    assert stats["supply_chain_edges"] >= stats["articles"] - 2


def test_expert_mining_on_cascade_ledger(cascade_platform):
    platform, result, published, seed, agents = cascade_platform
    finder = ExpertFinder(platform.graph, min_articles=1)
    scores = finder.scores("elections")
    assert scores  # someone earned standing
    assert all(0 <= s.mean_provenance <= 1 for s in scores)


def test_containment_report_integrates(cascade_platform):
    platform, result, published, seed, agents = cascade_platform
    report = containment_report(result, seed.article_id, flag_round=2)
    assert report.final_reach >= report.reach_at_flag


def test_full_crowd_pipeline(platform, trained_scorer):
    """Publish -> AI -> crowd -> rank -> promote, all signals live."""
    import random

    platform.scorer = trained_scorer
    gen = CorpusGenerator(seed=83)
    fact = gen.factual(topic="economy")
    platform.seed_fact("f-e", fact.text, "stats-office", "economy")
    platform.register_participant("ft", role="publisher")
    platform.create_distribution_platform("ft", "ft-wire")
    platform.create_news_room("ft", "ft-wire", "macro", "economy")
    report = relay(fact, "ft", 1.0)
    platform.publish_article("ft", "ft-wire", "macro", "econ-1", report.text, "economy")
    # Simulated validator crowd votes on-chain.
    rng = random.Random(0)
    pool = ValidatorPool.generate(12, rng)
    votes = pool.collect_votes(ground_truth_factual=True, rng=rng)
    for index, vote in enumerate(votes):
        platform.register_participant(f"v-{index}", role="checker")
        platform.cast_vote(f"v-{index}", "econ-1", vote.verdict, weight=max(0.01, min(1.0, vote.weight)))
    ranked = platform.rank_article("econ-1")
    assert ranked.crowd_score is not None and ranked.crowd_score > 0.6
    assert ranked.ai_score is not None and ranked.ai_score > 0.4
    assert ranked.provenance_score == pytest.approx(1.0)
    assert ranked.score > 0.75
    platform.promote_to_factual("econ-1")
    assert len(platform.facts(topic="economy")) == 2
