"""Contract base class, method dispatch, and the contract registry.

A contract is a Python class deriving from :class:`Contract` whose
invocable entry points are marked with :func:`contract_method`.  Only
marked methods are reachable from transactions — everything else is a
private helper — so a malformed method name can never call into, say,
``__init__``.

The :class:`ContractRegistry` maps contract names to instances and runs
invocations end-to-end: open snapshot, build context, dispatch, convert
outcomes into an :class:`ExecutionResult`.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.chain.contracts.runtime import ContractContext, ExecutionResult, GasSchedule
from repro.chain.state import WorldState
from repro.errors import ContractError, OutOfGasError

__all__ = ["Contract", "contract_method", "ContractRegistry"]

_MARKER = "_is_contract_method"


def contract_method(func: Callable) -> Callable:
    """Mark a :class:`Contract` method as invocable from transactions."""
    setattr(func, _MARKER, True)
    return func


class Contract:
    """Base class for smart contracts.

    Subclasses set ``name`` and define entry points like::

        class Counter(Contract):
            name = "counter"

            @contract_method
            def increment(self, ctx, amount: int = 1):
                value = (ctx.get("count") or 0) + amount
                ctx.put("count", value)
                return value
    """

    name: str = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.name:
            raise TypeError(f"{cls.__name__} must define a non-empty contract name")

    def invocable_methods(self) -> dict[str, Callable]:
        methods = {}
        for attr_name, member in inspect.getmembers(self, predicate=inspect.ismethod):
            if getattr(member.__func__, _MARKER, False):
                methods[attr_name] = member
        return methods

    def dispatch(self, ctx: ContractContext, method: str, args: dict[str, Any]) -> Any:
        entry = self.invocable_methods().get(method)
        if entry is None:
            raise ContractError(f"contract {self.name!r} has no method {method!r}")
        try:
            return entry(ctx, **args)
        except TypeError as exc:
            # Distinguish bad call signatures from TypeErrors raised inside
            # the method body: re-inspect the signature binding.
            try:
                inspect.signature(entry).bind(ctx, **args)
            except TypeError:
                raise ContractError(f"bad arguments for {self.name}.{method}: {exc}") from None
            raise


class ContractRegistry:
    """Installed contracts on one peer, plus the execution entry point."""

    def __init__(self, gas_schedule: GasSchedule | None = None):
        self._contracts: dict[str, Contract] = {}
        self.gas_schedule = gas_schedule or GasSchedule()

    def install(self, contract: Contract) -> None:
        if contract.name in self._contracts:
            raise ContractError(f"contract {contract.name!r} already installed")
        self._contracts[contract.name] = contract

    def get(self, name: str) -> Contract:
        contract = self._contracts.get(name)
        if contract is None:
            raise ContractError(f"contract {name!r} is not installed")
        return contract

    def __contains__(self, name: str) -> bool:
        return name in self._contracts

    def names(self) -> list[str]:
        return sorted(self._contracts)

    def execute(
        self,
        state: WorldState,
        contract_name: str,
        method: str,
        args: dict[str, Any],
        caller: str,
        timestamp: float,
        tx_id: str,
        gas_limit: int = 10_000_000,
    ) -> ExecutionResult:
        """Simulate one invocation against *state* (state is not mutated).

        Contract aborts (:class:`ContractError`, :class:`OutOfGasError`)
        come back as failed results; anything else propagates, because an
        unexpected exception in a system contract is a bug in this
        library, not a user error.
        """
        snapshot = state.snapshot()
        ctx = ContractContext(
            snapshot,
            caller=caller,
            timestamp=timestamp,
            tx_id=tx_id,
            gas_limit=gas_limit,
            schedule=self.gas_schedule,
        )
        try:
            contract = self.get(contract_name)
            value = contract.dispatch(ctx, method, args)
        except (ContractError, OutOfGasError) as exc:
            return ExecutionResult(
                success=False,
                error=str(exc),
                gas_used=ctx.gas_used,
                read_set=dict(snapshot.read_set),
                events=(),
            )
        return ExecutionResult(
            success=True,
            return_value=value,
            gas_used=ctx.gas_used,
            read_set=dict(snapshot.read_set),
            write_set=dict(snapshot.write_buffer),
            events=ctx.events,
        )
