"""Pipelined PBFT: windowed proposals, out-of-order commits, and the
digest-blind / equivocation-leak regressions.

Three seed bugs are pinned here:

- **digest-blind votes** — ``_on_prepare``/``_on_commit`` counted votes
  that arrived before the pre-prepare without recording which digest
  they were for, so forged early votes for digest X were tallied toward
  whatever digest Y the pre-prepare later installed;
- **byzantine primary leaks txs** — ``_propose_equivocating`` never
  installed local round state, so a deposed equivocator's taken
  transactions vanished (durability violation), and with a 1-tx batch
  its two "conflicting" blocks were byte-identical;
- **depth-blind stall detection** — the view timer treated any
  unchanged ledger height as a stall, even when pipelined rounds beyond
  the head were deciding blocks.

The rest covers the pipeline mechanics: out-of-order commit buffering,
view change mid-pipeline with full re-queue, and a hypothesis property
that pipelining never changes *what* commits — only how fast.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain import BlockchainNetwork, Contract, InvariantAuditor, contract_method
from repro.chain.block import Block
from repro.chain.consensus.pbft import _Decided
from repro.simnet import FixedLatency


class KVContract(Contract):
    """Disjoint-key writes: every tx succeeds regardless of batching."""

    name = "kv"

    @contract_method
    def put(self, ctx, key: str, value: str):
        ctx.put(key, value)
        return True


def _network(**overrides) -> BlockchainNetwork:
    from tests.conftest import CounterContract

    params = dict(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=FixedLatency(0.02), seed=5, view_timeout=5.0,
    )
    params.update(overrides)
    network = BlockchainNetwork(**params)
    network.install_contract(CounterContract)
    return network


# -- digest-blind vote regression ------------------------------------------


def test_early_votes_for_other_digest_never_count():
    """Pre-fix: forged early votes for ``evil-digest`` were counted
    blindly and committed the primary's later (honest) block without an
    honest quorum.  Post-fix they are stashed per-digest and discarded
    at reconcile time."""
    network = _network()
    replica = network.peers[1]
    engine = replica.engine
    engine.validator_keys.clear()  # keyless: channel-auth fallback
    head = replica.ledger.head
    # Votes arrive BEFORE the pre-prepare, naming a digest the
    # pre-prepare will not carry.
    engine._on_prepare(0, 1, "evil-digest", "peer-2")
    engine._on_prepare(0, 1, "evil-digest", "peer-3")
    engine._on_commit(0, 1, "evil-digest", "peer-0")
    engine._on_commit(0, 1, "evil-digest", "peer-2")
    engine._on_commit(0, 1, "evil-digest", "peer-3")
    block = Block.build(1, head.block_hash, 0.0, "peer-0", [])
    engine._accept_pre_prepare(0, 1, block, "peer-0")
    state = engine._rounds[(0, 1)]
    # Only the replica's own prepare counts; the forged votes are gone.
    assert state.prepares == {"peer-1"}
    assert not state.commits
    assert not state.sent_commit
    assert replica.ledger.height == 0, "forged early votes committed a block"
    network.stop()


def test_early_votes_for_matching_digest_do_count():
    """The reconcile path is not vote suppression: early votes that
    named the digest the pre-prepare actually carries are promoted and
    complete the quorum."""
    network = _network()
    replica = network.peers[1]
    engine = replica.engine
    engine.validator_keys.clear()
    head = replica.ledger.head
    block = Block.build(1, head.block_hash, 0.0, "peer-0", [])
    digest = block.block_hash
    engine._on_prepare(0, 1, digest, "peer-2")
    engine._on_prepare(0, 1, digest, "peer-3")
    engine._on_commit(0, 1, digest, "peer-2")
    engine._on_commit(0, 1, digest, "peer-3")
    engine._accept_pre_prepare(0, 1, block, "peer-0")
    # prepares: peer-2, peer-3 (promoted) + self = quorum -> commit sent;
    # commits: peer-2, peer-3 (promoted) + self = quorum -> applied.
    assert replica.ledger.height == 1
    assert replica.ledger.head.block_hash == digest
    network.stop()


# -- byzantine equivocation regressions ------------------------------------


def test_equivocating_primary_sends_distinct_blocks_for_single_tx():
    """Pre-fix, a 1-tx batch made ``block_a`` and ``block_b``
    byte-identical (``batch[:half]`` == ``reversed(batch)`` for one
    element) — no equivocation at all."""
    network = _network(byzantine_peers={"peer-0"}, view_timeout=10.0)
    client = network.client()
    tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
    primary = network.peers[0]
    assert primary.submit(tx, gossip=False)
    network.run_for(2.0)  # one proposal, well inside the view timeout
    digests = {
        peer.engine._rounds[(0, 1)].digest
        for peer in network.peers[1:]
        if (0, 1) in peer.engine._rounds
    }
    digests.discard(None)
    assert len(digests) == 2, "equivocating primary sent one block to everybody"
    network.stop()


def test_deposed_equivocator_requeues_taken_txs():
    """Pre-fix, ``_propose_equivocating`` installed no local round
    state, so the view change that deposed it had nothing to re-queue:
    the taken transactions vanished.  Two transactions are used so the
    conflicting blocks genuinely differ (with one tx the seed's blocks
    were identical, the block simply committed, and the leak was
    masked)."""
    network = _network(byzantine_peers={"peer-0"}, view_timeout=2.0)
    auditor = InvariantAuditor(network)
    client = network.client()
    primary = network.peers[0]
    txs = [
        network.endorse_transaction(client, "counter", "increment", {"amount": a})
        for a in (1, 2)
    ]
    for tx in txs:
        assert primary.submit(tx, gossip=False)
        auditor.track_tx(tx.tx_id)
    # The split pre-prepares can't reach quorum on either digest, so the
    # honest replicas time out and depose the equivocator — which must
    # then return the transactions its dead round had taken.
    network.run_for(20.0)
    network.stop()
    assert any(p.engine.view >= 1 for p in network.peers[1:]), (
        "honest replicas never deposed the equivocating primary"
    )
    for tx in txs:
        assert (tx.tx_id in primary.mempool) or (tx.tx_id in primary.receipts), (
            "deposed equivocator's in-flight tx vanished"
        )


# -- pipeline mechanics ----------------------------------------------------


def test_out_of_order_quorum_buffers_until_gap_closes():
    """A commit quorum at h+2 before h+1 must park in the decided-block
    buffer (never apply out of order) and drain the moment h+1 lands."""
    network = _network()
    replica = network.peers[1]
    engine = replica.engine
    engine.validator_keys.clear()
    head = replica.ledger.head
    b1 = Block.build(1, head.block_hash, 0.0, "peer-0", [])
    b2 = Block.build(2, b1.block_hash, 0.0, "peer-0", [])
    engine._accept_pre_prepare(0, 1, b1, "peer-0")
    engine._accept_pre_prepare(0, 2, b2, "peer-0")
    # Quorum for height 2 completes first.
    for voter in ("peer-2", "peer-3"):
        engine._on_prepare(0, 2, b2.block_hash, voter)
    for voter in ("peer-2", "peer-3"):
        engine._on_commit(0, 2, b2.block_hash, voter)
    assert replica.ledger.height == 0, "height 2 applied before height 1"
    assert engine.decided_heights() == [2]
    # Now height 1 reaches quorum: both apply, strictly in order.
    for voter in ("peer-2", "peer-3"):
        engine._on_prepare(0, 1, b1.block_hash, voter)
    for voter in ("peer-2", "peer-3"):
        engine._on_commit(0, 1, b1.block_hash, voter)
    assert replica.ledger.height == 2
    assert replica.ledger.block(1).block_hash == b1.block_hash
    assert replica.ledger.block(2).block_hash == b2.block_hash
    assert engine.decided_heights() == []
    network.stop()


def test_late_quorum_on_orphaned_height_is_discarded_not_applied():
    """Commit quorum for h+2 that lands *after* sync filled the gap with
    a different h+1 block: the immediate-apply branch of ``_decide``
    must run the same parent-linkage check as the drain path and
    discard.  Pre-fix it applied blindly — ``commit_block`` mutated
    receipts and world state before ``Ledger.append`` rejected the
    linkage, so the ``InvalidBlockError`` escaped with state already
    diverged from the chain."""
    network = _network()
    replica = network.peers[1]
    engine = replica.engine
    engine.validator_keys.clear()
    head = replica.ledger.head
    b1 = Block.build(1, head.block_hash, 0.0, "peer-0", [])
    b2 = Block.build(2, b1.block_hash, 0.0, "peer-0", [])
    engine._accept_pre_prepare(0, 1, b1, "peer-0")
    engine._accept_pre_prepare(0, 2, b2, "peer-0")
    # The view changed elsewhere: sync applies a *different* height-1
    # block, orphaning the b1 -> b2 chain this replica voted on.
    b1_alt = Block.build(1, head.block_hash, 0.1, "peer-2", [])
    replica.commit_block(b1_alt)
    assert replica.ledger.height == 1
    # Now the quorum-completing commit votes for (0, 2) arrive: height
    # 2 == ledger head + 1, but b2 is parented on the losing b1.
    for voter in ("peer-2", "peer-3"):
        engine._on_prepare(0, 2, b2.block_hash, voter)
    for voter in ("peer-2", "peer-3"):
        engine._on_commit(0, 2, b2.block_hash, voter)
    assert replica.ledger.height == 1
    assert replica.ledger.head.block_hash == b1_alt.block_hash
    assert engine.decided_heights() == []
    network.stop()


def test_view_change_discards_orphaned_buffered_decisions():
    """A decided-but-unapplied block whose parent round is deposed by a
    view change can never apply — pre-fix it sat in the buffer forever,
    refusing every pre-prepare at its height and holding its txs out of
    the mempool.  The view change must discard it, while entries still
    chained to the applied head survive the prune."""
    network = _network()
    replica = network.peers[1]
    engine = replica.engine
    engine.validator_keys.clear()
    head = replica.ledger.head
    b1 = Block.build(1, head.block_hash, 0.0, "peer-0", [])
    b2 = Block.build(2, b1.block_hash, 0.0, "peer-0", [])
    engine._accept_pre_prepare(0, 1, b1, "peer-0")
    engine._accept_pre_prepare(0, 2, b2, "peer-0")
    # Height 2 decides out of order and parks on the gap at height 1.
    for voter in ("peer-2", "peer-3"):
        engine._on_prepare(0, 2, b2.block_hash, voter)
    for voter in ("peer-2", "peer-3"):
        engine._on_commit(0, 2, b2.block_hash, voter)
    assert engine.decided_heights() == [2]
    # Control entry: parented directly on the applied head, so it stays
    # producible across the view change and must not be swept.
    keeper = Block.build(1, head.block_hash, 0.2, "peer-0", [])
    engine._commit_buffer[1] = _Decided(
        block=keeper, digest=keeper.block_hash, certificate=[], signatures={}
    )
    # The view change deposes b1's round: nothing left can fill b2's gap.
    for voter in ("peer-1", "peer-2", "peer-3"):
        engine._vote_view_change(1, voter)
    assert engine.view == 1
    assert engine.decided_heights() == [1], (
        "expected the orphaned height-2 decision discarded and the "
        "head-chained height-1 entry kept"
    )
    network.stop()


def test_primary_pipelines_up_to_depth_heights():
    """With a full mempool and no quorum possible (partition), the
    primary must open ``pipeline_depth`` heights, each chained onto the
    digest of the proposal below it."""
    network = _network(max_block_txs=2, pipeline_depth=4, view_timeout=30.0)
    client = network.client()
    primary = network.peers[0]
    network.net.partition({"peer-0"})
    txs = [
        network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        for _ in range(8)
    ]
    for tx in txs:
        assert primary.submit(tx, gossip=False)
    network.run_for(3.0)
    open_rounds = {
        height: state
        for (view, height), state in primary.engine._rounds.items()
        if view == 0 and state.digest is not None
    }
    assert sorted(open_rounds) == [1, 2, 3, 4]
    assert open_rounds[1].block.prev_hash == primary.ledger.head.block_hash
    for height in (2, 3, 4):
        assert open_rounds[height].block.prev_hash == open_rounds[height - 1].digest
    # Every taken tx is reserved: a gossip echo cannot re-enter the pool
    # and be double-proposed at a fifth height.
    for state in open_rounds.values():
        for tx in state.block.transactions:
            assert tx.tx_id in primary.mempool  # reserved
            assert not primary.mempool.add(tx)
    network.stop()


def test_view_change_mid_pipeline_requeues_whole_window():
    """Primary deposed with several uncommitted heights in flight: every
    taken transaction must end up committed or back in a mempool, and
    the full audit must stay silent."""
    network = _network(max_block_txs=2, pipeline_depth=4, view_timeout=2.0, seed=11)
    auditor = InvariantAuditor(network)
    client = network.client()
    primary = network.peers[0]
    tx_a = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
    network.submit(tx_a)
    network.run_for(0.3)  # let tx_a's gossip land before the partition
    tracked = [tx_a]
    for index in range(6):
        tx = network.endorse_transaction(
            client, "counter", "increment", {"amount": 2 + index}
        )
        assert primary.submit(tx, gossip=False)
        auditor.track_tx(tx.tx_id)
        tracked.append(tx)
    # 2|2 split: the primary pipelines several heights none of which can
    # reach quorum on either side.
    network.net.partition({"peer-0", "peer-1"})
    network.run_for(8.0)
    in_flight = [
        height for (view, height), state in primary.engine._rounds.items()
        if state.digest is not None
    ]
    assert len(in_flight) >= 3, (
        f"expected a pipeline of uncommitted heights, got {sorted(in_flight)}"
    )
    network.net.heal()
    network.run_for(25.0)
    network.stop()
    assert primary.engine.view >= 1, "primary was never deposed"
    for tx in tracked:
        assert any(
            tx.tx_id in peer.receipts or tx.tx_id in peer.mempool
            for peer in network.peers
        ), f"tx {tx.tx_id[:12]} vanished in the mid-pipeline view change"
    assert not auditor.final_check()


def test_stall_check_counts_buffered_decisions_as_progress():
    """A replica whose decided-block buffer moved since the timer was
    armed is making pipelined progress — it must not vote a view change
    even though its ledger height is unchanged."""
    network = _network()
    replica = network.peers[1]
    engine = replica.engine
    token = engine._progress_token()
    engine._round(0, 1)  # open work exists, so a true stall would fire
    head = replica.ledger.head
    block = Block.build(2, "parent-digest", 0.0, "peer-0", [])
    engine._commit_buffer[2] = _Decided(
        block=block, digest=block.block_hash, certificate=[], signatures={}
    )
    engine._view_timer_fired(token)
    assert engine._view_votes.get(1) is None, (
        "buffered decided block was treated as a stall"
    )
    # Control: with the token genuinely unchanged, the same fire votes.
    engine._commit_buffer.clear()
    engine._view_timer_fired(engine._progress_token())
    assert "peer-1" in engine._view_votes.get(1, set())
    assert head is replica.ledger.head  # nothing applied throughout
    network.stop()


def test_depth_one_matches_seed_behaviour():
    """``pipeline_depth=1`` is the unpipelined engine: never more than
    one height proposed per view, and everything still commits."""
    network = _network(pipeline_depth=1)
    client = network.client()
    max_open = 0

    def watch(_peer, _block):
        nonlocal max_open
        for peer in network.peers:
            open_heights = {
                height for (view, height), state in peer.engine._rounds.items()
                if state.block is not None and state.block.proposer == peer.node_id
            }
            max_open = max(max_open, len(open_heights))

    for peer in network.peers:
        peer.commit_listeners.append(watch)
    tx_ids = []
    for _ in range(6):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        tx_ids.append(tx.tx_id)
    network.run_for(30.0)
    network.stop()
    reference = max(network.peers, key=lambda p: p.ledger.height)
    assert all(tx_id in reference.receipts for tx_id in tx_ids)
    assert max_open <= 1
    assert all(not p.engine._commit_buffer for p in network.peers)


# -- schedule equivalence (hypothesis) -------------------------------------


def _committed_set(depth: int, seed: int, n_txs: int) -> set[str]:
    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.25,
        latency=FixedLatency(0.02), max_block_txs=3, seed=seed,
        view_timeout=5.0, pipeline_depth=depth,
    )
    network.install_contract(KVContract)
    client = network.client()
    tx_ids = [
        client.invoke("kv", "put", {"key": f"k-{index}", "value": "v"}, wait=False)
        for index in range(n_txs)
    ]
    network.run_for(40.0)
    network.stop()
    reference = max(network.peers, key=lambda p: p.ledger.height)
    committed = {
        tx_id for tx_id in tx_ids
        if tx_id in reference.receipts and reference.receipts[tx_id].success
    }
    assert committed == set(tx_ids), "workload did not fully commit"
    return committed


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_txs=st.integers(min_value=4, max_value=12),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_pipelined_and_sequential_schedules_commit_the_same_set(seed, n_txs):
    """Pipelining is a latency optimization, not a semantic change: for
    the same seed and workload, depth 1 and depth 4 commit the identical
    transaction set, all successful."""
    assert _committed_set(1, seed, n_txs) == _committed_set(4, seed, n_txs)
