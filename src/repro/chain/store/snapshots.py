"""Periodic world-state snapshots: the fast half of recovery.

A snapshot pins everything needed to resume at height *H* without
replaying blocks 1..H: the world state dump (values + MVCC versions +
commit sequence), the receipt map, and the ledger's secondary indexes.
Snapshots are written to their own file (``snapshot-<height>``) with the
same CRC-framed envelope as log records, fsync'd on write, and pruned to
the newest *keep* — so a corrupt newest snapshot can degrade to the one
before it, and only a run with every snapshot damaged falls all the way
back to full replay.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any

from repro.chain.store.codec import decode_obj, encode_obj
from repro.simnet.disk import SimDisk

__all__ = ["SnapshotCandidate", "snapshot_name", "write_snapshot", "list_snapshots", "load_snapshot"]

SNAPSHOT_PREFIX = "snapshot-"
_MAGIC = b"RS"
_HEADER = struct.Struct(">2sII")  # magic, payload length, crc32


def snapshot_name(height: int) -> str:
    return f"{SNAPSHOT_PREFIX}{height:010d}"


def _height_of(name: str) -> int | None:
    try:
        return int(name[len(SNAPSHOT_PREFIX):])
    except ValueError:
        return None


@dataclass(frozen=True)
class SnapshotCandidate:
    """A snapshot file that may or may not prove valid on load."""

    name: str
    height: int


def write_snapshot(
    disk: SimDisk,
    height: int,
    block_hash: str,
    state_dump: dict[str, Any],
    receipts: list[dict[str, Any]],
    indexes: dict[str, Any],
    keep: int = 2,
) -> int:
    """Write + fsync one snapshot, prune to the newest *keep*; returns bytes.

    *keep* must be >= 1: ``list_snapshots(disk)[:-keep]`` with ``keep <= 0``
    slices to the empty list, silently pruning nothing — the caller asked
    for "keep none" and got "keep everything", an unbounded disk leak.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    payload = encode_obj(
        {
            "height": height,
            "block_hash": block_hash,
            "state": state_dump,
            "receipts": receipts,
            "indexes": indexes,
        }
    )
    name = snapshot_name(height)
    disk.set_role(name, "snapshot")
    framed = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload
    disk.append(name, framed)
    disk.fsync(name)
    for stale in list_snapshots(disk)[:-keep]:
        disk.delete(stale.name)
    return len(framed)


def list_snapshots(disk: SimDisk) -> list[SnapshotCandidate]:
    """Durable snapshot files, oldest first."""
    out = []
    for name in disk.names():
        if not name.startswith(SNAPSHOT_PREFIX):
            continue
        height = _height_of(name)
        if height is not None:
            out.append(SnapshotCandidate(name=name, height=height))
    return sorted(out, key=lambda c: c.height)


def load_snapshot(disk: SimDisk, candidate: SnapshotCandidate) -> dict[str, Any] | None:
    """Verify-before-trust load; ``None`` if the file fails any check."""
    data = disk.read(candidate.name)
    if len(data) < _HEADER.size:
        return None
    magic, length, crc = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC or _HEADER.size + length > len(data):
        return None
    payload = data[_HEADER.size : _HEADER.size + length]
    if zlib.crc32(payload) != crc:
        return None
    try:
        obj = decode_obj(payload)
    except ValueError:
        return None
    if obj.get("height") != candidate.height:
        return None
    return obj
