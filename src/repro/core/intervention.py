"""Intervention monitoring and personalized correction (§VI–§VII).

Once fake news is identified, the paper's platform (a) measures how the
intervention changed propagation, (b) maps which communities were
exposed, and (c) picks *in-group messengers* for corrections — the
literature it cites ([37], [58]) finds out-group/threatening corrections
backfire, while statements from similar individuals land.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.social.agents import AgentKind, SocialAgent
from repro.social.cascade import CascadeResult

__all__ = [
    "ContainmentReport",
    "containment_report",
    "community_exposure",
    "select_messengers",
    "CorrectionCampaign",
    "Receptivity",
    "assign_receptivity",
    "correction_acceptance",
    "PersonalizedCampaign",
]


@dataclass(frozen=True)
class ContainmentReport:
    """Before/after-flag growth of one lineage's reach."""

    root_id: str
    flag_round: int
    reach_at_flag: int
    final_reach: int
    growth_before: float  # mean new exposures per round pre-flag
    growth_after: float  # mean new exposures per round post-flag

    @property
    def containment(self) -> float:
        """1 - (post growth / pre growth); 1.0 = fully stopped."""
        if self.growth_before <= 0:
            return 0.0
        return max(0.0, 1.0 - self.growth_after / self.growth_before)


def containment_report(result: CascadeResult, root_id: str, flag_round: int) -> ContainmentReport:
    """Quantify how flagging at *flag_round* changed a lineage's spread."""
    curve = result.reach_curve(root_id)
    if not curve:
        return ContainmentReport(root_id, flag_round, 0, 0, 0.0, 0.0)
    flag_round = min(flag_round, len(curve) - 1)
    reach_at_flag = curve[flag_round]
    deltas = [curve[0]] + [b - a for a, b in zip(curve, curve[1:])]
    before = deltas[: flag_round + 1]
    after = deltas[flag_round + 1 :]
    return ContainmentReport(
        root_id=root_id,
        flag_round=flag_round,
        reach_at_flag=reach_at_flag,
        final_reach=curve[-1],
        growth_before=sum(before) / len(before) if before else 0.0,
        growth_after=sum(after) / len(after) if after else 0.0,
    )


def community_exposure(
    result: CascadeResult, root_id: str, agents_by_id: dict[str, SocialAgent]
) -> dict[int, int]:
    """How many agents of each community saw the lineage."""
    exposure: dict[int, int] = {}
    for agent_id in result.exposed_agents.get(root_id, ()):
        agent = agents_by_id.get(agent_id)
        if agent is None:
            continue
        exposure[agent.community] = exposure.get(agent.community, 0) + 1
    return exposure


def select_messengers(
    agents: list[SocialAgent],
    target_community: int,
    k: int = 3,
) -> list[SocialAgent]:
    """Pick in-group correction messengers for a community.

    Preference order: journalists in the community, then honest users;
    malicious accounts are never messengers.  The in-group constraint is
    the point — corrections from the out-group entrench beliefs [58].
    """
    candidates = [
        a for a in agents if a.community == target_community and not a.malicious
    ]
    candidates.sort(
        key=lambda a: (a.kind is not AgentKind.JOURNALIST, a.share_probability, a.agent_id)
    )
    return candidates[:k]


class Receptivity(str, Enum):
    """How an individual updates beliefs under correction (§VII).

    The paper (citing [58]): "People are asymmetrical updaters.  Some
    may only be receptive to evidence that supports their view, but some
    might [be] more receptive if the evidence is strong enough."
    """

    OPEN = "open"  # updates readily, messenger matters less
    EVIDENCE_SENSITIVE = "evidence"  # updates iff the evidence is strong
    ENTRENCHED = "entrenched"  # updates only via in-group, backfires otherwise


def assign_receptivity(
    agents: list[SocialAgent],
    rng: random.Random,
    open_fraction: float = 0.35,
    evidence_fraction: float = 0.40,
) -> dict[str, Receptivity]:
    """Partition a population into receptivity classes (the remainder is
    entrenched)."""
    if open_fraction + evidence_fraction > 1.0:
        raise ValueError("receptivity fractions must sum to <= 1")
    classes: dict[str, Receptivity] = {}
    for agent in agents:
        roll = rng.random()
        if roll < open_fraction:
            classes[agent.agent_id] = Receptivity.OPEN
        elif roll < open_fraction + evidence_fraction:
            classes[agent.agent_id] = Receptivity.EVIDENCE_SENSITIVE
        else:
            classes[agent.agent_id] = Receptivity.ENTRENCHED
    return classes


def correction_acceptance(
    receptivity: Receptivity, in_group: bool, evidence_strength: float
) -> float:
    """Probability an individual accepts a correction.

    Encodes the literature the paper cites: open updaters mostly accept;
    evidence-sensitive updaters scale with evidence quality; entrenched
    individuals accept only modestly from their in-group and essentially
    never from the out-group (threatening out-group corrections
    entrench, refs [58], [63]).
    """
    if not 0.0 <= evidence_strength <= 1.0:
        raise ValueError("evidence_strength must be in [0, 1]")
    if receptivity is Receptivity.OPEN:
        return min(1.0, 0.55 * (1.3 if in_group else 0.9))
    if receptivity is Receptivity.EVIDENCE_SENSITIVE:
        return min(1.0, (0.15 + 0.65 * evidence_strength) * (1.3 if in_group else 0.7))
    return 0.30 * evidence_strength if in_group else 0.02


@dataclass
class PersonalizedCampaign:
    """Correction strategy comparison: blanket vs personalized (§VII).

    *Blanket*: one messenger team and one framing for everybody (the
    status-quo fact-check broadcast).  *Personalized*: each exposed
    individual is reached through an in-group messenger where one
    exists, and entrenched individuals are only approached in-group —
    the paper's "no single size fit all solution" operationalized.
    """

    evidence_strength: float = 0.8

    def run(
        self,
        exposed: list[SocialAgent],
        receptivity: dict[str, Receptivity],
        messenger_communities: set[int],
        rng: random.Random,
        personalize: bool = True,
    ) -> float:
        """Fraction of exposed agents accepting the correction."""
        if not exposed:
            return 0.0
        accepted = 0
        for agent in exposed:
            agent_class = receptivity.get(agent.agent_id, Receptivity.EVIDENCE_SENSITIVE)
            if personalize:
                # Personalized outreach recruits an in-group messenger for
                # every community it must reach.
                in_group = True
                if agent_class is Receptivity.ENTRENCHED and agent.community not in (
                    messenger_communities | {agent.community}
                ):
                    in_group = False
            else:
                in_group = agent.community in messenger_communities
            probability = correction_acceptance(agent_class, in_group, self.evidence_strength)
            if rng.random() < probability:
                accepted += 1
        return accepted / len(exposed)


@dataclass
class CorrectionCampaign:
    """Simulates belief correction among exposed agents.

    Each exposed agent accepts the correction with a probability that
    depends on who delivers it: in-group messengers are far more
    effective than out-group ones (asymmetric updaters, ref [58]).
    """

    base_acceptance: float = 0.35
    in_group_multiplier: float = 1.8
    out_group_multiplier: float = 0.5

    def run(
        self,
        exposed: list[SocialAgent],
        messengers: list[SocialAgent],
        rng: random.Random,
    ) -> float:
        """Returns the fraction of exposed agents who accept the correction."""
        if not exposed:
            return 0.0
        messenger_communities = {m.community for m in messengers}
        accepted = 0
        for agent in exposed:
            multiplier = (
                self.in_group_multiplier
                if agent.community in messenger_communities
                else self.out_group_multiplier
            )
            if rng.random() < min(1.0, self.base_acceptance * multiplier):
                accepted += 1
        return accepted / len(exposed)
