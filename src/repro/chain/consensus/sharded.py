"""Sharded parallel transaction execution (the authors' ICDCS 2018
"Transform Blockchain into Distributed Parallel Computing Architecture").

The paper's §IV notes that its platform depends on that prior work to
make the blockchain scale.  The core idea: transactions in a committed
block that touch disjoint state can execute on parallel workers
("shards"); only cross-shard transactions serialize.

This module computes that schedule for a block and reports the makespan
(in gas units, the simulator's proxy for CPU time), so E9 can compare
sequential vs parallel execution latency as node/shard counts sweep.

Assignment: each transaction is mapped to the shard owning the first key
it writes (hash-partitioned).  A transaction whose read+write key set
spans multiple shards is a *cross-shard* transaction and runs in a final
sequential coordinator phase — the conservative model matching a
two-phase-commit style coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.transaction import Transaction
from repro.crypto.hashing import sha256_hex

__all__ = ["ShardSchedule", "ShardedExecutor"]


def _shard_of(key: str, n_shards: int) -> int:
    return int(sha256_hex(key.encode("utf-8"))[:8], 16) % n_shards


def _gas_proxy(tx: Transaction) -> int:
    """Execution cost estimate: reads + writes, floor of 1."""
    return max(1, 10 * len(tx.read_set) + 50 * len(tx.write_set))


@dataclass
class ShardSchedule:
    """The parallel execution plan for one block."""

    n_shards: int
    shard_loads: list[int] = field(default_factory=list)  # gas per shard
    cross_shard_gas: int = 0
    cross_shard_count: int = 0
    local_count: int = 0

    @property
    def sequential_makespan(self) -> int:
        """Gas-time if everything ran on one worker."""
        return sum(self.shard_loads) + self.cross_shard_gas

    @property
    def parallel_makespan(self) -> int:
        """Gas-time with shards in parallel, coordinator phase serialized."""
        slowest = max(self.shard_loads) if self.shard_loads else 0
        return slowest + self.cross_shard_gas

    @property
    def speedup(self) -> float:
        if self.parallel_makespan == 0:
            return 1.0
        return self.sequential_makespan / self.parallel_makespan


class ShardedExecutor:
    """Plans (and accounts for) parallel execution of block transactions."""

    def __init__(self, n_shards: int = 4):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.total_sequential_gas = 0
        self.total_parallel_gas = 0
        self.blocks_planned = 0

    def plan_block(self, transactions: list[Transaction]) -> ShardSchedule:
        """Build the shard schedule for one block's valid transactions."""
        schedule = ShardSchedule(n_shards=self.n_shards, shard_loads=[0] * self.n_shards)
        for tx in transactions:
            keys = set(tx.write_set) | set(tx.read_set)
            if not keys:
                schedule.shard_loads[0] += _gas_proxy(tx)
                schedule.local_count += 1
                continue
            shards = {_shard_of(key, self.n_shards) for key in keys}
            if len(shards) == 1:
                schedule.shard_loads[next(iter(shards))] += _gas_proxy(tx)
                schedule.local_count += 1
            else:
                schedule.cross_shard_gas += _gas_proxy(tx)
                schedule.cross_shard_count += 1
        self.total_sequential_gas += schedule.sequential_makespan
        self.total_parallel_gas += schedule.parallel_makespan
        self.blocks_planned += 1
        return schedule

    @property
    def cumulative_speedup(self) -> float:
        if self.total_parallel_gas == 0:
            return 1.0
        return self.total_sequential_gas / self.total_parallel_gas
