"""Attribute views over registry metrics.

The seed code read and wrote plain-attribute stat objects
(``peer.metrics.txs_committed_valid += 1``); migrating those counters
into the shared :class:`~repro.obs.registry.MetricsRegistry` must not
break that API.  :class:`metric_attr` is a descriptor that makes a class
attribute behave exactly like the old int/float field while the value
actually lives in a registry counter — reads, writes, and ``+=`` all
work, and the exporters see every increment.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import Counter, MetricsRegistry

__all__ = ["ObsView", "metric_attr"]


class metric_attr:
    """Class attribute backed by a registry counter.

    The owning class must provide ``_obs_counter(metric_name)``
    returning a :class:`~repro.obs.registry.Counter`
    (:class:`ObsView` does).  Counter handles are cached per instance,
    so hot-path ``+=`` costs one dict lookup, not a registry resolve.
    """

    __slots__ = ("metric", "attr")

    def __init__(self, metric: str):
        self.metric = metric

    def __set_name__(self, owner: type, name: str) -> None:
        self.attr = name

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        return obj._obs_counter(self.metric).value

    def __set__(self, obj: Any, value: float) -> None:
        obj._obs_counter(self.metric).set(value)


class ObsView:
    """Base for stat objects whose counters live in a registry.

    Subclasses declare ``metric_attr`` fields; construction takes an
    optional shared registry plus labels (``peer="peer-0"``).  Without a
    registry a private one is created, so standalone construction — the
    seed API — still works.
    """

    def __init__(self, registry: MetricsRegistry | None = None, **labels: str):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = {k: v for k, v in labels.items() if v}
        self._counter_cache: dict[str, Counter] = {}

    def _obs_counter(self, metric: str) -> Counter:
        counter = self._counter_cache.get(metric)
        if counter is None:
            counter = self.registry.counter(metric, **self.labels)
            self._counter_cache[metric] = counter
        return counter
