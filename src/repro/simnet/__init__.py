"""Discrete-event network simulation substrate.

One deterministic clock (:class:`Simulator`) drives both the blockchain
consensus layer and the social-media cascade layer; :class:`Network`
provides latency, partitions, drops, and crash faults.
"""

from repro.simnet.events import Event, Simulator
from repro.simnet.failure import FailureEvent, FailureSchedule
from repro.simnet.latency import (
    FixedLatency,
    GeoLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.simnet.network import Message, Network, NetworkNode

__all__ = [
    "Event",
    "Simulator",
    "FailureEvent",
    "FailureSchedule",
    "FixedLatency",
    "GeoLatency",
    "LatencyModel",
    "LogNormalLatency",
    "UniformLatency",
    "Message",
    "Network",
    "NetworkNode",
]
