"""Hashing primitives used across the blockchain substrate.

Everything in the chain layer is content-addressed through these helpers
so that the digest scheme lives in exactly one place.  Digests are
returned as lowercase hex strings (the ledger stores and compares them as
strings) with raw-byte variants available where performance matters.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = [
    "sha256_bytes",
    "sha256_hex",
    "sha512_bytes",
    "hash_json",
    "short_id",
]


def sha256_bytes(data: bytes) -> bytes:
    """SHA-256 of *data* as 32 raw bytes."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """SHA-256 of *data* as a 64-char lowercase hex string."""
    return hashlib.sha256(data).hexdigest()


def sha512_bytes(data: bytes) -> bytes:
    """SHA-512 of *data* as 64 raw bytes (used by Ed25519)."""
    return hashlib.sha512(data).digest()


def hash_json(obj: Any) -> str:
    """Canonical-JSON SHA-256 digest of any JSON-serialisable object.

    Keys are sorted and separators fixed so that logically equal objects
    always hash identically regardless of insertion order.
    """
    canonical = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)
    return sha256_hex(canonical.encode("utf-8"))


def short_id(digest: str, length: int = 12) -> str:
    """Human-friendly prefix of a hex digest, for logs and repr()s."""
    return digest[:length]
