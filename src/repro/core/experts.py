"""Domain-topic expert identification from ledger history (§VI).

"AI analyzing the history of blockchain ledger to identify the fact
news creators of a given domain topic as the potential domain topic
experts."  Mechanically: walk the supply-chain graph, credit each
author with the provenance quality of the articles they created in a
topic, and rank authors by quality-weighted volume.  E8 plants known
experts and scores the panel's precision/recall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.core.supplychain import trace_to_factual_root

__all__ = ["ExpertScore", "ExpertFinder"]


@dataclass(frozen=True)
class ExpertScore:
    """One author's standing in one topic."""

    author: str
    topic: str
    articles: int
    mean_provenance: float
    score: float


class ExpertFinder:
    """Mines the supply-chain graph for per-topic expertise."""

    def __init__(self, graph: nx.DiGraph, min_articles: int = 2):
        self.graph = graph
        self.min_articles = min_articles
        self._trace_cache: dict[str, float] = {}

    def _provenance_score(self, article_id: str) -> float:
        cached = self._trace_cache.get(article_id)
        if cached is None:
            cached = trace_to_factual_root(self.graph, article_id).provenance_score
            self._trace_cache[article_id] = cached
        return cached

    def scores(self, topic: str) -> list[ExpertScore]:
        """All authors active in *topic*, ranked by expertise score.

        Score = mean provenance quality x log(1 + volume): an author
        must be *consistently* factual and *productive*; one lucky relay
        does not make an expert, and a bot flooding mutations scores
        near zero because its mean provenance collapses.
        """
        per_author: dict[str, list[float]] = {}
        for node, attrs in self.graph.nodes(data=True):
            if attrs.get("is_fact_root") or attrs.get("topic") != topic:
                continue
            author = attrs.get("author")
            if author is None:
                continue
            per_author.setdefault(author, []).append(self._provenance_score(node))
        results = []
        for author, scores in per_author.items():
            if len(scores) < self.min_articles:
                continue
            mean_provenance = sum(scores) / len(scores)
            results.append(
                ExpertScore(
                    author=author,
                    topic=topic,
                    articles=len(scores),
                    mean_provenance=mean_provenance,
                    score=mean_provenance * math.log1p(len(scores)),
                )
            )
        results.sort(key=lambda e: (-e.score, e.author))
        return results

    def recruit_pool(
        self,
        topic: str,
        rng,
        base_accuracy: float = 0.72,
        expert_accuracy: float = 0.93,
        pool_size: int = 12,
        min_quality: float = 0.75,
    ):
        """Build a validator pool seeded with ledger-vetted experts (§VI).

        "This can help to increase the domain topic experts of
        fact-checking pools, and dynamically suggest a group of domain
        topic experts to a given topic in real time when news emerges."

        Experts found in the supply chain enter with high modelled
        accuracy and elevated starting reputation (their track record is
        already on the ledger); the rest of the pool is ordinary
        checkers.  Returns a
        :class:`~repro.core.crowdsourcing.ValidatorPool`.
        """
        from repro.core.crowdsourcing import Validator, ValidatorPool

        experts = [e for e in self.scores(topic) if e.mean_provenance >= min_quality]
        validators = []
        for standing in experts[:pool_size]:
            validators.append(
                Validator(
                    validator_id=standing.author,
                    accuracy=expert_accuracy,
                    reputation=1.0 + standing.score,  # ledger track record
                    address=standing.author,
                )
            )
        index = 0
        while len(validators) < pool_size:
            validators.append(
                Validator(
                    validator_id=f"recruit-{topic}-{index:03d}",
                    accuracy=rng.uniform(base_accuracy - 0.08, base_accuracy + 0.08),
                )
            )
            index += 1
        return ValidatorPool(validators=validators)

    def suggest_panel(self, topic: str, k: int = 5, min_quality: float = 0.75) -> list[str]:
        """The dynamic fact-checking panel for an emerging topic.

        Only authors whose mean provenance clears *min_quality* are
        eligible — a prolific but sloppy account must not buy its way
        onto a panel with volume.
        """
        eligible = [e for e in self.scores(topic) if e.mean_provenance >= min_quality]
        return [e.author for e in eligible[:k]]
