"""BlockchainNetwork error paths: endorsement shortfalls, dead networks."""

import pytest

from repro.chain import BlockchainNetwork, EndorsementPolicy
from repro.errors import ChainError, ContractError, EndorsementError
from repro.simnet import FixedLatency


def _network(**kwargs):
    from tests.conftest import CounterContract

    defaults = dict(n_peers=4, consensus="poa", block_interval=0.3,
                    latency=FixedLatency(0.01), seed=88)
    defaults.update(kwargs)
    network = BlockchainNetwork(**defaults)
    policy = kwargs.pop("policy", None)
    network.install_contract(CounterContract, policy=policy)
    return network


def test_endorsement_shortfall_raises():
    from tests.conftest import CounterContract

    network = BlockchainNetwork(n_peers=4, consensus="poa", seed=1)
    network.install_contract(CounterContract, policy=EndorsementPolicy(required=3))
    for peer in network.peers[1:]:
        peer.crashed = True  # only one endorser left
    client = network.client()
    with pytest.raises(EndorsementError, match="policy requires 3"):
        client.invoke("counter", "increment")


def test_contract_error_surfaces_at_endorsement():
    network = _network()
    client = network.client()
    with pytest.raises(ContractError, match="deliberate"):
        client.invoke("counter", "fail")


def test_all_peers_crashed_cannot_endorse():
    network = _network()
    for peer in network.peers:
        peer.crashed = True
    client = network.client()
    with pytest.raises(ContractError, match="no peer could endorse"):
        client.invoke("counter", "increment")


def test_query_with_all_peers_crashed():
    network = _network()
    for peer in network.peers:
        peer.crashed = True
    client = network.client()
    with pytest.raises(ChainError, match="no live peer"):
        client.query("counter", "read")


def test_receipt_timeout_when_nothing_commits():
    network = _network()
    client = network.client()
    tx = network.endorse_transaction(client, "counter", "increment", {})
    # Crash everyone after endorsement: the tx can never be ordered.
    for peer in network.peers:
        peer.crashed = True
    network.peers[0].mempool.add(tx)
    with pytest.raises(ChainError, match="did not commit"):
        network.wait_for_receipt(tx.tx_id, timeout=5.0)


def test_query_returns_error_for_bad_method():
    network = _network()
    client = network.client()
    with pytest.raises(ContractError, match="no method"):
        client.query("counter", "does_not_exist")
