"""From-scratch ML stack: vectorizers, linear classifiers, stylometric
features, ensembles, metrics, and simulated deepfake detection.

Substitutes for the TensorFlow models the paper references — the
platform consumes a P(fake) score, and these NumPy models provide it
with three distinct inductive biases (lexical, generative, stylometric).
"""

from repro.ml.deepfake import DeepfakeDetector, MediaFingerprint, capture_signal, tamper_signal
from repro.ml.ensemble import FakeNewsScorer, SoftVotingEnsemble
from repro.ml.features import FEATURE_NAMES, StylometricExtractor
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    ClassificationReport,
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    precision_at_k,
    recall,
    roc_auc,
)
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.svm import LinearSVM
from repro.ml.topic_model import TopicClassifier
from repro.ml.vectorize import CountVectorizer, HashingVectorizer, TfidfVectorizer

__all__ = [
    "DeepfakeDetector",
    "MediaFingerprint",
    "capture_signal",
    "tamper_signal",
    "FakeNewsScorer",
    "SoftVotingEnsemble",
    "FEATURE_NAMES",
    "StylometricExtractor",
    "LogisticRegression",
    "ClassificationReport",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "precision",
    "precision_at_k",
    "recall",
    "roc_auc",
    "MultinomialNaiveBayes",
    "LinearSVM",
    "TopicClassifier",
    "CountVectorizer",
    "HashingVectorizer",
    "TfidfVectorizer",
]
