"""Dynamic counterpart of the DET/SIM static rules (docs/LINTS.md).

An E1-style workload — publish → AI-less provenance → crowd votes →
rank, over real four-peer consensus — run twice from one seed must
produce the same ledger tip hash, the same transaction receipts, and
the same observability records.  The static analyzer forbids the
ingredients of divergence (ambient RNGs, wall-clock reads in sim
domains); this test catches whatever shape of nondeterminism the rules
cannot see.
"""

from repro.chain import BlockchainNetwork, NetworkedChain
from repro.core import TrustingNewsPlatform
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.simnet import FixedLatency

#: Obs metrics fed from the host's wall clock by design — verify_batch
#: measures real crypto compute, endorse is synchronous in-process so
#: its sim duration is 0 and wall time is the meaningful cost.  Their
#: observed values legitimately differ between reruns; everything else
#: must be bit-identical.
WALL_CLOCK_METRICS = {"phase.verify_batch", "phase.endorse"}


def _run_e1_scenario(seed: int):
    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.2,
        latency=FixedLatency(0.01), seed=seed,
    )
    platform = TrustingNewsPlatform(seed=seed, chain=NetworkedChain(network))
    gen = CorpusGenerator(seed=seed + 1)

    fact = gen.factual(topic="economy")
    platform.seed_fact("f-det", fact.text, "stats-office", "economy")
    platform.register_participant("wire", role="publisher")
    platform.create_distribution_platform("wire", "det-wire")
    platform.create_news_room("wire", "det-wire", "macro", "economy")
    for index in range(3):
        if index % 2 == 0:
            article = relay(fact, "wire", float(index))
        else:
            article = gen.insertion_fake(relay(fact, "wire", 0.0), "wire",
                                         float(index), n_insertions=3)
        platform.publish_article("wire", "det-wire", "macro", f"det-a{index}",
                                 article.text, "economy")
        platform.register_participant(f"det-checker-{index}", role="checker")
        platform.cast_vote(f"det-checker-{index}", f"det-a{index}", verdict=index % 2 == 0)
        platform.rank_article(f"det-a{index}")
    network.run_for(5)
    network.assert_convergence()
    return network


def _tip_hashes(network) -> list[str]:
    out = []
    for peer in network.peers:
        ledger = peer.ledger
        out.append(ledger.block(ledger.height).block_hash)
    return out


def _receipt_view(network) -> dict[str, tuple]:
    peer = network.peers[0]
    return {
        tx_id: (r.block_height, r.success, repr(r.return_value), r.error, r.gas_used)
        for tx_id, r in peer.receipts.items()
    }


def _obs_view(network) -> list:
    records = []
    for record in network.obs.collect():
        if record["kind"] in ("counter", "gauge"):
            records.append(record)
        elif record["name"] in WALL_CLOCK_METRICS:
            # Wall-time values vary; the *count* of observations cannot.
            records.append({"name": record["name"], "labels": record["labels"],
                            "count": record["summary"]["count"]})
        else:
            records.append(record)
    return records


def test_e1_rerun_is_bit_identical():
    first = _run_e1_scenario(seed=2026)
    second = _run_e1_scenario(seed=2026)

    tips = _tip_hashes(first)
    assert tips == _tip_hashes(second)
    assert len(set(tips)) == 1, "peers converged on one tip within a run"

    receipts = _receipt_view(first)
    assert receipts, "scenario must commit transactions"
    assert receipts == _receipt_view(second)

    assert _obs_view(first) == _obs_view(second)


def test_e1_different_seed_diverges():
    a = _run_e1_scenario(seed=2026)
    b = _run_e1_scenario(seed=2027)
    assert _tip_hashes(a) != _tip_hashes(b)
