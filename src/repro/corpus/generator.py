"""Corpus generator: labeled news datasets with provenance ground truth.

The headline workload knob is ``mutated_fake_fraction``: the paper cites
Stanford's finding that **72.3 % of fake news is modified from standard
factual news** (§I, refs [11-13]), so by default that share of fake
articles is derived from factual parents via malicious operators and the
remainder is fabricated from whole cloth.

Everything is driven by one ``random.Random`` seed, so a corpus (and
every experiment built on it) is exactly reproducible.
"""

from __future__ import annotations

import itertools
import random

from repro.corpus.articles import Article, make_fabricated_article, make_factual_article
from repro.corpus.mutations import distort, insert, merge, mix, relay, split
from repro.corpus.topics import TOPICS, Topic, topic_by_name
from repro.errors import CorpusError

__all__ = ["CorpusGenerator", "LabeledCorpus"]

# The paper's cited share of fake news that modifies factual news.
PAPER_MUTATED_FAKE_FRACTION = 0.723


class LabeledCorpus:
    """A generated dataset: articles with ground-truth labels."""

    def __init__(self, articles: list[Article]):
        self.articles = list(articles)
        self.by_id = {a.article_id: a for a in articles}

    def __len__(self) -> int:
        return len(self.articles)

    def __iter__(self):
        return iter(self.articles)

    @property
    def fakes(self) -> list[Article]:
        return [a for a in self.articles if a.label_fake]

    @property
    def factual(self) -> list[Article]:
        return [a for a in self.articles if not a.label_fake]

    def texts_and_labels(self) -> tuple[list[str], list[int]]:
        """(texts, labels) with label 1 = fake, for classifier training."""
        return [a.text for a in self.articles], [int(a.label_fake) for a in self.articles]


class CorpusGenerator:
    """Synthesizes articles, derivations, and whole labeled corpora."""

    def __init__(self, seed: int = 0, topics: tuple[Topic, ...] = TOPICS):
        self.rng = random.Random(seed)
        self.topics = topics
        self._ids = itertools.count(1)
        self._author_ids = itertools.count(1)

    # -- identities ---------------------------------------------------------

    def _next_id(self) -> str:
        return f"art-{next(self._ids):06d}"

    def next_author(self) -> str:
        return f"author-{next(self._author_ids):04d}"

    def _finish(self, article: Article) -> Article:
        return article.with_id(self._next_id())

    # -- single articles -------------------------------------------------------

    def factual(
        self,
        topic: str | None = None,
        author: str | None = None,
        timestamp: float = 0.0,
        n_sentences: int = 6,
    ) -> Article:
        """A fresh factual seed article."""
        chosen = topic_by_name(topic) if topic else self.rng.choice(self.topics)
        article = make_factual_article(
            chosen, author or self.next_author(), timestamp, self.rng, n_sentences
        )
        return self._finish(article)

    def fabricated(
        self,
        topic: str | None = None,
        author: str | None = None,
        timestamp: float = 0.0,
        n_sentences: int = 6,
    ) -> Article:
        """A from-whole-cloth fake article."""
        chosen = topic_by_name(topic) if topic else self.rng.choice(self.topics)
        article = make_fabricated_article(
            chosen, author or self.next_author(), timestamp, self.rng, n_sentences
        )
        return self._finish(article)

    # -- derivations ----------------------------------------------------------------

    def relay_derivation(self, parent: Article, author: str, timestamp: float) -> Article:
        """A faithful re-share with a fresh article id."""
        return self._finish(relay(parent, author, timestamp))

    def insertion_fake(
        self, parent: Article, author: str, timestamp: float, n_insertions: int = 4
    ) -> Article:
        """The canonical high-virality fake: the factual core enveloped
        in emotional/clickbait sentences (the 72.3 % pattern)."""
        return self._finish(insert(parent, author, timestamp, self.rng, n_insertions))

    def benign_derivation(
        self, parent: Article, author: str, timestamp: float, pool: list[Article] | None = None
    ) -> Article:
        """A good-faith share: relay, quote, or aggregation digest."""
        choice = self.rng.random()
        if choice < 0.6 or pool is None or len(pool) < 2:
            derived = relay(parent, author, timestamp)
        elif choice < 0.85:
            derived = split(parent, author, timestamp, self.rng, keep_fraction=0.6)
        else:
            other = self.rng.choice([a for a in pool if a.article_id != parent.article_id])
            derived = merge([parent, other], author, timestamp)
        return self._finish(derived)

    def malicious_derivation(
        self, parent: Article, author: str, timestamp: float, pool: list[Article] | None = None
    ) -> Article:
        """A bad-faith modification guaranteed to cross the fake threshold.

        Recipes follow the paper's taxonomy: emotional insertion (the
        dominant pattern), semantic distortion, or mixing two stories and
        sensationalizing the blend.
        """
        choice = self.rng.random()
        if choice < 0.5:
            derived = insert(parent, author, timestamp, self.rng, n_insertions=self.rng.randint(2, 4))
        elif choice < 0.8:
            derived = distort(parent, author, timestamp, self.rng)
        else:
            if pool is not None and len(pool) >= 2:
                other = self.rng.choice([a for a in pool if a.article_id != parent.article_id])
                blended = self._finish(mix(parent, other, author, timestamp, self.rng))
                derived = insert(blended, author, timestamp, self.rng, n_insertions=2)
            else:
                derived = distort(parent, author, timestamp, self.rng)
        finished = self._finish(derived)
        if not finished.label_fake:
            # Defensive: a malicious recipe must produce a fake by ground
            # truth; push it over with one more distortion pass.
            finished = self._finish(distort(finished, author, timestamp, self.rng))
        return finished

    # -- whole corpora ------------------------------------------------------------------

    def labeled_corpus(
        self,
        n_factual: int = 300,
        n_fake: int = 300,
        mutated_fake_fraction: float = PAPER_MUTATED_FAKE_FRACTION,
        benign_share_fraction: float = 0.35,
        start_time: float = 0.0,
        time_step: float = 1.0,
    ) -> LabeledCorpus:
        """Generate a labeled dataset for classifier / ranking experiments.

        Args:
            n_factual: factual articles (originals + benign derivations).
            n_fake: fake articles (mutations of factual + fabrications).
            mutated_fake_fraction: share of fakes derived from factual
                parents (paper default 72.3 %).
            benign_share_fraction: share of the factual side that is a
                benign derivation rather than an original, so the corpus
                contains honest relays/quotes too.
        """
        if not 0 <= mutated_fake_fraction <= 1:
            raise CorpusError("mutated_fake_fraction must be in [0, 1]")
        if n_factual < 2:
            raise CorpusError("need at least two factual articles")
        clock = start_time
        originals: list[Article] = []
        n_originals = max(2, round(n_factual * (1 - benign_share_fraction)))
        for _ in range(n_originals):
            originals.append(self.factual(timestamp=clock))
            clock += time_step
        factual_pool = list(originals)
        while len(factual_pool) < n_factual:
            parent = self.rng.choice(originals)
            derived = self.benign_derivation(parent, self.next_author(), clock, pool=originals)
            factual_pool.append(derived)
            clock += time_step
        fakes: list[Article] = []
        n_mutated = round(n_fake * mutated_fake_fraction)
        for _ in range(n_mutated):
            parent = self.rng.choice(originals)
            fakes.append(self.malicious_derivation(parent, self.next_author(), clock, pool=originals))
            clock += time_step
        while len(fakes) < n_fake:
            fakes.append(self.fabricated(timestamp=clock))
            clock += time_step
        articles = factual_pool + fakes
        self.rng.shuffle(articles)
        return LabeledCorpus(articles)
