"""Whole-system determinism: same seeds, bit-identical ledgers.

Reproducibility is a design invariant (DESIGN.md §6): every random
draw flows through explicit seeds, so running the same scenario twice
must produce identical chains — block hashes, state digests, rankings,
everything.  This is what makes every experiment in EXPERIMENTS.md
exactly re-runnable.
"""

from repro.core import TrustingNewsPlatform
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.social import build_social_world, run_races


def _run_scenario(seed: int) -> TrustingNewsPlatform:
    platform = TrustingNewsPlatform(seed=seed)
    gen = CorpusGenerator(seed=seed + 1)
    fact = gen.factual(topic="economy")
    platform.seed_fact("f-d", fact.text, "stats", "economy")
    platform.register_participant("pub", role="publisher")
    platform.create_distribution_platform("pub", "det-wire")
    platform.create_news_room("pub", "det-wire", "desk", "economy")
    platform.register_participant("journo", role="journalist")
    platform.authenticate_journalist("det-wire", "journo")
    for index in range(4):
        if index % 2 == 0:
            article = relay(fact, "journo", float(index))
        else:
            article = gen.malicious_derivation(relay(fact, "x", 0.0), "journo", float(index))
        platform.publish_article("journo", "det-wire", "desk", f"d-{index}",
                                 article.text, "economy")
        platform.register_participant(f"v-{index}", role="checker")
        platform.cast_vote(f"v-{index}", f"d-{index}", verdict=index % 2 == 0)
        platform.rank_article(f"d-{index}")
    return platform


def test_platform_ledger_bit_identical_across_runs():
    a = _run_scenario(seed=4242)
    b = _run_scenario(seed=4242)
    assert a.chain.ledger.height == b.chain.ledger.height
    for height in range(a.chain.ledger.height + 1):
        assert (
            a.chain.ledger.block(height).block_hash
            == b.chain.ledger.block(height).block_hash
        ), f"divergence at height {height}"
    assert a.chain.state.state_digest() == b.chain.state.state_digest()


def test_different_seed_different_ledger():
    a = _run_scenario(seed=4242)
    b = _run_scenario(seed=4243)
    assert a.chain.state.state_digest() != b.chain.state.state_digest()


def test_social_world_deterministic():
    first = build_social_world(n_agents=150, seed=9)
    second = build_social_world(n_agents=150, seed=9)
    assert sorted(first[0].edges()) == sorted(second[0].edges())
    assert [(a.agent_id, a.kind, a.malicious) for a in first[1]] == [
        (a.agent_id, a.kind, a.malicious) for a in second[1]
    ]


def test_race_summary_deterministic():
    a = run_races(n_trials=3, n_agents=150, seed=77, intervene=True)
    b = run_races(n_trials=3, n_agents=150, seed=77, intervene=True)
    assert a.mean_factual == b.mean_factual
    assert a.mean_fake == b.mean_fake
    assert a.mean_fake_curve == b.mean_fake_curve
