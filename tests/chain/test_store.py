"""Unit tests for the durable storage engine (:mod:`repro.chain.store`).

Covers the pieces bottom-up: the fault-injectable :class:`SimDisk`
crash semantics, the checksummed length-prefixed block log and its
scan/truncate behaviour, the codec round trip, the snapshot fallback
ladder, and the :class:`DurableStore` end-to-end build → crash →
recover cycle, including the acked-write reconciliation that backs the
auditor's storage-durability invariant.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.chain.block import Block, make_genesis_block
from repro.chain.ledger import Ledger
from repro.chain.state import WorldState
from repro.chain.store import (
    DurableStore,
    MemoryStore,
    SQLiteStore,
    decode_record,
    encode_record,
    inspect_disk,
    list_snapshots,
    load_snapshot,
    render_inspection,
    scan_log_bytes,
    write_snapshot,
)
from repro.chain.store.log import BlockLog
from repro.chain.transaction import Transaction, TxReceipt
from repro.crypto import KeyPair
from repro.obs import MetricsRegistry
from repro.simnet.disk import SimDisk


@pytest.fixture
def keypair():
    return KeyPair.generate(random.Random(0))


#: Backend-agnostic contract tests run against both durable backends —
#: SQLiteStore must honour every recovery-ladder promise DurableStore
#: makes (same log, different snapshot media).
@pytest.fixture(params=["durable", "sqlite"])
def store_cls(request):
    return {"durable": DurableStore, "sqlite": SQLiteStore}[request.param]


def _tx(keypair, nonce):
    tx = Transaction.create(keypair, "counter", "increment", {"n": nonce}, nonce=nonce)
    return tx.with_execution(
        read_set={}, write_set={f"counter/{nonce % 3}": nonce},
        events=({"kind": "bump", "n": nonce},), return_value=nonce,
        endorsements=(),
    )


def _build_chain(keypair, n_blocks, txs_per_block=2):
    """A ledger + matching (block, validity, errors) commit sequence."""
    ledger = Ledger()
    commits = []
    nonce = 0
    for height in range(1, n_blocks + 1):
        txs = []
        for _ in range(txs_per_block):
            txs.append(_tx(keypair, nonce))
            nonce += 1
        block = Block.build(height, ledger.head.block_hash, float(height), "peer-0", txs)
        validity = [tx.nonce % 5 != 3 for tx in txs]
        errors = [None if ok else "MVCC conflict: stale read set" for ok in validity]
        ledger.append(block, validity)
        commits.append((block, validity, errors))
    return ledger, commits


def _populate(store, commits, snapshots=False):
    """Replay *commits* through the store as a live peer would: log each
    block, apply its writes, and (with *snapshots*) offer the store a
    snapshot after every commit against an incrementally-grown ledger."""
    state = WorldState()
    receipts = {}
    ledger = Ledger() if snapshots else None
    for block, validity, errors in commits:
        store.on_commit(block, validity, proof=None, errors=errors)
        for index, tx in enumerate(block.transactions):
            verdict = validity[index]
            if verdict:
                state.apply_write_set(tx.write_set)
            receipt = TxReceipt(
                tx_id=tx.tx_id, block_height=block.height, success=verdict,
                return_value=tx.return_value if verdict else None,
                events=tx.events if verdict else (), error=errors[index],
            )
            existing = receipts.get(tx.tx_id)
            if existing is None or verdict or not existing.success:
                receipts[tx.tx_id] = receipt
        if ledger is not None:
            ledger.append(block, validity)
            store.maybe_snapshot(ledger, state, receipts)
    return state


# -- SimDisk crash semantics ----------------------------------------------


def test_simdisk_pending_bytes_die_on_crash():
    disk = SimDisk("n0")
    disk.append("f", b"durable")
    disk.fsync("f")
    disk.append("f", b"pending")
    assert disk.read("f") == b"durable"  # reads only see durable bytes
    disk.on_crash()
    assert disk.read("f") == b"durable"
    disk.append("f", b"more")
    disk.fsync("f")
    assert disk.read("f") == b"durablemore"


def test_simdisk_partial_flush_rolls_back_fsynced_generations():
    disk = SimDisk("n0")
    disk.set_role("f", "log")
    for chunk in (b"aa", b"bb", b"cc", b"dd"):
        disk.append("f", chunk)
        disk.fsync("f")
    disk.arm_partial_flush(k=2)
    faults = disk.on_crash()
    assert [f.kind for f in faults] == ["partial-flush"]
    # The last two *acknowledged* fsync generations vanished.
    assert disk.read("f") == b"aabb"


def test_simdisk_torn_write_keeps_random_prefix_of_last_generation():
    disk = SimDisk("n0", rng=random.Random(1))
    disk.set_role("f", "log")
    disk.append("f", b"x" * 10)
    disk.fsync("f")
    disk.append("f", b"y" * 100)
    disk.fsync("f")
    disk.arm_torn_write()
    faults = disk.on_crash()
    assert [f.kind for f in faults] == ["torn-write"]
    data = disk.read("f")
    assert data.startswith(b"x" * 10)  # older generations untouched
    assert 10 <= len(data) < 110  # last generation survives only partially


def test_simdisk_bitflip_corrupts_one_durable_byte():
    disk = SimDisk("n0", rng=random.Random(2))
    disk.set_role("f", "log")
    disk.append("f", b"\x00" * 64)
    disk.fsync("f")
    assert disk.corrupt(role="log") == "f"
    data = disk.read("f")
    assert len(data) == 64 and data != b"\x00" * 64
    assert sum(bin(b).count("1") for b in data) == 1  # exactly one bit


def test_simdisk_truncate_discards_marks_and_pending():
    disk = SimDisk("n0")
    disk.append("f", b"abcdef")
    disk.fsync("f")
    disk.append("f", b"zz")
    disk.truncate("f", 3)
    assert disk.read("f") == b"abc"
    disk.append("f", b"XY")
    disk.fsync("f")
    assert disk.read("f") == b"abcXY"


# -- block log framing ------------------------------------------------------


def test_log_roundtrip_and_scan(keypair):
    disk = SimDisk("n0")
    log = BlockLog(disk)
    payloads = [f"payload-{i}".encode() for i in range(1, 4)]
    for height, payload in enumerate(payloads, start=1):
        log.append(height, payload)
    scan = log.scan()
    assert scan.failure is None
    assert [r.height for r in scan.records] == [1, 2, 3]
    assert [r.payload for r in scan.records] == payloads
    assert scan.valid_length == scan.total_length == disk.size(log.name)


def test_log_scan_truncates_torn_tail():
    disk = SimDisk("n0")
    log = BlockLog(disk)
    log.append(1, b"one")
    log.append(2, b"two")
    whole = disk.read(log.name)
    torn = whole[: len(whole) - 2]  # tear 2 bytes off the last record
    scan = scan_log_bytes(torn)
    assert scan.failure == "torn-tail"
    assert [r.height for r in scan.records] == [1]
    assert scan.valid_length < len(torn)


def test_log_scan_detects_bitflip_as_crc_mismatch():
    disk = SimDisk("n0", rng=random.Random(3))
    log = BlockLog(disk)
    log.append(1, b"one" * 20)
    log.append(2, b"two" * 20)
    data = bytearray(disk.read(log.name))
    data[-5] ^= 0x10  # flip inside the last record's payload
    scan = scan_log_bytes(bytes(data))
    assert scan.failure == "crc-mismatch"
    assert [r.height for r in scan.records] == [1]


def test_log_scan_rejects_height_gap():
    disk = SimDisk("n0")
    log = BlockLog(disk)
    log.append(1, b"one")
    log.append(3, b"three")  # a rolled-back disk re-appended past a hole
    scan = log.scan()
    assert scan.failure == "height-gap"
    assert [r.height for r in scan.records] == [1]


def test_log_scan_rejects_garbage_magic():
    scan = scan_log_bytes(b"XX" + b"\x00" * 30)
    assert scan.failure == "bad-magic"
    assert scan.records == []
    assert scan.valid_length == 0


# -- codec ------------------------------------------------------------------


def test_record_codec_roundtrip(keypair):
    _, commits = _build_chain(keypair, 1, txs_per_block=3)
    block, validity, errors = commits[0]
    proof = {"signers": ["a", "b", "c"], "signatures": {"a": "00ff"}}
    payload = encode_record(block, validity, errors, proof)
    decoded_block, decoded_validity, decoded_errors, decoded_proof = decode_record(payload)
    assert decoded_block == block
    assert decoded_block.block_hash == block.block_hash
    assert decoded_validity == validity
    assert decoded_errors == errors
    assert decoded_proof == proof
    # Determinism: identical input bytes on every encode.
    assert payload == encode_record(block, validity, errors, proof)


# -- DurableStore end to end ------------------------------------------------


def test_durable_store_recovers_full_replay(keypair, store_cls):
    ledger, commits = _build_chain(keypair, 5)
    store = store_cls(disk=SimDisk("n0"), snapshot_interval=100)
    state = _populate(store, commits)
    recovered = store.recover()
    assert recovered.report.mode == "full-replay"
    assert recovered.ledger.height == 5
    assert recovered.ledger.head.block_hash == ledger.head.block_hash
    assert recovered.state.state_digest() == state.state_digest()
    assert recovered.report.degradations == []
    assert recovered.report.missing_acked == {}


def test_durable_store_recovers_snapshot_plus_tail(keypair, store_cls):
    ledger, commits = _build_chain(keypair, 10)
    store = store_cls(disk=SimDisk("n0"), snapshot_interval=4)
    state = _populate(store, commits, snapshots=True)
    assert store.last_snapshot_height == 8
    recovered = store.recover()
    report = recovered.report
    assert report.mode == "snapshot+tail"
    assert report.snapshot_height == 8
    assert report.tail_records == 3  # anchor at 8 + blocks 9, 10
    assert recovered.ledger.height == 10
    assert recovered.state.state_digest() == state.state_digest()
    # The archive window still serves blocks below the snapshot.
    for height in range(0, 11):
        assert recovered.ledger.block(height).block_hash == ledger.block(height).block_hash
    recovered.ledger.verify_chain()


def test_durable_store_receipts_survive_snapshot_recovery(keypair, store_cls):
    ledger, commits = _build_chain(keypair, 10, txs_per_block=3)
    store = store_cls(disk=SimDisk("n0"), snapshot_interval=4)
    _populate(store, commits, snapshots=True)
    recovered = store.recover()
    expected = {
        tx.tx_id: validity[i]
        for block, validity, _ in commits
        for i, tx in enumerate(block.transactions)
    }
    got = {tx_id: r.success for tx_id, r in recovered.receipts.items()}
    assert got == expected
    # Invalid receipts keep the recorded error string through the log.
    failed = next(t for t, ok in expected.items() if not ok)
    assert recovered.receipts[failed].error == "MVCC conflict: stale read set"


def test_torn_tail_truncates_and_reconciles_acked(keypair, store_cls):
    _, commits = _build_chain(keypair, 6)
    disk = SimDisk("n0", rng=random.Random(7))
    store = store_cls(disk=disk, snapshot_interval=100)
    _populate(store, commits)
    disk.arm_torn_write()
    disk.on_crash()
    recovered = store.recover()
    report = recovered.report
    assert recovered.ledger.height == 5
    assert [d.kind for d in report.degradations] == ["torn-tail", "acked-rollback"]
    assert report.missing_acked == {6: "record lost from log"}
    assert sorted(store.acked) == [1, 2, 3, 4, 5]
    # A second recovery sees the already-truncated log: clean this time.
    again = store.recover()
    assert again.report.degradations == []
    assert again.ledger.height == 5


def test_partial_flush_loss_is_counted_not_silent(keypair, store_cls):
    _, commits = _build_chain(keypair, 6)
    disk = SimDisk("n0")
    store = store_cls(disk=disk, snapshot_interval=100)
    registry = MetricsRegistry()
    store.attach(registry, "n0")
    _populate(store, commits)
    disk.arm_partial_flush(k=2)
    disk.on_crash()
    recovered = store.recover()
    report = recovered.report
    # The log is cleanly shorter — only the acked map can see the loss.
    assert recovered.ledger.height == 4
    assert sorted(report.missing_acked) == [5, 6]
    assert [d.kind for d in report.degradations] == ["acked-rollback"]
    counters = {
        c.labels["kind"]: c.value for c in registry.counters("store.degradations")
    }
    assert counters == {"acked-rollback": 1}


def test_corrupt_snapshot_falls_back_to_previous(keypair):
    ledger, commits = _build_chain(keypair, 12)
    disk = SimDisk("n0", rng=random.Random(9))
    store = DurableStore(disk=disk, snapshot_interval=4, keep_snapshots=2)
    state = _populate(store, commits, snapshots=True)
    snapshots = list_snapshots(disk)
    assert [s.height for s in snapshots] == [8, 12]
    assert disk.corrupt(role="snapshot") == snapshots[-1].name
    recovered = store.recover()
    report = recovered.report
    assert report.mode == "snapshot+tail"
    assert report.snapshot_height == 8
    assert [d.kind for d in report.degradations] == ["snapshot-corrupt"]
    assert recovered.ledger.height == 12
    assert recovered.state.state_digest() == state.state_digest()
    # The corrupt artifact was removed; the older snapshot survives.
    assert [s.height for s in list_snapshots(disk)] == [8]


def test_all_snapshots_corrupt_falls_back_to_full_replay(keypair):
    ledger, commits = _build_chain(keypair, 9)
    disk = SimDisk("n0", rng=random.Random(11))
    store = DurableStore(disk=disk, snapshot_interval=4, keep_snapshots=2)
    state = _populate(store, commits, snapshots=True)
    for snapshot in list_snapshots(disk):
        assert disk.corrupt(offset=10, name=snapshot.name) is not None
    recovered = store.recover()
    report = recovered.report
    assert report.mode == "full-replay"
    assert {d.kind for d in report.degradations} == {"snapshot-corrupt"}
    assert recovered.ledger.height == 9
    assert recovered.state.state_digest() == state.state_digest()


def test_snapshot_pruning_keeps_bounded_history(keypair):
    ledger, commits = _build_chain(keypair, 20)
    disk = SimDisk("n0")
    store = DurableStore(disk=disk, snapshot_interval=4, keep_snapshots=2)
    _populate(store, commits, snapshots=True)
    assert [s.height for s in list_snapshots(disk)] == [16, 20]


def test_write_snapshot_rejects_non_positive_keep(keypair):
    """keep <= 0 used to make the prune slice ``[:-keep]`` empty — a
    silent no-op that retained every snapshot forever."""
    ledger, commits = _build_chain(keypair, 1)
    disk = SimDisk("n0")
    for keep in (0, -1):
        with pytest.raises(ValueError, match="keep"):
            write_snapshot(
                disk, 1, ledger.head.block_hash, {}, [], {}, keep=keep
            )
    assert list_snapshots(disk) == []  # nothing was written before the check


def test_store_rejects_non_positive_keep_snapshots(store_cls):
    with pytest.raises(ValueError, match="keep_snapshots"):
        store_cls(disk=SimDisk("n0"), keep_snapshots=0)


def test_snapshot_loader_rejects_tampered_payload(keypair):
    ledger, commits = _build_chain(keypair, 4)
    disk = SimDisk("n0", rng=random.Random(13))
    store = DurableStore(disk=disk, snapshot_interval=4)
    _populate(store, commits, snapshots=True)
    candidate = list_snapshots(disk)[0]
    assert load_snapshot(disk, candidate) is not None
    disk.corrupt(role="snapshot")
    assert load_snapshot(disk, candidate) is None


def test_memory_store_recover_returns_none():
    store = MemoryStore()
    assert store.recover() is None
    assert store.on_commit(make_genesis_block(), []) is True
    assert store.maybe_snapshot(Ledger(), WorldState(), {}) is False


def test_acked_map_tracks_payload_bytes(keypair, store_cls):
    _, commits = _build_chain(keypair, 2)
    store = store_cls(disk=SimDisk("n0"), snapshot_interval=100)
    _populate(store, commits)
    for block, validity, errors in commits:
        expected_crc = zlib.crc32(encode_record(block, validity, errors, None))
        assert store.acked[block.height] == (block.block_hash, expected_crc)


# -- inspection -------------------------------------------------------------


def test_inspect_disk_reports_log_and_snapshots(keypair):
    ledger, commits = _build_chain(keypair, 10)
    disk = SimDisk("n0")
    store = DurableStore(disk=disk, snapshot_interval=4)
    _populate(store, commits, snapshots=True)
    info = inspect_disk(disk)
    assert info["log"]["records"] == 10
    assert info["log"]["tip"] == 10
    assert info["log"]["failure"] is None
    assert [s["height"] for s in info["snapshots"]] == [4, 8]
    assert info["recovery"]["snapshot_height"] == 8
    text = render_inspection(info)
    assert "10 valid records" in text
    assert "snapshot+tail" in text


def test_inspect_surfaces_torn_tail(keypair):
    _, commits = _build_chain(keypair, 3)
    disk = SimDisk("n0", rng=random.Random(17))
    store = DurableStore(disk=disk, snapshot_interval=100)
    _populate(store, commits)
    disk.arm_torn_write()
    disk.on_crash()
    info = inspect_disk(disk)
    assert info["log"]["failure"] == "torn-tail"
    assert info["log"]["records"] == 2
    assert info["log"]["garbage_bytes"] > 0
    assert "torn-tail" in render_inspection(info)
