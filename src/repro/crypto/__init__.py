"""Cryptographic substrate: hashing, Merkle trees, Ed25519 key pairs.

Built from scratch (stdlib ``hashlib`` only) so the blockchain layer has
verifiable, dependency-free primitives.
"""

from repro.crypto.batch import (
    batch_verification,
    batch_verification_enabled,
    set_batch_verification,
    verify_many,
)
from repro.crypto.ed25519 import verify_batch
from repro.crypto.hashing import hash_json, sha256_bytes, sha256_hex, short_id
from repro.crypto.keys import KeyPair, address_from_public_key, verify_signature
from repro.crypto.merkle import EMPTY_ROOT, MerkleProof, MerkleTree

__all__ = [
    "hash_json",
    "sha256_bytes",
    "sha256_hex",
    "short_id",
    "KeyPair",
    "address_from_public_key",
    "verify_signature",
    "verify_batch",
    "verify_many",
    "batch_verification",
    "batch_verification_enabled",
    "set_batch_verification",
    "EMPTY_ROOT",
    "MerkleProof",
    "MerkleTree",
]
