"""Unit tests for the sim-time tracer."""

from repro.obs import MetricsRegistry, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_measures_sim_time():
    clock = FakeClock()
    tracer = Tracer(clock)
    span = tracer.start("fetch", peer="p0")
    clock.now = 2.5
    tracer.finish(span, outcome="ok")
    assert span.finished
    assert span.duration == 2.5
    assert span.attrs["peer"] == "p0"
    assert span.attrs["outcome"] == "ok"
    assert span.attrs["wall_ms"] >= 0.0
    assert tracer.spans("fetch") == [span]


def test_parent_linkage_and_records():
    clock = FakeClock()
    tracer = Tracer(clock)
    parent = tracer.start("commit")
    child = tracer.start("apply", parent=parent)
    tracer.finish(child)
    tracer.finish(parent)
    assert child.parent_id == parent.span_id
    records = tracer.records()
    assert [r["name"] for r in records] == ["apply", "commit"]
    assert all(r["type"] == "span" for r in records)


def test_double_finish_is_idempotent():
    clock = FakeClock()
    tracer = Tracer(clock)
    span = tracer.start("x")
    clock.now = 1.0
    tracer.finish(span)
    clock.now = 9.0
    tracer.finish(span)
    assert span.duration == 1.0
    assert len(tracer.finished) == 1


def test_bounded_span_buffer_evicts_oldest():
    clock = FakeClock()
    tracer = Tracer(clock, max_spans=10)
    for i in range(25):
        tracer.finish(tracer.start(f"s{i}"))
    assert len(tracer.finished) == 10
    assert tracer.dropped == 15
    assert tracer.finished[0].name == "s15"  # oldest were evicted


def test_registry_fed_on_finish():
    clock = FakeClock()
    registry = MetricsRegistry()
    tracer = Tracer(clock, registry=registry)
    span = tracer.start("sync.fetch")
    clock.now = 0.25
    tracer.finish(span)
    hist = registry.histogram("span", phase="sync.fetch")
    assert hist.count == 1
    assert hist.values == [0.25]
    assert registry.total("spans_finished") == 1


def test_trace_contextmanager_finishes_on_exception():
    clock = FakeClock()
    tracer = Tracer(clock)
    try:
        with tracer.trace("work") as span:
            clock.now = 1.5
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert span.finished
    assert span.duration == 1.5
