"""Suppression corpus: the same hazards as det_bad, selectively noqa'd."""

import random
import uuid


def allowed_ambient() -> float:
    return random.random()  # repro: noqa[DET001] fixture: suppression demo


def allowed_everything() -> str:
    return uuid.uuid4().hex  # repro: noqa


def wrong_rule() -> float:
    return random.random()  # repro: noqa[DET003] wrong id: DET001 must survive
