"""Block building/validation and ledger append/query/audit."""

import dataclasses
import random

import pytest

from repro.chain.block import GENESIS_PREV_HASH, Block, make_genesis_block
from repro.chain.ledger import Ledger
from repro.chain.transaction import Transaction
from repro.crypto import KeyPair
from repro.errors import InvalidBlockError


def _tx(keypair, nonce, contract="counter", method="increment"):
    return Transaction.create(keypair, contract, method, {"n": nonce}, nonce=nonce)


@pytest.fixture
def keypair():
    return KeyPair.generate(random.Random(0))


@pytest.fixture
def chain(keypair):
    ledger = Ledger()
    txs = [_tx(keypair, i) for i in range(3)]
    block = Block.build(1, ledger.head.block_hash, 1.0, "peer-0", txs)
    ledger.append(block, [True, True, False])
    return ledger, txs


def test_genesis_shape():
    genesis = make_genesis_block()
    assert genesis.height == 0
    assert genesis.prev_hash == GENESIS_PREV_HASH
    assert len(genesis) == 0
    genesis.verify_structure()


def test_block_hash_covers_header(keypair):
    block = Block.build(1, "aa" * 32, 1.0, "p", [_tx(keypair, 1)])
    tampered = dataclasses.replace(block, timestamp=2.0)
    with pytest.raises(InvalidBlockError):
        tampered.verify_structure()


def test_block_merkle_covers_transactions(keypair):
    block = Block.build(1, "aa" * 32, 1.0, "p", [_tx(keypair, 1)])
    swapped = dataclasses.replace(block, transactions=(_tx(keypair, 2),))
    with pytest.raises(InvalidBlockError):
        swapped.verify_structure()


def test_block_inclusion_proof(keypair):
    txs = [_tx(keypair, i) for i in range(5)]
    block = Block.build(1, "aa" * 32, 1.0, "p", txs)
    proof = block.prove_inclusion(txs[2].tx_id)
    assert proof.verify(block.merkle_root)
    with pytest.raises(InvalidBlockError):
        block.prove_inclusion("ff" * 32)


def test_ledger_append_and_lookup(chain):
    ledger, txs = chain
    assert ledger.height == 1
    committed = ledger.get_transaction(txs[0].tx_id)
    assert committed is not None and committed.valid
    assert ledger.get_transaction(txs[2].tx_id).valid is False
    assert ledger.get_transaction("nope") is None
    assert txs[1].tx_id in ledger


def test_ledger_rejects_wrong_height(chain, keypair):
    ledger, _ = chain
    block = Block.build(5, ledger.head.block_hash, 2.0, "p", [])
    with pytest.raises(InvalidBlockError):
        ledger.append(block, [])


def test_ledger_rejects_wrong_prev_hash(chain):
    ledger, _ = chain
    block = Block.build(2, "bb" * 32, 2.0, "p", [])
    with pytest.raises(InvalidBlockError):
        ledger.append(block, [])


def test_ledger_rejects_validity_length_mismatch(chain, keypair):
    ledger, _ = chain
    block = Block.build(2, ledger.head.block_hash, 2.0, "p", [_tx(keypair, 10)])
    with pytest.raises(InvalidBlockError):
        ledger.append(block, [True, True])


def test_transactions_iteration_valid_only(chain):
    ledger, txs = chain
    valid_ids = [c.transaction.tx_id for c in ledger.transactions()]
    all_ids = [c.transaction.tx_id for c in ledger.transactions(valid_only=False)]
    assert len(valid_ids) == 2 and len(all_ids) == 3


def test_query_by_sender_and_contract(chain, keypair):
    ledger, txs = chain
    assert len(ledger.transactions_by_sender(keypair.address)) == 3
    assert len(ledger.transactions_by_contract("counter")) == 3
    assert ledger.transactions_by_contract("other") == []


def test_verify_chain_passes(chain):
    ledger, _ = chain
    assert ledger.verify_chain()


def test_total_transactions(chain):
    ledger, _ = chain
    assert ledger.total_transactions() == 3


def test_append_is_atomic_under_hostile_transaction(chain, keypair):
    """An exception raised while indexing must leave the ledger untouched.

    The seed appended the block *before* building the indexes, so a
    transaction object whose attributes raise mid-indexing left the
    block committed but (partly) invisible to tx_locator/by_sender — a
    torn index.  Merkle verification only reads ``tx_id``, so a hostile
    object can legitimately get that far.
    """

    class _HostileTx:
        def __init__(self, tx):
            self._tx = tx

        def __getattr__(self, item):
            if item == "contract":
                raise RuntimeError("hostile attribute access")
            return getattr(self._tx, item)

    ledger, _ = chain
    good, bad = _tx(keypair, 20), _tx(keypair, 21)
    block = Block.build(2, ledger.head.block_hash, 2.0, "p", [good, _HostileTx(bad)])
    before_height = ledger.height
    before_locators = dict(ledger._tx_locator)
    with pytest.raises(RuntimeError, match="hostile"):
        ledger.append(block, [True, True])
    assert ledger.height == before_height
    assert ledger._tx_locator == before_locators
    assert ledger.get_transaction(good.tx_id) is None
    assert len(ledger.transactions_by_sender(keypair.address)) == 3  # fixture only
    # The ledger still accepts the block once the transactions behave.
    clean = Block.build(2, ledger.head.block_hash, 2.0, "p", [good, bad])
    ledger.append(clean, [True, True])
    assert ledger.get_transaction(good.tx_id).valid
