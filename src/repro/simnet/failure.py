"""Failure injection for the simulated network.

Experiments need repeatable fault schedules: crash a peer at t=5, heal a
partition at t=30, make two validators byzantine from the start.  The
:class:`FailureSchedule` records what it did so tests can assert the
faults actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.events import Simulator
from repro.simnet.network import Network

__all__ = ["FailureEvent", "FailureSchedule"]


@dataclass(frozen=True)
class FailureEvent:
    """A fault that fired: (time, action, target)."""

    time: float
    action: str
    target: str


@dataclass
class FailureSchedule:
    """Declarative fault schedule bound to a network and simulator."""

    sim: Simulator
    network: Network
    log: list[FailureEvent] = field(default_factory=list)

    def crash_at(self, time: float, node_id: str) -> None:
        """Crash-stop *node_id* at absolute simulated *time*."""
        self.sim.schedule_at(time, lambda: self._crash(node_id, time))

    def recover_at(self, time: float, node_id: str) -> None:
        """Bring a crashed node back (it resumes from its last state)."""
        self.sim.schedule_at(time, lambda: self._recover(node_id, time))

    def partition_at(self, time: float, *groups: set[str]) -> None:
        """Install a partition at *time*."""
        frozen = [set(g) for g in groups]
        self.sim.schedule_at(time, lambda: self._partition(frozen, time))

    def heal_at(self, time: float) -> None:
        """Heal all partitions at *time*."""
        self.sim.schedule_at(time, lambda: self._heal(time))

    # -- implementations -------------------------------------------------

    def _crash(self, node_id: str, time: float) -> None:
        self.network.node(node_id).crashed = True
        self.log.append(FailureEvent(time=time, action="crash", target=node_id))

    def _recover(self, node_id: str, time: float) -> None:
        self.network.node(node_id).crashed = False
        self.log.append(FailureEvent(time=time, action="recover", target=node_id))

    def _partition(self, groups: list[set[str]], time: float) -> None:
        self.network.partition(*groups)
        self.log.append(
            FailureEvent(time=time, action="partition", target="|".join(",".join(sorted(g)) for g in groups))
        )

    def _heal(self, time: float) -> None:
        self.network.heal()
        self.log.append(FailureEvent(time=time, action="heal", target="*"))
