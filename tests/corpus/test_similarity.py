"""Shingles, Jaccard, MinHash estimation, cosine similarity."""

import pytest

from repro.corpus import (
    CorpusGenerator,
    cosine_similarity,
    estimated_jaccard,
    jaccard,
    minhash_signature,
    shingles,
    tokenize,
)


def test_tokenize_normalizes():
    assert tokenize("Hello, World! 42") == ["hello", "world", "42"]
    assert tokenize("") == []


def test_shingles_basic():
    result = shingles("a b c d", k=3)
    assert result == {"a b c", "b c d"}


def test_shingles_short_text():
    assert shingles("a b", k=3) == {"a b"}
    assert shingles("", k=3) == set()


def test_jaccard_bounds():
    a, b = {"x", "y"}, {"y", "z"}
    assert jaccard(a, a) == 1.0
    assert jaccard(a, {"q"}) == 0.0
    assert jaccard(a, b) == pytest.approx(1 / 3)
    assert jaccard(set(), set()) == 1.0
    assert jaccard(a, set()) == 0.0


def test_minhash_identical_sets():
    sh = shingles("the quick brown fox jumps over the lazy dog", 2)
    sig = minhash_signature(sh)
    assert estimated_jaccard(sig, sig) == 1.0


def test_minhash_estimates_jaccard():
    gen = CorpusGenerator(seed=8)
    parent = gen.factual()
    child = gen.relay_derivation(parent, "x", 1.0)
    other = gen.factual()
    sh_parent, sh_child, sh_other = (
        shingles(parent.text), shingles(child.text), shingles(other.text)
    )
    exact_close = jaccard(sh_child, sh_parent)
    exact_far = jaccard(sh_child, sh_other)
    est_close = estimated_jaccard(minhash_signature(sh_child), minhash_signature(sh_parent))
    est_far = estimated_jaccard(minhash_signature(sh_child), minhash_signature(sh_other))
    assert abs(est_close - exact_close) < 0.2
    assert est_close > est_far  # ordering preserved


def test_minhash_signature_length_mismatch():
    with pytest.raises(ValueError):
        estimated_jaccard((1, 2), (1, 2, 3))


def test_minhash_empty_set():
    sig = minhash_signature(set(), n_hashes=16)
    assert len(sig) == 16


def test_cosine_identical():
    assert cosine_similarity("a b c", "a b c") == pytest.approx(1.0)


def test_cosine_disjoint():
    assert cosine_similarity("a b", "x y") == 0.0


def test_cosine_empty():
    assert cosine_similarity("", "a") == 0.0


def test_cosine_order_blind():
    assert cosine_similarity("a b c", "c b a") == pytest.approx(1.0)


def test_shingle_similarity_order_sensitive():
    # Unlike cosine, shingles notice reordering — why provenance uses them.
    same_words_reordered = jaccard(shingles("a b c d e f"), shingles("f e d c b a"))
    assert same_words_reordered < 0.5
