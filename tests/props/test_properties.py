"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.state import WorldState
from repro.corpus import CorpusGenerator, jaccard, measured_change, shingles
from repro.corpus.mutations import insert, relay, split
from repro.corpus.topics import TOPICS
from repro.crypto import KeyPair, MerkleTree
from repro.crypto.hashing import sha256_hex
from repro.ml.metrics import roc_auc
import numpy as np
import pytest

# Shared strategies -----------------------------------------------------------

hex_digests = st.integers(min_value=0).map(lambda i: sha256_hex(str(i).encode()))
texts = st.lists(
    st.sampled_from("alpha beta gamma delta epsilon zeta eta theta".split()),
    min_size=1, max_size=40,
).map(" ".join)


# Merkle ---------------------------------------------------------------------


@given(st.lists(hex_digests, min_size=1, max_size=64))
@settings(max_examples=40, deadline=None)
def test_merkle_every_proof_verifies(leaves):
    tree = MerkleTree(leaves)
    for index in range(len(leaves)):
        assert tree.prove(index).verify(tree.root)


@given(st.lists(hex_digests, min_size=2, max_size=32, unique=True), st.data())
@settings(max_examples=40, deadline=None)
def test_merkle_root_sensitive_to_any_leaf(leaves, data):
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    mutated = list(leaves)
    mutated[index] = sha256_hex(b"tampered" + str(index).encode())
    if mutated[index] != leaves[index]:
        assert MerkleTree(mutated).root != MerkleTree(leaves).root


# Ed25519 ---------------------------------------------------------------------


@given(st.binary(min_size=0, max_size=64), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_sign_verify_roundtrip(message, seed):
    keypair = KeyPair.generate(random.Random(seed))
    assert keypair.verify(message, keypair.sign(message))


# World-state MVCC --------------------------------------------------------------


@given(
    st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.one_of(st.none(), st.integers(), st.text(max_size=5)),
            max_size=4,
        ),
        max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_state_snapshot_freshness_invariant(write_sets):
    """A snapshot's read set validates iff no later commit touched its keys."""
    state = WorldState()
    state.apply_write_set({"a": 0, "b": 0})
    snap = state.snapshot()
    snap.get("a")
    snap.get("b")
    touched = False
    for write_set in write_sets:
        if write_set:
            state.apply_write_set(write_set)
            if {"a", "b"} & set(write_set):
                touched = True
    assert state.validate_read_set(snap.read_set) == (not touched)


@given(st.dictionaries(st.text(min_size=1, max_size=3), st.integers(), max_size=6))
@settings(max_examples=50, deadline=None)
def test_state_apply_then_read_roundtrip(write_set):
    state = WorldState()
    state.apply_write_set(write_set)
    for key, value in write_set.items():
        if value is None:
            assert key not in state
        else:
            assert state.get(key) == value


# Corpus mutations ----------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_relay_fixpoint_and_insert_monotone(seed, n_insertions):
    rng = random.Random(seed)
    gen = CorpusGenerator(seed=seed % 100)
    article = gen.factual()
    relayed = relay(article, "x", 1.0)
    assert relayed.text == article.text
    assert relayed.modification_degree == 0.0
    mutated = insert(article, "x", 1.0, rng, n_insertions=n_insertions)
    assert mutated.modification_degree > 0.0
    assert mutated.cumulative_distortion >= article.cumulative_distortion


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_split_is_substring_content(seed):
    rng = random.Random(seed)
    gen = CorpusGenerator(seed=seed % 100)
    article = gen.factual()
    quoted = split(article, "x", 1.0, rng, keep_fraction=0.5)
    for sentence in quoted.sentences:
        assert sentence in article.text


@given(texts, texts)
@settings(max_examples=60, deadline=None)
def test_measured_change_is_metric_like(a, b):
    assert measured_change([a], a) == 0.0
    assert 0.0 <= measured_change([a], b) <= 1.0
    # Symmetry of the underlying multiset Jaccard.
    assert abs(measured_change([a], b) - measured_change([b], a)) < 1e-12


@given(texts, texts)
@settings(max_examples=60, deadline=None)
def test_jaccard_bounds_and_identity(a, b):
    sa, sb = shingles(a), shingles(b)
    value = jaccard(sa, sb)
    assert 0.0 <= value <= 1.0
    assert jaccard(sa, sa) == 1.0


# Metrics ---------------------------------------------------------------------------


@given(
    st.lists(st.tuples(st.booleans(), st.floats(min_value=0, max_value=1)),
             min_size=4, max_size=60).filter(
        lambda rows: any(label for label, _ in rows) and any(not label for label, _ in rows)
    )
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
def test_auc_complement_symmetry(rows):
    """AUC(y, s) + AUC(y, -s) == 1 (with midrank tie handling)."""
    y = np.array([int(label) for label, _ in rows])
    s = np.array([score for _, score in rows])
    assert roc_auc(y, s) + roc_auc(y, -s) == 1.0


@given(
    st.lists(
        # Quantized scores: raw float strategies produce denormals whose
        # distinctness an affine transform destroys (10 * 1e-157 + 3 == 3.0),
        # manufacturing ties that are a float artifact, not an AUC bug.
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=1000).map(lambda v: v / 1000)),
        min_size=4, max_size=60,
    ).filter(
        lambda rows: any(label for label, _ in rows) and any(not label for label, _ in rows)
    )
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
def test_auc_invariant_under_monotone_transform(rows):
    y = np.array([int(label) for label, _ in rows])
    s = np.array([score for _, score in rows])
    assert roc_auc(y, s) == pytest.approx(roc_auc(y, s * 10 + 3))


# Corpus generator -------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=10, deadline=None)
def test_generator_labels_consistent(seed):
    corpus = CorpusGenerator(seed=seed).labeled_corpus(n_factual=20, n_fake=20)
    assert len(corpus.fakes) == 20
    assert len(corpus.factual) == 20
    for article in corpus:
        assert article.topic in {t.name for t in TOPICS}
        assert 0.0 <= article.modification_degree <= 1.0
        assert 0.0 <= article.cumulative_distortion <= 1.0
