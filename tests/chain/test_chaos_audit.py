"""Seeded chaos runs with the invariant auditor always on.

Each case generates a deterministic fault plan (crashes, partitions,
latency spikes, rogue vote-flooders) from its seed via
:class:`~repro.simnet.chaos.ChaosSchedule`, drives client traffic
through it, and lets :class:`~repro.chain.audit.InvariantAuditor` verify
agreement, certificate validity, tx durability, state convergence, and
catch-up liveness (every recovered/restarted peer back at the head) —
incrementally after every commit, and in a full forensic pass at the
end.

The default parametrization keeps tier-1 fast; the ``chaos`` marker
(``make chaos`` / ``pytest -m chaos``) runs a much wider seed sweep.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import BlockchainNetwork, InvariantAuditor
from repro.simnet import ChaosSchedule, UniformLatency

DEFAULT_SEEDS = range(10)
EXTENDED_SEEDS = range(10, 40)


def run_chaos_audited(
    seed: int,
    consensus: str = "pbft",
    duration: float = 24.0,
    settle: float = 40.0,
    n_txs: int = 12,
    pipeline_depth: int = 4,
) -> tuple[BlockchainNetwork, InvariantAuditor, ChaosSchedule]:
    """One audited chaos run; returns the network, auditor, and schedule."""
    from tests.conftest import CounterContract

    rng = random.Random(seed)
    network = BlockchainNetwork(
        n_peers=4, consensus=consensus, block_interval=0.5,
        latency=UniformLatency(0.01, 0.08), seed=seed, view_timeout=4.0,
        drop_probability=rng.choice([0.0, 0.02]),
        pipeline_depth=pipeline_depth,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)  # strict: violations raise mid-run
    chaos = ChaosSchedule(network.sim, network.net, seed=seed)
    scenarios = ("crash", "partition", "latency", "rogue") if consensus == "pbft" else (
        "crash", "partition", "latency")
    chaos.plan(duration, validators=[p.node_id for p in network.peers],
               scenarios=scenarios)
    client = network.client()
    for _ in range(n_txs):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.run_for(rng.uniform(0.4, duration / n_txs))
    network.run_for(max(0.0, duration - network.sim.now) + settle)
    network.stop()
    # sync_window spans the whole settle: a peer recovered late in the
    # plan may be re-crashed by the next window before it can catch up,
    # so per-event latency is only bounded by the final quiet period.
    auditor.final_check(failures=chaos.log, sync_window=duration + settle)
    return network, auditor, chaos


@pytest.mark.parametrize("seed", DEFAULT_SEEDS)
def test_chaos_audit_pbft(seed):
    network, auditor, chaos = run_chaos_audited(seed)
    assert auditor.violations == []
    assert auditor.blocks_audited > 0, "chaos plan starved the run entirely"
    assert auditor.tracked_txs, "no transactions were tracked"
    # The plan actually injected faults (the schedule logs what fired).
    assert chaos.log, "chaos plan injected nothing"
    # Rogue flooders (if the plan spawned any) were rejected wholesale.
    if chaos.flooders:
        assert sum(f.messages_flooded for f in chaos.flooders) > 0
        assert sum(p.engine.votes_rejected_nonvalidator for p in network.peers) > 0
    # Every peer that came back (pause or restart) caught up in finite time.
    for event, latency in auditor.catchup_latencies(chaos.log):
        assert latency is not None, f"{event.target} never caught up after {event.action}"


@pytest.mark.parametrize("seed", [0, 3])
def test_chaos_audit_poa(seed):
    """The auditor is engine-agnostic: agreement/durability/convergence
    hold for the PoA orderer too (certificates are PBFT-only)."""
    network, auditor, chaos = run_chaos_audited(seed, consensus="poa")
    assert auditor.violations == []
    assert auditor.blocks_audited > 0


def test_determinism_same_seed_same_run():
    """A chaos run is a pure function of its seed."""
    network_a, auditor_a, chaos_a = run_chaos_audited(5)
    network_b, auditor_b, chaos_b = run_chaos_audited(5)
    assert network_a.committed_heights() == network_b.committed_heights()
    assert [(e.time, e.action, e.target) for e in chaos_a.log] == [
        (e.time, e.action, e.target) for e in chaos_b.log
    ]
    digests_a = {p.node_id: p.state.state_digest() for p in network_a.peers}
    digests_b = {p.node_id: p.state.state_digest() for p in network_b.peers}
    assert digests_a == digests_b


def test_rounds_bounded_after_chaos():
    """Chaos (incl. garbage-coordinate floods) must not leak round state."""
    network, _, _ = run_chaos_audited(2)
    for peer in network.peers:
        engine = peer.engine
        assert len(engine._rounds) <= engine.height_window * (engine.VIEW_WINDOW + 1)
        assert len(engine._view_votes) <= engine.VIEW_WINDOW + 1


@pytest.mark.chaos
@pytest.mark.parametrize("seed", EXTENDED_SEEDS)
def test_chaos_audit_pbft_extended(seed):
    """The wide sweep behind ``make chaos``: 30 more seeds, longer runs."""
    network, auditor, chaos = run_chaos_audited(seed, duration=40.0, settle=50.0, n_txs=20)
    assert auditor.violations == []
    assert auditor.blocks_audited > 0
    assert chaos.log
