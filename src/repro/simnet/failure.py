"""Failure injection for the simulated network.

Experiments need repeatable fault schedules: crash a peer at t=5, heal a
partition at t=30, make two validators byzantine from the start.  The
:class:`FailureSchedule` records what it did so tests can assert the
faults actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.events import Simulator
from repro.simnet.network import Network

__all__ = ["FailureEvent", "FailureSchedule"]


@dataclass(frozen=True)
class FailureEvent:
    """A fault that fired: (time, action, target)."""

    time: float
    action: str
    target: str


@dataclass
class FailureSchedule:
    """Declarative fault schedule bound to a network and simulator."""

    sim: Simulator
    network: Network
    log: list[FailureEvent] = field(default_factory=list)

    def crash_at(self, time: float, node_id: str) -> None:
        """Crash-stop *node_id* at absolute simulated *time*."""
        self.sim.schedule_at(time, lambda: self._crash(node_id, time))

    def recover_at(self, time: float, node_id: str) -> None:
        """Bring a crashed node back (crash-*pause*: it resumes with all
        of its in-memory state intact, as if it had merely been frozen)."""
        self.sim.schedule_at(time, lambda: self._recover(node_id, time))

    def restart_at(self, time: float, node_id: str) -> None:
        """Bring a crashed node back as a crash-*restart*: the node's
        ``restart()`` hook wipes volatile state (mempool, open consensus
        rounds, in-flight timers) and rebuilds world state from its
        durable ledger — modeling a real process restart rather than a
        pause.  Nodes without a ``restart()`` hook fall back to a plain
        recover."""
        self.sim.schedule_at(time, lambda: self._restart(node_id, time))

    def partition_at(self, time: float, *groups: set[str]) -> None:
        """Install a partition at *time*."""
        frozen = [set(g) for g in groups]
        self.sim.schedule_at(time, lambda: self._partition(frozen, time))

    def heal_at(self, time: float) -> None:
        """Heal all partitions at *time*."""
        self.sim.schedule_at(time, lambda: self._heal(time))

    # -- implementations -------------------------------------------------

    def _crash(self, node_id: str, time: float) -> None:
        self.network.node(node_id).crashed = True
        self.log.append(FailureEvent(time=time, action="crash", target=node_id))

    def _recover(self, node_id: str, time: float) -> None:
        self.network.node(node_id).crashed = False
        self.log.append(FailureEvent(time=time, action="recover", target=node_id))

    def _restart(self, node_id: str, time: float) -> None:
        node = self.network.node(node_id)
        restart = getattr(node, "restart", None)
        if restart is not None:
            restart()
        else:
            node.crashed = False
        self.log.append(FailureEvent(time=time, action="restart", target=node_id))

    def _partition(self, groups: list[set[str]], time: float) -> None:
        self.network.partition(*groups)
        self.log.append(
            FailureEvent(time=time, action="partition", target="|".join(",".join(sorted(g)) for g in groups))
        )

    def _heal(self, time: float) -> None:
        self.network.heal()
        self.log.append(FailureEvent(time=time, action="heal", target="*"))
