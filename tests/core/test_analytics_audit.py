"""Ledger analytics and the per-article audit bundle."""

import pytest

from repro.core import (
    account_report,
    propagation_timeline,
    ranking_history,
    topic_statistics,
)
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.errors import PlatformError


@pytest.fixture
def world(platform):
    gen = CorpusGenerator(seed=55)
    facts = {
        "politics": gen.factual(topic="politics"),
        "health": gen.factual(topic="health"),
    }
    for topic, fact in facts.items():
        platform.seed_fact(f"f-{topic}", fact.text, "record", topic)
    platform.register_participant("acme", role="publisher")
    platform.create_distribution_platform("acme", "acme-news")
    for topic in facts:
        platform.create_news_room("acme", "acme-news", f"{topic}-desk", topic)
    platform.register_participant("jane", role="journalist")
    platform.authenticate_journalist("acme-news", "jane")
    # Two faithful politics reports, one mutated health piece.
    platform.publish_article("jane", "acme-news", "politics-desk", "p-1",
                             relay(facts["politics"], "jane", 1.0).text, "politics")
    platform.publish_article("jane", "acme-news", "politics-desk", "p-2",
                             relay(facts["politics"], "jane", 2.0).text, "politics")
    fake = gen.insertion_fake(relay(facts["health"], "x", 0.0), "jane", 3.0, n_insertions=4)
    platform.publish_article("jane", "acme-news", "health-desk", "h-1", fake.text, "health")
    return platform, gen, facts


def test_topic_statistics(world):
    platform, gen, facts = world
    stats = {s.topic: s for s in topic_statistics(platform.graph)}
    assert stats["politics"].articles == 2
    assert stats["politics"].traceable_share == 1.0
    assert stats["politics"].mean_provenance > 0.95
    assert stats["health"].articles == 1
    assert stats["health"].mean_modification > 0.2
    assert stats["politics"].fact_roots == 1
    assert "articles=" in stats["politics"].as_row()


def test_account_report(world):
    platform, gen, facts = world
    report = account_report(platform.graph, platform.address_of("jane"))
    assert report.articles == 3
    assert set(report.topics) == {"politics", "health"}
    assert report.traceable_share == 1.0
    assert 0 < report.mean_provenance <= 1.0


def test_account_report_unknown_address(world):
    platform, *_ = world
    report = account_report(platform.graph, "acct:" + "0" * 40)
    assert report.articles == 0
    assert report.traceable_share == 0.0


def test_propagation_timeline(world):
    platform, gen, facts = world
    # p-2 relays p-1's text -> provenance edge to p-1; p-1's timeline
    # gains one descendant at p-2's recording height.
    timeline = propagation_timeline(platform.graph, "p-1")
    assert timeline and timeline[-1][1] >= 1
    heights = [h for h, _ in timeline]
    assert heights == sorted(heights)
    assert propagation_timeline(platform.graph, "missing") == []


def test_ranking_history(world):
    platform, gen, facts = world
    platform.rank_article("p-1")
    platform.rank_article("h-1")
    history = ranking_history(platform.chain.ledger)
    assert {h["article_id"] for h in history} == {"p-1", "h-1"}
    only_p1 = ranking_history(platform.chain.ledger, article_id="p-1")
    assert len(only_p1) == 1 and 0 <= only_p1[0]["final_score"] <= 1


def test_export_audit_bundle(world):
    platform, gen, facts = world
    platform.register_participant("reader", role="checker")
    platform.cast_vote("reader", "h-1", verdict=False)
    platform.chain.invoke(
        platform.account("reader"), "newsroom", "comment",
        {"article_id": "h-1", "comment_id": "c-1", "content_hash": "deadbeef"},
    )
    platform.rank_article("h-1")
    audit = platform.export_audit("h-1")
    assert audit["node"]["article_id"] == "h-1"
    assert audit["trace"]["traceable"] is True
    assert audit["ranking"]["final_score"] <= 0.8
    assert audit["votes"] == [
        {"voter": platform.address_of("reader"), "verdict": False, "weight": 1.0}
    ]
    assert audit["comments"][0]["comment_id"] == "c-1"
    assert audit["accountable_author"] == platform.address_of("jane")


def test_export_audit_unknown_article(world):
    platform, *_ = world
    with pytest.raises(PlatformError):
        platform.export_audit("nope")
