PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test chaos bench bench-smoke recovery obs-demo

# Byte-compile everything (pyflakes is not vendored; compileall still
# catches syntax errors across src/tests/benchmarks before the suite runs).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

# Tier-1: fast default suite (chaos-marked sweeps excluded via addopts).
test: lint
	$(PYTHON) -m pytest -x -q

# Extended seeded chaos/invariant-audit sweeps (slow, opt-in).
chaos:
	$(PYTHON) -m pytest -m chaos

bench:
	$(PYTHON) -m pytest benchmarks -q

# CI-sized pass over the substrate micro-benchmarks: REPRO_BENCH_SMOKE=1
# shrinks the crypto benches so the hot paths are exercised on every
# push without the statistical assertions (which need quiet hardware).
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_micro_substrate.py -q \
		--benchmark-disable

# Crash-recovery: deep catch-up tests + the recovery benchmark
# (writes benchmarks/latest_recovery.json).
recovery:
	$(PYTHON) -m pytest tests/chain/test_sync_recovery.py benchmarks/bench_recovery.py -q

# Traced end-to-end demo: runs a small PBFT workload with a crash/restart,
# writes benchmarks/latest_trace.jsonl, and prints the per-phase report.
obs-demo:
	$(PYTHON) -m repro.cli report --demo --trace benchmarks/latest_trace.jsonl
