"""Legacy shim: the offline environment lacks the `wheel` package, so
PEP 517 editable installs fail; `setup.py develop` still works."""
from setuptools import setup

setup()
