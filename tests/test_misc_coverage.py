"""Focused coverage for remaining edge behaviours across layers."""

import pytest

from repro.chain import BlockchainNetwork, NetworkedChain
from repro.chain.consensus.pbft import PBFTEngine
from repro.chain.contracts import EndorsementPolicy
from repro.core import Validator, ValidatorPool, Vote
from repro.corpus import topic_by_name
from repro.errors import ContractError


def test_pbft_quorum_arithmetic():
    for n, f, quorum in ((4, 1, 3), (7, 2, 5), (10, 3, 7), (13, 4, 9)):
        engine = PBFTEngine([f"p{i}" for i in range(n)])
        assert engine.n == n
        assert engine.f == f
        assert engine.quorum == quorum


def test_pbft_rejects_small_clusters():
    with pytest.raises(ValueError, match="n >= 4"):
        PBFTEngine(["a", "b", "c"])


def test_pbft_primary_rotation():
    engine = PBFTEngine([f"p{i}" for i in range(4)])
    assert [engine.primary_for(v) for v in range(5)] == ["p0", "p1", "p2", "p3", "p0"]


def test_topic_by_name_unknown():
    with pytest.raises(KeyError, match="unknown topic"):
        topic_by_name("astrology")


def test_validator_reputation_capped():
    pool = ValidatorPool(validators=[Validator("v", accuracy=1.0)])
    votes = [Vote("v", True, 1.0)]
    for _ in range(50):
        pool.settle(votes, outcome_factual=True)
    assert pool.validators[0].reputation == 5.0  # hard cap


def test_validator_weight_zero_when_stake_gone():
    validator = Validator("v", accuracy=0.5, reputation=2.0, stake=0.0)
    assert validator.weight == 0.0


def test_networked_chain_install_with_policy(counter_contract_cls):
    network = BlockchainNetwork(n_peers=4, consensus="poa", block_interval=0.2, seed=3)
    adapter = NetworkedChain(network)
    adapter.install_contract(counter_contract_cls(), policy=EndorsementPolicy(required=2))
    account = adapter.new_account()
    receipt = adapter.invoke(account, "counter", "increment", {"amount": 1})
    assert receipt.success
    committed = adapter.ledger.get_transaction(receipt.tx_id)
    assert len(committed.transaction.endorsements) >= 2


def test_networked_chain_query_error_path(counter_contract_cls):
    network = BlockchainNetwork(n_peers=4, consensus="poa", seed=4)
    adapter = NetworkedChain(network)
    adapter.install_contract(counter_contract_cls())
    with pytest.raises(ContractError, match="no method"):
        adapter.query("counter", "nope")


def test_gas_exhaustion_on_heavy_contract(local_chain, counter_contract_cls):
    local_chain.install_contract(counter_contract_cls())
    account = local_chain.new_account()
    with pytest.raises(ContractError, match="gas"):
        local_chain.invoke(account, "counter", "burn_gas", {"keys": 200_000})
    # Nothing committed by the failed call.
    assert local_chain.ledger.height == 0


def test_join_peer_on_empty_chain(counter_contract_cls):
    network = BlockchainNetwork(n_peers=4, consensus="poa", block_interval=0.2, seed=5)
    network.install_contract(counter_contract_cls)
    observer = network.join_peer()
    assert observer.ledger.height == 0
    client = network.client()
    client.invoke("counter", "increment", {"amount": 2})
    network.run_for(3)
    assert observer.state.get("count") == 2


def test_relay_derivation_determinism():
    """Same seed -> identical derivation sequence (ids AND content);
    ids are generator-local counters, so only content varies by seed."""
    from repro.corpus import CorpusGenerator

    def derive(seed):
        gen = CorpusGenerator(seed=seed)
        parent = gen.factual()
        shares = [gen.relay_derivation(parent, f"a{i}", float(i)) for i in range(5)]
        return [(s.article_id, s.text) for s in shares]

    assert derive(7) == derive(7)
    assert [t for _, t in derive(7)] != [t for _, t in derive(8)]


def test_ecosystem_zero_checkers_safe():
    from repro.core import EcosystemSimulator

    simulator = EcosystemSimulator.generate(
        n_agents=40, seed=9,
        role_mix={"consumer": 0.6, "creator": 0.3, "checker": 0.0,
                  "developer": 0.05, "publisher": 0.05},
    )
    simulator.run(5)  # must not divide by zero anywhere
    assert len(simulator.round_log) == 5


def test_media_verifier_handles_empty_registration():
    import numpy as np

    from repro.core import MediaVerifier
    from repro.ml import capture_signal

    verifier = MediaVerifier()
    rng = np.random.default_rng(0)
    assessment = verifier.assess(None, capture_signal(rng), "ghost")
    assert not assessment.registered
    assert assessment.tamper_score == 1.0
    assert not assessment.authentic
