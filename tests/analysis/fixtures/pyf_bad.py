"""Known-bad PYF corpus: one specimen per sub-rule."""

import json
import math  # PYF001: never referenced again
import json  # PYF003: duplicate of line 3


def misspelled(records):
    return json.dumps(recods)  # PYF002: typo'd name


def banner() -> str:
    return f"=== report ==="  # PYF004: f-string with nothing to format


def powers(n: int) -> list[float]:
    return [math_pow(2.0, i) for i in range(n)]  # PYF002 (math.pow intended)
