"""The full editorial workflow of §V: platforms, rooms, review, rejection.

Shows the two-layer trust design — the distribution platform vouches for
its creators, the editing platform for its content — and how every
editorial decision (including rejections, with reasons) lands on the
ledger for audit.

Run:  python examples/newsroom_workflow.py
"""

from repro import TrustingNewsPlatform
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay, split
from repro.crypto.hashing import sha256_hex
from repro.errors import ContractError


def main() -> None:
    platform = TrustingNewsPlatform(seed=11)
    gen = CorpusGenerator(seed=11)

    # Two competing distribution platforms.
    platform.register_participant("herald", role="publisher")
    platform.register_participant("tribune", role="publisher")
    platform.create_distribution_platform("herald", "the-herald")
    platform.create_distribution_platform("tribune", "the-tribune")
    platform.create_news_room("herald", "the-herald", "health-desk", "health")
    platform.create_news_room("tribune", "the-tribune", "health-watch", "health")

    # Journalists are admitted per platform — herald's roster does not
    # carry over to the tribune.
    platform.register_participant("amy", role="journalist")
    platform.authenticate_journalist("the-herald", "amy")

    fact = gen.factual(topic="health")
    platform.seed_fact("trial-report-44", fact.text, "medical-registry", "health")

    story = relay(fact, "amy", 1.0)
    published = platform.publish_article(
        "amy", "the-herald", "health-desk", "herald-1", story.text, "health"
    )
    print(f"herald-1 published, linked to facts {published.fact_roots}")

    # Amy is not a tribune member: the contract refuses her draft there.
    try:
        platform.publish_article("amy", "the-tribune", "health-watch",
                                 "tribune-1", story.text, "health")
    except ContractError as error:
        print(f"tribune rejected amy's draft: {error}")

    # The editor can also reject work after review; the reason is public.
    chain = platform.chain
    amy = platform.account("amy")
    quoted = split(story, "amy", 2.0, gen.rng, keep_fraction=0.3)
    chain.invoke(amy, "newsroom", "submit_draft",
                 {"article_id": "herald-2", "platform_name": "the-herald",
                  "room_name": "health-desk",
                  "content_hash": sha256_hex(quoted.text.encode())})
    chain.invoke(amy, "newsroom", "start_review", {"article_id": "herald-2"})
    chain.invoke(platform.account("herald"), "newsroom", "reject",
                 {"article_id": "herald-2", "reason": "quote stripped of context"})
    record = chain.query("newsroom", "get_article", {"article_id": "herald-2"})
    print(f"herald-2 state: {record['state']}")

    # The entire editorial history is reconstructable from the ledger.
    print("\neditorial audit trail:")
    for event in chain.ledger.events(contract="newsroom"):
        detail = {k: v for k, v in event.items() if not k.startswith("_") and k != "kind"}
        print(f"  block {event['_height']:>3}  {event['kind']:24} {detail}")

    assert chain.ledger.verify_chain()
    print("\nledger audit: clean")


if __name__ == "__main__":
    main()
