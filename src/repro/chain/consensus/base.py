"""Consensus engine interface.

Engines plug into a :class:`~repro.chain.peer.Peer`: the peer hands them
network messages and a mempool; engines decide blocks and hand them back
via ``peer.commit_block``.  Two engines are provided — a round-robin
PoA orderer (Fabric-style ordering service) and PBFT — plus a sharded
parallel execution model layered on either (the authors' ICDCS'18
design).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.simnet.network import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chain.peer import Peer

__all__ = ["ConsensusEngine"]


class ConsensusEngine(ABC):
    """Base class for block-ordering protocols."""

    def __init__(self) -> None:
        self.peer: "Peer | None" = None
        self.stopped = False

    def attach(self, peer: "Peer") -> None:
        """Bind the engine to its peer (called by the peer itself)."""
        self.peer = peer

    @abstractmethod
    def start(self) -> None:
        """Begin participating (schedule timers, etc.)."""

    def stop(self) -> None:
        """Stop proposing; in-flight work may still complete."""
        self.stopped = True

    @abstractmethod
    def on_message(self, message: Message) -> bool:
        """Handle a consensus message; return True if it was consumed."""

    def on_transaction_admitted(self) -> None:
        """Hook: the peer admitted a new transaction to its mempool."""
