"""Labelled counters, gauges, and bounded-reservoir histograms.

One :class:`MetricsRegistry` is shared across a whole
:class:`~repro.chain.network.BlockchainNetwork` (every peer, engine, and
sync manager records into it under a ``peer=<node_id>`` label), so the
exporters in :mod:`repro.obs.export` can aggregate across the fleet
without walking N scattered stat objects.

Histograms keep a bounded reservoir (Vitter's algorithm R with a
deterministic per-metric RNG, so runs stay a pure function of their
seed) plus exact count/sum/min/max.  Percentiles are computed from the
reservoir — exact until the reservoir overflows, a uniform sample after.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_histograms"]

#: Reservoir size bounding each histogram's memory, tunable per metric.
DEFAULT_RESERVOIR = 1024

_PERCENTILES = (50.0, 95.0, 99.0)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically-growing (by convention) numeric counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        """Direct assignment — exists so attribute views can mirror
        seed-era ``metrics.field = 0`` / ``+=`` call sites exactly."""
        self.value = value

    def as_record(self) -> dict[str, Any]:
        return {"type": "metric", "kind": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge(Counter):
    """A counter that is allowed to go down (current sizes, depths)."""

    __slots__ = ()

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_record(self) -> dict[str, Any]:
        record = super().as_record()
        record["kind"] = "gauge"
        return record


class Histogram:
    """Bounded-reservoir distribution with exact count/sum/min/max.

    ``observe`` is O(1); ``percentile`` sorts the reservoir on demand
    (callers are exporters and report builders, not hot paths).
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_reservoir", "_capacity", "_rng", "_sorted")

    def __init__(self, name: str, labels: dict[str, str], capacity: int = DEFAULT_RESERVOIR):
        if capacity < 1:
            raise ValueError("histogram reservoir capacity must be >= 1")
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._reservoir: list[float] = []
        self._capacity = capacity
        self._rng = random.Random(f"obs:{name}:{_label_key(labels)}")
        self._sorted: list[float] | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._sorted = None
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            # Algorithm R: keep each of the `count` observations in the
            # reservoir with equal probability capacity/count.
            slot = self._rng.randrange(self.count)
            if slot < self._capacity:
                self._reservoir[slot] = value

    @property
    def values(self) -> list[float]:
        """A copy of the (bounded) reservoir, in observation order."""
        return list(self._reservoir)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile (``q`` in [0, 100]) of the reservoir."""
        if not self._reservoir:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._reservoir)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] + (data[hi] - data[lo]) * frac

    def summary(self) -> dict[str, float]:
        out: dict[str, float] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }
        for q in _PERCENTILES:
            out[f"p{q:g}"] = self.percentile(q)
        return out

    def as_record(self) -> dict[str, Any]:
        return {"type": "metric", "kind": "histogram", "name": self.name,
                "labels": dict(self.labels), "summary": self.summary(),
                "values": self.values}


def merge_histograms(histograms: Iterable[Histogram], name: str = "merged") -> Histogram:
    """Pool several reservoirs into one cross-label distribution.

    Used by the report builder to answer "commit latency across all
    peers" from per-peer histograms.  The merged reservoir is the
    concatenation (re-sampled down if it overflows the capacity), which
    is a fair pooled sample when the inputs used the same capacity.
    """
    histograms = list(histograms)
    capacity = max((h._capacity for h in histograms), default=DEFAULT_RESERVOIR)
    merged = Histogram(name, {}, capacity=capacity)
    for hist in histograms:
        merged.count += hist.count
        merged.total += hist.total
        if hist.min is not None and (merged.min is None or hist.min < merged.min):
            merged.min = hist.min
        if hist.max is not None and (merged.max is None or hist.max > merged.max):
            merged.max = hist.max
        merged._reservoir.extend(hist._reservoir)
    if len(merged._reservoir) > capacity:
        merged._reservoir = merged._rng.sample(merged._reservoir, capacity)
    merged._sorted = None
    return merged


class MetricsRegistry:
    """Get-or-create store of labelled metrics.

    Metrics are keyed by ``(name, sorted(labels))``; repeated lookups
    return the same object, so call sites may cache the handle (hot
    paths should) or re-resolve every time (cold paths can).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, tuple[tuple[str, str], ...]], Any] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, capacity: int = DEFAULT_RESERVOIR, **labels: str) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, labels, capacity=capacity)
            self._metrics[key] = metric
        return metric

    def _get(self, kind: str, factory: Callable[..., Any], name: str, labels: dict[str, str]) -> Any:
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, labels)
            self._metrics[key] = metric
        return metric

    # -- read side ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> list[dict[str, Any]]:
        """All metrics as JSON-serializable records (sorted, stable)."""
        return [self._metrics[key].as_record() for key in sorted(self._metrics)]

    def counters(self, name: str) -> list[Counter]:
        return [m for (kind, n, _), m in sorted(self._metrics.items())
                if kind in ("counter", "gauge") and n == name]

    def histograms(self, name: str) -> list[Histogram]:
        return [m for (kind, n, _), m in sorted(self._metrics.items())
                if kind == "histogram" and n == name]

    def total(self, name: str) -> float:
        """Sum of one counter name across every label set."""
        return sum(c.value for c in self.counters(name))

    def merged_histogram(self, name: str) -> Histogram:
        """Cross-label pooled distribution for one histogram name."""
        return merge_histograms(self.histograms(name), name=name)

    def names(self) -> list[str]:
        return sorted({name for (_, name, _) in self._metrics})
