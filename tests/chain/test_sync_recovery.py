"""Deep catch-up and crash-recovery via :mod:`repro.chain.sync`.

The scenarios here are the ones the seed code could not survive:

- a PBFT replica crashed for 20+ blocks — far beyond the engine's
  ``HEIGHT_WINDOW`` round buffer — must fully catch up after it comes
  back, under both crash-*pause* (state intact) and crash-*restart*
  (volatile state wiped, world state replayed from the ledger);
- the PoA orderer's old anti-entropy only probed when the recovered
  peer had traffic to propose, so an idle network stalled it forever;
- sync under message loss must retry with backoff, and a provider that
  never answers (crashed, or a phantom byzantine height claim) must be
  failed over, not waited on forever.

"Caught up" is asserted the strong way — every peer at the same height
with the identical ``state_digest()``, plus the auditor's catch-up
invariant — not the old min-height prefix check that a permanently
lagging peer could pass.
"""

from __future__ import annotations

import pytest

from repro.chain import BlockchainNetwork, InvariantAuditor
from repro.simnet import FailureSchedule, UniformLatency


def _build(consensus: str, seed: int, drop: float = 0.0) -> tuple[BlockchainNetwork, InvariantAuditor, FailureSchedule]:
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus=consensus, block_interval=0.5,
        latency=UniformLatency(0.01, 0.05), seed=seed,
        view_timeout=4.0, drop_probability=drop,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)
    schedule = FailureSchedule(network.sim, network.net)
    return network, auditor, schedule


def _drive(network: BlockchainNetwork, n_txs: int, gap: float = 0.8) -> None:
    client = network.client()
    for _ in range(n_txs):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.run_for(gap)


def _assert_all_caught_up(network: BlockchainNetwork) -> None:
    heights = {p.node_id: p.ledger.height for p in network.peers}
    assert len(set(heights.values())) == 1, f"heights diverge: {heights}"
    digests = {p.node_id: p.state.state_digest() for p in network.peers}
    assert len(set(digests.values())) == 1, f"state digests diverge: {digests}"


@pytest.mark.parametrize("mode", ["pause", "restart"])
def test_pbft_replica_catches_up_beyond_height_window(mode):
    """A replica down for 20+ blocks (>> HEIGHT_WINDOW) fully recovers.

    The engine's round buffer only spans HEIGHT_WINDOW=8 heights, so
    nothing consensus retained can close this gap — only the ranged
    fetch path can, verifying each block against a stored 2f+1 commit
    certificate.
    """
    network, auditor, schedule = _build("pbft", seed=11)
    victim = network.peers[3]
    schedule.crash_at(1.0, victim.node_id)
    _drive(network, n_txs=26)
    head = max(p.ledger.height for p in network.peers)
    assert head - victim.ledger.height >= 20, "scenario failed to open a deep gap"
    assert head - victim.ledger.height > victim.engine.HEIGHT_WINDOW
    comeback = network.sim.now + 0.5
    if mode == "restart":
        schedule.restart_at(comeback, victim.node_id)
    else:
        schedule.recover_at(comeback, victim.node_id)
    network.run_for(25.0)
    network.stop()

    _assert_all_caught_up(network)
    assert victim.sync.metrics.blocks_synced >= 20
    assert victim.sync.metrics.syncs_completed >= 1
    if mode == "restart":
        assert victim.metrics.restarts == 1
    # The auditor's catch-up invariant (not min-height prefix) signs off.
    violations = auditor.final_check(failures=schedule.log, sync_window=25.0)
    assert violations == []
    latencies = auditor.catchup_latencies(schedule.log)
    assert latencies, "no recover/restart event was measured"
    assert all(lat is not None for _, lat in latencies)
    for peer in network.peers:
        assert peer.ledger.verify_chain()


def test_pbft_synced_blocks_carry_valid_certificates():
    """Catch-up must not weaken the certificate invariant: the recovered
    replica stores a 2f+1 certificate for every block it fetched."""
    network, auditor, schedule = _build("pbft", seed=12)
    victim = network.peers[2]
    schedule.crash_at(1.0, victim.node_id)
    _drive(network, n_txs=24)
    schedule.recover_at(network.sim.now + 0.5, victim.node_id)
    network.run_for(20.0)
    network.stop()

    _assert_all_caught_up(network)
    for height in range(1, victim.ledger.height + 1):
        entry = victim.engine.commit_certificates.get(height)
        assert entry is not None, f"no certificate stored for synced height {height}"
        digest, certificate = entry
        assert digest == victim.ledger.block(height).block_hash
        assert len(set(certificate) & set(victim.engine.validators)) >= victim.engine.quorum
    assert auditor.final_check(failures=schedule.log, sync_window=20.0) == []


def test_poa_idle_network_catchup_regression():
    """Regression for the PoA anti-entropy stall: the old probe only ran
    from the proposal path, so a recovered peer on an idle network (empty
    mempools, nothing left to propose) stayed behind forever.  The sync
    manager's announcement loop must close the gap with no new traffic.

    The victim is peer-0, whose leadership slots are heights 4, 8, … —
    rotation stalls at a crashed leader's slot, so the driven heights
    (1–3, led by peers 1–3) must all fall before the victim's turn.
    """
    network, auditor, schedule = _build("poa", seed=13)
    victim = network.peers[0]
    schedule.crash_at(0.2, victim.node_id)
    _drive(network, n_txs=3, gap=1.5)
    # Let every submitted tx commit and the mempools drain *before* the
    # victim returns: from here on there is no traffic to piggyback on.
    network.run_for(5.0)
    assert all(len(p.mempool) == 0 for p in network.peers if not p.crashed)
    gap = max(p.ledger.height for p in network.peers) - victim.ledger.height
    assert gap >= 3
    schedule.recover_at(network.sim.now + 0.5, victim.node_id)
    network.run_for(15.0)
    network.stop()

    _assert_all_caught_up(network)
    assert victim.sync.metrics.blocks_synced >= gap
    assert auditor.final_check(failures=schedule.log, sync_window=15.0) == []


def test_sync_retries_under_message_loss():
    """With lossy links the fetch machinery must retry (timeout + backoff)
    rather than hang on the first dropped request or response.

    The chain is built on clean links (10% loss starves a 3-of-3 PBFT
    quorum outright), then the loss is switched on for the recovery
    phase only.  The victim's fetch batch is shrunk to 2 so closing the
    gap takes many request/response round-trips, each of which the 25%
    drop rate can kill — guaranteeing the timeout path is exercised.
    """
    network, auditor, schedule = _build("pbft", seed=17, drop=0.0)
    victim = network.peers[3]
    victim.sync.MAX_BATCH = 2  # instance override; class default is 64
    schedule.crash_at(1.0, victim.node_id)
    _drive(network, n_txs=24)
    gap = max(p.ledger.height for p in network.peers) - victim.ledger.height
    assert gap >= 20, "scenario failed to open a deep gap"
    network.net.drop_probability = 0.25
    schedule.recover_at(network.sim.now + 0.5, victim.node_id)
    network.run_for(90.0)
    network.stop()

    metrics = victim.sync.metrics
    assert metrics.requests_sent >= gap // 2
    assert metrics.timeouts + metrics.retries > 0, (
        "25% drop never exercised the retry path — scenario is miscalibrated"
    )
    _assert_all_caught_up(network)
    assert auditor.final_check(failures=schedule.log, sync_window=90.0) == []


def test_provider_failover_on_phantom_height():
    """A provider that never answers — here a crashed peer whose height
    claim arrived before it died — must be struck off after
    PROVIDER_PATIENCE timeouts so the node stops chasing the phantom."""
    network, _, schedule = _build("pbft", seed=19)
    _drive(network, n_txs=4)
    network.run_for(3.0)
    dead = network.peers[2]
    chaser = network.peers[3]
    schedule.crash_at(network.sim.now, dead.node_id)
    network.run_for(0.1)
    # The dead peer "claimed" a chain far beyond everyone; requests to it
    # can only time out.
    chaser.sync.note_remote_height(dead.node_id, 999)
    assert chaser.sync.is_lagging()
    network.run_for(20.0)
    network.stop()

    metrics = chaser.sync.metrics
    assert metrics.timeouts >= chaser.sync.PROVIDER_PATIENCE
    assert metrics.provider_failovers >= 1
    assert dead.node_id not in chaser.sync.known_heights
    # With the phantom forgotten the chaser is not stuck "lagging".
    assert not chaser.sync.is_lagging()


def test_restart_wipes_volatile_state_and_rebuilds_from_ledger():
    """Crash-restart semantics: the mempool dies, the ledger survives,
    world state and receipts are rebuilt bit-identical, and the auditor
    excuses exactly the wiped pending txs from durability."""
    network, auditor, _ = _build("pbft", seed=23)
    _drive(network, n_txs=4)
    network.run_for(5.0)
    victim = network.peers[2]  # a replica: submitting here won't propose
    client = network.client()
    pending = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
    assert victim.submit(pending, gossip=False)
    auditor.track_tx(pending.tx_id)
    pre_height = victim.ledger.height
    pre_state = victim.state.state_digest()
    pre_receipts = {t: (r.block_height, r.success) for t, r in victim.receipts.items()}
    assert pre_height >= 4 and pre_receipts

    wiped = victim.restart()

    assert pending.tx_id in wiped
    assert pending.tx_id not in victim.mempool and len(victim.mempool) == 0
    assert victim.ledger.height == pre_height
    assert victim.state.state_digest() == pre_state
    assert {t: (r.block_height, r.success) for t, r in victim.receipts.items()} == pre_receipts
    assert victim.metrics.restarts == 1
    assert pending.tx_id in auditor.restart_wiped
    network.run_for(5.0)
    network.stop()
    # Durability passes only because the wiped tx is excused.
    assert auditor.final_check() == []
