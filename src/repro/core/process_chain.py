"""Conventional *process* blockchain supply chain — the Fig. 3 baseline.

The paper contrasts its dynamic news supply chain (Fig. 4) with the
well-known workflow-type supply chains (Fig. 3): "pre-configured
limited number of processing steps ... the blockchain network
architecture is therefore can be pre-fixed".  This module implements
that baseline — a food-safety-style batch workflow with a fixed stage
sequence enforced on-chain — so E3/E4 can compare the two structurally
(linear, bounded depth, fixed participants vs. dynamic, heavy-tailed,
open-membership).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.chain.ledger import Ledger

__all__ = ["ProcessSupplyChainContract", "PROCESS_STAGES", "process_chain_graph", "GraphShape", "graph_shape"]

# The pre-configured workflow: every batch moves through these in order.
PROCESS_STAGES = ("farm", "processor", "distributor", "retailer", "consumer")


def batch_key(batch_id: str) -> str:
    return f"batch:{batch_id}"


class ProcessSupplyChainContract(Contract):
    """Fixed-workflow supply chain (enterprise/food-safety style)."""

    name = "process-chain"

    @contract_method
    def register_batch(self, ctx: ContractContext, batch_id: str, description: str):
        """Create a batch at the first stage."""
        key = batch_key(batch_id)
        ctx.require(ctx.get(key) is None, f"batch {batch_id} already registered")
        record = {
            "batch_id": batch_id,
            "description": description,
            "stage_index": 0,
            "history": [
                {"stage": PROCESS_STAGES[0], "actor": ctx.caller, "at": ctx.timestamp}
            ],
        }
        ctx.put(key, record)
        ctx.emit("batch-registered", batch_id=batch_id)
        return record

    @contract_method
    def advance(self, ctx: ContractContext, batch_id: str, data: str = ""):
        """Move a batch to its next stage — the order is fixed by the
        contract, which is exactly what makes this architecture easy to
        secure and impossible to apply to open news propagation."""
        key = batch_key(batch_id)
        record = ctx.get(key)
        ctx.require(record is not None, f"no batch {batch_id}")
        next_index = record["stage_index"] + 1
        ctx.require(
            next_index < len(PROCESS_STAGES),
            f"batch {batch_id} already completed the workflow",
        )
        record["stage_index"] = next_index
        record["history"].append(
            {"stage": PROCESS_STAGES[next_index], "actor": ctx.caller,
             "at": ctx.timestamp, "data": data}
        )
        ctx.put(key, record)
        ctx.emit("batch-advanced", batch_id=batch_id, stage=PROCESS_STAGES[next_index])
        return record

    @contract_method
    def get_batch(self, ctx: ContractContext, batch_id: str):
        return ctx.get(batch_key(batch_id))


def process_chain_graph(ledger: Ledger) -> nx.DiGraph:
    """Reconstruct the (linear) stage graph of every batch from events."""
    graph = nx.DiGraph()
    stage_of: dict[str, int] = {}
    for event in ledger.events(contract="process-chain"):
        batch_id = event["batch_id"]
        if event["kind"] == "batch-registered":
            node = f"{batch_id}@{PROCESS_STAGES[0]}"
            graph.add_node(node, batch=batch_id, stage=PROCESS_STAGES[0])
            stage_of[batch_id] = 0
        elif event["kind"] == "batch-advanced":
            previous = f"{batch_id}@{PROCESS_STAGES[stage_of[batch_id]]}"
            stage_of[batch_id] += 1
            node = f"{batch_id}@{event['stage']}"
            graph.add_node(node, batch=batch_id, stage=event["stage"])
            graph.add_edge(node, previous)
    return graph


@dataclass(frozen=True)
class GraphShape:
    """Structural summary used to compare Fig. 3 vs Fig. 4 graphs.

    Edges point child -> parent (toward provenance), so *fan-out* — how
    many derived items one node spawned — is the **in**-degree, and
    *branching* — multi-parent nodes like mixes/merges — is out-degree
    greater than one.
    """

    nodes: int
    edges: int
    max_depth: int
    max_fanout: int
    mean_fanout: float
    branching_nodes: int  # nodes with >1 provenance parent (merges/mixes)

    def as_row(self, name: str) -> str:
        return (
            f"{name:<16} nodes={self.nodes:<6} edges={self.edges:<6} "
            f"max_depth={self.max_depth:<4} max_fanout={self.max_fanout:<4} "
            f"mean_fanout={self.mean_fanout:.2f} branching={self.branching_nodes}"
        )


def graph_shape(graph: nx.DiGraph) -> GraphShape:
    """Compute the structural summary of a provenance-style DAG."""
    if graph.number_of_nodes() == 0:
        return GraphShape(0, 0, 0, 0, 0.0, 0)
    in_degrees = [d for _, d in graph.in_degree()]
    out_degrees = [d for _, d in graph.out_degree()]
    # Depth in hops: ignore edge weight attrs (they carry modification
    # degrees, not lengths).
    depth = (
        int(nx.dag_longest_path_length(graph, weight=None))
        if nx.is_directed_acyclic_graph(graph)
        else -1
    )
    return GraphShape(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        max_depth=depth,
        max_fanout=max(in_degrees),
        mean_fanout=sum(in_degrees) / len(in_degrees),
        branching_nodes=sum(1 for d in out_degrees if d > 1),
    )
