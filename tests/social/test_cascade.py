"""Cascade propagation: reach, mutation-on-share, interventions, hooks."""

import random

import pytest

from repro.social import CascadeRunner, build_social_world, emotional_appeal, run_races


@pytest.fixture
def world():
    return build_social_world(n_agents=300, seed=21)


def _hub(graph):
    return max(graph.nodes(), key=lambda n: graph.out_degree(n))


def test_cascade_produces_events_and_reach(world):
    graph, agents, corpus = world
    article = corpus.factual(timestamp=0.0)
    result = CascadeRunner(graph, corpus).run([(_hub(graph), article)], n_rounds=8)
    assert result.reach(article.article_id) >= 1
    assert article.article_id in result.articles
    for event in result.events:
        assert event.article_id in result.articles
        assert result.root_of[event.article_id] == article.article_id


def test_share_ops_from_paper_taxonomy(world):
    graph, agents, corpus = world
    article = corpus.insertion_fake(corpus.factual(), "troll", 0.0)
    result = CascadeRunner(graph, corpus).run([(_hub(graph), article)], n_rounds=10)
    ops = {e.op for e in result.events}
    assert "relay" in ops
    assert ops <= {"relay", "split", "merge", "insert", "mix", "distort"}


def test_emotional_appeal_ordering(world):
    graph, agents, corpus = world
    factual = corpus.factual()
    fake = corpus.insertion_fake(factual, "troll", 0.0, n_insertions=4)
    assert emotional_appeal(fake) > emotional_appeal(factual)
    assert 1.0 <= emotional_appeal(factual) <= 3.0


def test_fake_spreads_further_than_factual_in_expectation():
    # Single races are variance-dominated; the claim is statistical.
    summary = run_races(n_trials=8, n_agents=300, seed=500, intervene=False, n_rounds=10)
    assert summary.mean_fake > summary.mean_factual


def test_intervention_flips_the_race_in_expectation():
    baseline = run_races(n_trials=8, n_agents=300, seed=500, intervene=False, n_rounds=10)
    treated = run_races(n_trials=8, n_agents=300, seed=500, intervene=True, n_rounds=10)
    assert treated.mean_fake < baseline.mean_fake
    assert treated.fake_advantage < 1.0 < baseline.fake_advantage


def test_on_share_hook_sees_every_event(world):
    graph, agents, corpus = world
    seen = []
    runner = CascadeRunner(graph, corpus, on_share=lambda e, a: seen.append(e.article_id))
    article = corpus.factual()
    result = runner.run([(_hub(graph), article)], n_rounds=6)
    assert seen == [e.article_id for e in result.events]


def test_attention_limits_shares(world):
    graph, agents, corpus = world
    for agent in agents:
        agent.attention = 0  # nobody may re-share
    article = corpus.insertion_fake(corpus.factual(), "troll", 0.0)
    result = CascadeRunner(graph, corpus).run([(_hub(graph), article)], n_rounds=6)
    assert result.events == []
    # But exposure still happened (followers saw it).
    assert result.reach(article.article_id) > 1


def test_seen_articles_not_reprocessed(world):
    graph, agents, corpus = world
    article = corpus.factual()
    runner = CascadeRunner(graph, corpus)
    result = runner.run([(_hub(graph), article)], n_rounds=8)
    # An agent can appear multiple times only for different articles.
    pairs = [(e.agent_id, e.parent_article_id) for e in result.events]
    assert len(pairs) == len(set(pairs))


def test_reach_curve_monotone(world):
    graph, agents, corpus = world
    article = corpus.insertion_fake(corpus.factual(), "troll", 0.0)
    result = CascadeRunner(graph, corpus).run([(_hub(graph), article)], n_rounds=10)
    curve = result.reach_curve(article.article_id)
    assert curve == sorted(curve)


def test_flagged_damping_reduces_spread(world):
    graph, agents, corpus = world
    article = corpus.insertion_fake(corpus.factual(), "troll", 0.0)
    # Deterministic comparison: same world, flag everything vs nothing.
    free = CascadeRunner(graph, corpus, rng=random.Random(5)).run(
        [(_hub(graph), article)], n_rounds=8
    )
    for agent in agents:
        agent.seen.clear()
    damped = CascadeRunner(
        graph, corpus, rng=random.Random(5), flagged=lambda _: True, damping=0.95
    ).run([(_hub(graph), article)], n_rounds=8)
    assert len(damped.events) < len(free.events)
