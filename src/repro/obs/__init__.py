"""Unified observability: metrics registry, sim-time tracing, exporters.

``repro.obs`` is the one place counters, gauges, histograms, and spans
live.  The blockchain substrate (peers, consensus engines, the sync
manager, the invariant auditor, the simulated network) all record into a
shared :class:`MetricsRegistry`, and the transaction lifecycle (endorse →
submit → ordering wait → consensus round → commit → sync fetch) is traced
with sim-time-aware :class:`Span` objects.  Exporters turn a registry +
tracer into a JSON-lines timeline and a markdown summary table; the
``repro-news report`` CLI entry point reconstructs the per-phase latency
breakdown from the JSON-lines file alone.
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.obs.views import ObsView, metric_attr
from repro.obs.export import (
    append_perf_record,
    export_jsonl,
    markdown_report,
    read_jsonl,
    report_from_records,
    snapshot_crypto_cache,
    write_perf_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "ObsView",
    "metric_attr",
    "export_jsonl",
    "read_jsonl",
    "markdown_report",
    "report_from_records",
    "append_perf_record",
    "write_perf_record",
    "snapshot_crypto_cache",
]
