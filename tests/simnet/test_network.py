"""Simulated network delivery, partitions, drops, crashes."""

import random

import pytest

from repro.errors import SimulationError
from repro.simnet import FixedLatency, Message, Network, NetworkNode, Simulator, UniformLatency


class Recorder(NetworkNode):
    """Records everything delivered to it."""

    def __init__(self, node_id: str):
        super().__init__(node_id)
        self.received: list[Message] = []

    def on_message(self, message: Message) -> None:
        self.received.append(message)


def build(n: int = 3, **kwargs) -> tuple[Simulator, Network, list[Recorder]]:
    sim = Simulator()
    net = Network(sim, **kwargs)
    nodes = [Recorder(f"n{i}") for i in range(n)]
    for node in nodes:
        net.add_node(node)
    return sim, net, nodes


def test_message_delivered_with_latency():
    sim, net, nodes = build(latency=FixedLatency(0.25))
    nodes[0].send("n1", "ping", {"x": 1})
    sim.run()
    assert len(nodes[1].received) == 1
    message = nodes[1].received[0]
    assert message.kind == "ping" and message.payload == {"x": 1}
    assert sim.now == pytest.approx(0.25)


def test_broadcast_excludes_self_by_default():
    sim, net, nodes = build(4)
    nodes[0].broadcast("hello", None)
    sim.run()
    assert len(nodes[0].received) == 0
    assert all(len(n.received) == 1 for n in nodes[1:])


def test_broadcast_include_self():
    sim, net, nodes = build(2)
    nodes[0].broadcast("hello", None, include_self=True)
    sim.run()
    assert len(nodes[0].received) == 1


def test_partition_blocks_cross_group_traffic():
    sim, net, nodes = build(4)
    net.partition({"n0", "n1"})
    nodes[0].send("n1", "in-group", None)
    nodes[0].send("n2", "cross", None)
    sim.run()
    assert len(nodes[1].received) == 1
    assert len(nodes[2].received) == 0
    assert net.stats.dropped_partition == 1


def test_heal_restores_traffic():
    sim, net, nodes = build(3)
    net.partition({"n0"})
    nodes[0].send("n1", "blocked", None)
    net.heal()
    nodes[0].send("n1", "open", None)
    sim.run()
    assert [m.kind for m in nodes[1].received] == ["open"]


def test_unnamed_nodes_form_implicit_group():
    sim, net, nodes = build(4)
    net.partition({"n0", "n1"})
    nodes[2].send("n3", "rest-group", None)
    sim.run()
    assert len(nodes[3].received) == 1


def test_crashed_node_drops_messages():
    sim, net, nodes = build(2)
    nodes[1].crashed = True
    nodes[0].send("n1", "lost", None)
    sim.run()
    assert nodes[1].received == []
    assert net.stats.dropped_crashed == 1


def test_random_drops_are_seeded():
    def run(seed):
        sim, net, nodes = build(2, drop_probability=0.5, seed=seed)
        for _ in range(100):
            nodes[0].send("n1", "m", None)
        sim.run()
        return len(nodes[1].received)

    assert run(7) == run(7)
    assert 20 < run(7) < 80  # roughly half survive


def test_unknown_destination_raises():
    sim, net, nodes = build(1)
    with pytest.raises(SimulationError):
        nodes[0].send("nope", "m", None)


def test_duplicate_node_id_rejected():
    sim, net, nodes = build(1)
    with pytest.raises(SimulationError):
        net.add_node(Recorder("n0"))


def test_detached_node_cannot_send():
    node = Recorder("loner")
    with pytest.raises(SimulationError):
        node.send("n0", "m", None)


def test_stats_track_latency():
    sim, net, nodes = build(2, latency=FixedLatency(0.1))
    for _ in range(10):
        nodes[0].send("n1", "m", None)
    sim.run()
    assert net.stats.delivered == 10
    assert net.stats.mean_latency == pytest.approx(0.1)


def test_uniform_latency_in_bounds():
    rng = random.Random(0)
    model = UniformLatency(0.01, 0.05)
    samples = [model.sample("a", "b", rng) for _ in range(200)]
    assert all(0.01 <= s <= 0.05 for s in samples)


def test_overlapping_partition_groups_rejected():
    """Overlapping groups would make _same_side asymmetric (resolution
    depends on which group is checked first) — must be an error."""
    sim, net, nodes = build(3)
    with pytest.raises(SimulationError):
        net.partition({"n0", "n1"}, {"n1", "n2"})
    # The bad call must not have half-installed a partition.
    nodes[0].send("n2", "still-flowing", None)
    sim.run()
    assert len(nodes[2].received) == 1


def test_disjoint_partition_groups_still_fine():
    sim, net, nodes = build(4)
    net.partition({"n0", "n1"}, {"n2"})
    nodes[0].send("n1", "ok", None)
    nodes[2].send("n3", "cross", None)
    sim.run()
    assert len(nodes[1].received) == 1
    assert len(nodes[3].received) == 0  # n2 and n3 are in different groups


def test_bytes_estimate_counts_traffic():
    """bytes_estimate was declared but never incremented (seed bug)."""
    sim, net, nodes = build(2)
    nodes[0].send("n1", "ping", {"key": "value", "n": 7})
    sim.run()
    assert net.stats.bytes_estimate > 0
    before = net.stats.bytes_estimate
    nodes[0].send("n1", "ping", {"key": "value" * 100, "n": 7})
    sim.run()
    # A 100x larger payload costs visibly more estimated bandwidth.
    assert net.stats.bytes_estimate - before > before


def test_bytes_estimate_charged_even_for_drops():
    """Sender bandwidth is spent whether or not delivery succeeds."""
    sim, net, nodes = build(2)
    net.partition({"n0"})
    nodes[0].send("n1", "lost", {"data": "x" * 50})
    sim.run()
    assert net.stats.dropped_partition == 1
    assert net.stats.bytes_estimate > 50


def test_broadcast_iterates_cached_id_tuple():
    """broadcast must not rebuild the node-id list per call; the cache
    is invalidated when membership changes."""
    sim, net, nodes = build(3)
    first = net.all_node_ids()
    assert first is net.all_node_ids()  # same tuple object, no rebuild
    late = Recorder("n9")
    net.add_node(late)
    assert net.all_node_ids() != first
    assert "n9" in net.all_node_ids()
    nodes[0].broadcast("hello", None)
    sim.run()
    assert len(late.received) == 1
    # The public list API still returns a fresh, mutation-safe copy.
    ids = net.node_ids()
    ids.append("bogus")
    assert "bogus" not in net.all_node_ids()


def test_transmit_drop_paths_schedule_nothing():
    """Partition/drop early-outs must not reach the scheduler: a dropped
    message costs counters, not an Event allocation."""
    sim, net, nodes = build(2)
    net.partition({"n0"})
    nodes[0].send("n1", "lost", {"data": "x" * 10})
    assert sim.pending == 0  # nothing queued for a partitioned message
    net.heal()
    nodes[0].send("n1", "kept", None)
    assert sim.pending == 1
    sim.run()
    assert [m.kind for m in nodes[1].received] == ["kept"]


def test_transmit_random_drop_charges_bytes_without_scheduling():
    sim, net, nodes = build(2, drop_probability=0.999999, seed=3)
    before = net.stats.bytes_estimate
    for _ in range(20):
        nodes[0].send("n1", "m", {"data": "y" * 30})
    assert net.stats.dropped_random == 20
    assert net.stats.bytes_estimate - before > 20 * 30  # bandwidth still spent
    assert sim.pending == 0


def test_payload_size_estimator_shapes():
    from repro.simnet import estimate_payload_size

    assert estimate_payload_size(None) == 1
    assert estimate_payload_size("abcd") == 4
    assert estimate_payload_size(b"abcd") == 4
    assert estimate_payload_size(123) == 8
    assert estimate_payload_size({"ab": "cd"}) == 4
    assert estimate_payload_size(["ab", "cd", 1]) == 12
    # Dataclasses are walked field by field.
    msg = Message(src="a", dst="b", kind="kk", payload="pppp", sent_at=0.0)
    assert estimate_payload_size(msg) == 1 + 1 + 2 + 4 + 8
