"""Topic classification: routing articles to topic-based news rooms.

The platform's news rooms are topic-scoped (§V); at ingest time someone
must decide *which* room/beat a piece of content belongs to.  A
multinomial-NB-over-TF-IDF classifier does this with near-perfect
accuracy on the synthetic corpus (topics have distinct vocabularies by
construction) and realistically high accuracy on anything
vocabulary-separable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MLError
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.vectorize import TfidfVectorizer

__all__ = ["TopicClassifier"]


class TopicClassifier:
    """Multiclass topic model with string labels."""

    def __init__(self, max_features: int | None = 4000, alpha: float = 0.5):
        self._vectorizer = TfidfVectorizer(max_features=max_features)
        self._model = MultinomialNaiveBayes(alpha=alpha)
        self._labels: list[str] = []
        self._fitted = False

    def fit(self, texts: list[str], topics: Sequence[str]) -> "TopicClassifier":
        if len(texts) != len(topics) or not texts:
            raise MLError("texts/topics length mismatch or empty")
        self._labels = sorted(set(topics))
        if len(self._labels) < 2:
            raise MLError("need at least two topics to classify")
        index_of = {label: index for index, label in enumerate(self._labels)}
        y = np.array([index_of[topic] for topic in topics])
        X = self._vectorizer.fit_transform(texts)
        self._model.fit(X, y)
        self._fitted = True
        return self

    @property
    def topics(self) -> list[str]:
        return list(self._labels)

    def predict(self, texts: list[str]) -> list[str]:
        if not self._fitted:
            raise MLError("classifier is not fitted")
        X = self._vectorizer.transform(texts)
        indices = self._model.predict(X)
        return [self._labels[int(index)] for index in indices]

    def predict_one(self, text: str) -> str:
        return self.predict([text])[0]

    def predict_proba(self, texts: list[str]) -> np.ndarray:
        """(n_texts, n_topics) probabilities, columns in ``topics`` order."""
        if not self._fitted:
            raise MLError("classifier is not fitted")
        return self._model.predict_proba(self._vectorizer.transform(texts))

    def confidence(self, text: str) -> tuple[str, float]:
        """Best topic and its probability — callers can route low-
        confidence content to a human desk instead of guessing."""
        proba = self.predict_proba([text])[0]
        best = int(np.argmax(proba))
        return self._labels[best], float(proba[best])
