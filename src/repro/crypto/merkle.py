"""Merkle trees over transaction digests, with inclusion proofs.

Blocks commit to their transaction set through the Merkle root so that
any single transaction's membership can be proven with O(log n) hashes —
the property the paper leans on for news traceability ("the record is
immutable and any changes are easy to detect", §IV).

Leaves are hex digest strings.  Interior nodes hash the concatenation of
their children's raw digest bytes, with a domain-separation prefix so a
leaf can never be confused with an interior node (second-preimage
hardening).  Odd nodes are promoted (Bitcoin-style duplication is avoided
because it admits trivial malleability).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256_hex

__all__ = ["MerkleTree", "MerkleProof", "EMPTY_ROOT"]

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

EMPTY_ROOT = sha256_hex(b"repro:empty-merkle-tree")


def _leaf_hash(digest_hex: str) -> str:
    return sha256_hex(_LEAF_PREFIX + bytes.fromhex(digest_hex))


def _node_hash(left: str, right: str) -> str:
    return sha256_hex(_NODE_PREFIX + bytes.fromhex(left) + bytes.fromhex(right))


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof: the leaf index plus sibling hashes bottom-up.

    Each step is ``(sibling_hash, sibling_is_right)``.  A level where the
    node was promoted without a sibling contributes no step.
    """

    leaf: str
    index: int
    path: tuple[tuple[str, bool], ...]

    def verify(self, root: str) -> bool:
        """Recompute the root from the leaf and compare."""
        current = _leaf_hash(self.leaf)
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = _node_hash(current, sibling)
            else:
                current = _node_hash(sibling, current)
        return current == root


class MerkleTree:
    """Merkle tree over an ordered list of hex-digest leaves."""

    def __init__(self, leaves: list[str]):
        self._leaves = list(leaves)
        self._levels: list[list[str]] = []
        self._build()

    def _build(self) -> None:
        if not self._leaves:
            self._levels = [[EMPTY_ROOT]]
            return
        level = [_leaf_hash(leaf) for leaf in self._leaves]
        self._levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(_node_hash(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                nxt.append(level[-1])  # promote the odd node unchanged
            level = nxt
            self._levels.append(level)

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self._leaves)

    def prove(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at *index*."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        path: list[tuple[str, bool]] = []
        pos = index
        for level in self._levels[:-1]:
            sibling_pos = pos ^ 1
            if sibling_pos < len(level):
                path.append((level[sibling_pos], sibling_pos > pos))
            pos //= 2
        return MerkleProof(leaf=self._leaves[index], index=index, path=tuple(path))

    @staticmethod
    def root_of(leaves: list[str]) -> str:
        """Compute just the root without keeping the tree around."""
        return MerkleTree(leaves).root
