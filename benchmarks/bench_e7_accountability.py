"""E7 — §IV traceability & accountability.

Workload: 60 fake-news lineages.  Each lineage: a factual root, a
malicious mutation by a planted culprit, then 3-6 laundering relays
through other accounts.  The question: who created the fake?

- **blockchain trace-back** (this platform): walk the supply-chain
  graph's faithful-copy edges to the content's true author;
- **last-hop baseline** (the status quo the paper criticizes — IP
  churn, foreign servers): all you can see is the account that handed
  you the article.

Reports identification accuracy for both; the gap is the paper's
accountability claim, quantified.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.chain import LocalChain
from repro.core import IdentityContract, SupplyChainContract, build_supply_chain_graph, find_original_author
from repro.corpus import CorpusGenerator

N_LINEAGES = 60


def _build():
    chain = LocalChain(seed=700)
    chain.install_contract(IdentityContract())
    chain.install_contract(SupplyChainContract())
    gen = CorpusGenerator(seed=700)
    rng = random.Random(701)

    accounts = {}

    def account(name):
        if name not in accounts:
            keypair = chain.new_account()
            chain.invoke(keypair, "identity", "register",
                         {"display_name": name, "role": "consumer"})
            accounts[name] = keypair
        return accounts[name]

    def record(name, article, parents, degrees, fact_roots=(), fact_degrees=()):
        chain.invoke(account(name), "supplychain", "record_node",
                     {"article_id": article.article_id, "content_hash": "h",
                      "parents": list(parents), "parent_degrees": list(degrees),
                      "modification_degree": min(list(degrees) + list(fact_degrees) + [1.0]),
                      "topic": article.topic, "op": article.op,
                      "fact_roots": list(fact_roots), "fact_degrees": list(fact_degrees)})

    cases = []
    for lineage in range(N_LINEAGES):
        root = gen.factual()
        reporter = f"reporter-{lineage}"
        report = gen.relay_derivation(root, reporter, 0.0)
        record(reporter, report, [], [], fact_roots=[f"fact-{lineage}"], fact_degrees=[0.0])
        culprit = f"culprit-{lineage}"
        fake = gen.malicious_derivation(report, culprit, 1.0)
        record(culprit, fake, [report.article_id], [fake.modification_degree])
        current = fake
        last_sharer = culprit
        for hop in range(rng.randint(3, 6)):
            last_sharer = f"relayer-{lineage}-{hop}"
            relay_article = gen.relay_derivation(current, last_sharer, 2.0 + hop)
            record(last_sharer, relay_article, [current.article_id], [0.0])
            current = relay_article
        cases.append((current.article_id, culprit, last_sharer))
    return chain, accounts, cases


def _evaluate(chain, accounts, cases):
    graph = build_supply_chain_graph(chain.ledger)
    chain_correct = 0
    baseline_correct = 0
    for leaf_id, culprit, last_sharer in cases:
        identified = find_original_author(graph, leaf_id)
        if identified == accounts[culprit].address:
            chain_correct += 1
        if last_sharer == culprit:  # the last hop is only right if no laundering
            baseline_correct += 1
    return chain_correct, baseline_correct


def test_e7_accountability(benchmark):
    chain, accounts, cases = _build()
    chain_correct, baseline_correct = benchmark.pedantic(
        _evaluate, args=(chain, accounts, cases), rounds=1, iterations=1
    )
    rows = [
        f"lineages: {N_LINEAGES} (mutation + 3-6 laundering relays each)",
        f"blockchain trace-back identified the culprit: {chain_correct}/{N_LINEAGES} "
        f"({100 * chain_correct / N_LINEAGES:.0f}%)",
        f"last-hop baseline (IP-churn world):          {baseline_correct}/{N_LINEAGES} "
        f"({100 * baseline_correct / N_LINEAGES:.0f}%)",
    ]
    emit(benchmark, "E7 — fake-news originator identification", rows)
    assert chain_correct >= 0.95 * N_LINEAGES
    assert baseline_correct == 0
