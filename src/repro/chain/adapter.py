"""NetworkedChain: run the platform on the distributed chain.

:class:`~repro.core.platform.TrustingNewsPlatform` programs against the
LocalChain interface (``invoke`` / ``query`` / ``ledger`` / clock).
This adapter provides the same interface on top of a
:class:`~repro.chain.network.BlockchainNetwork`, so the identical
platform code runs over real consensus: every ``invoke`` endorses,
submits, and advances simulated time until the transaction commits.

This is the deployment the paper actually describes; LocalChain exists
so experiments that aren't *about* consensus don't pay for it.
"""

from __future__ import annotations

from typing import Any

from repro.chain.contracts import Contract, EndorsementPolicy
from repro.chain.ledger import Ledger
from repro.chain.network import BlockchainNetwork, ChainClient
from repro.chain.transaction import TxReceipt
from repro.crypto.keys import KeyPair
from repro.errors import ContractError

__all__ = ["NetworkedChain"]


class NetworkedChain:
    """LocalChain-compatible facade over a BlockchainNetwork."""

    def __init__(self, network: BlockchainNetwork, receipt_timeout: float = 120.0):
        self.network = network
        self.receipt_timeout = receipt_timeout
        self.node_id = "networked-chain"
        self._clients: dict[str, ChainClient] = {}

    # -- accounts & time -----------------------------------------------------

    def new_account(self) -> KeyPair:
        return KeyPair.generate(self.network.rng)

    @property
    def now(self) -> float:
        return self.network.sim.now

    def advance_time(self, delta: float = 1.0) -> float:
        if delta < 0:
            raise ValueError("time cannot go backwards")
        self.network.run_for(delta)
        return self.now

    # -- deployment -------------------------------------------------------------

    def install_contract(self, contract: Contract, policy: EndorsementPolicy | None = None) -> str:
        """Install one contract instance on every peer.

        Contracts are stateless by construction (all state lives in the
        world state behind the context), so sharing the instance across
        peers is safe.
        """
        for peer in self.network.peers:
            peer.registry.install(contract)
            if policy is not None:
                peer.set_policy(contract.name, policy)
        if policy is not None:
            self.network._policies[contract.name] = policy
        return contract.name

    # -- ledger -------------------------------------------------------------------

    @property
    def ledger(self) -> Ledger:
        """The freshest live peer's ledger (they agree on the prefix)."""
        live = [p for p in self.network.peers if not p.crashed]
        return max(live, key=lambda p: p.ledger.height).ledger

    # -- transaction path -------------------------------------------------------------

    def _client_for(self, keypair: KeyPair) -> ChainClient:
        client = self._clients.get(keypair.address)
        if client is None:
            client = ChainClient(keypair=keypair, network=self.network)
            self._clients[keypair.address] = client
        return client

    def invoke(
        self,
        keypair: KeyPair,
        contract: str,
        method: str,
        args: dict[str, Any] | None = None,
    ) -> TxReceipt:
        """Endorse, order, and commit one invocation; raise on failure.

        Matches LocalChain semantics: contract aborts surface as
        :class:`ContractError` (at endorsement time), and a receipt is
        only returned once the transaction is final on some peer.
        """
        client = self._client_for(keypair)
        tx = self.network.endorse_transaction(client, contract, method, args or {})
        self.network.submit(tx)
        receipt = self.network.wait_for_receipt(tx.tx_id, timeout=self.receipt_timeout)
        if not receipt.success:
            raise ContractError(receipt.error or f"{contract}.{method} failed at commit")
        self._barrier(receipt.block_height)
        return receipt

    def _barrier(self, height: int) -> None:
        """Advance time until every live peer applied block *height*.

        The platform issues dependent transactions back-to-back; without
        the barrier the next proposal may be endorsed on a peer that has
        not applied this commit yet, and fail MVCC validation — correct
        Fabric behaviour, but pointless churn for a sequential client.
        """
        deadline = self.now + self.receipt_timeout
        while self.now < deadline:
            live = [p for p in self.network.peers if not p.crashed]
            if all(p.ledger.height >= height for p in live):
                return
            if not self.network.sim.step():
                return

    def query(
        self,
        contract: str,
        method: str,
        args: dict[str, Any] | None = None,
        caller: str = "query",
    ) -> Any:
        for peer in sorted(
            (p for p in self.network.peers if not p.crashed),
            key=lambda p: p.ledger.height,
            reverse=True,
        ):
            result = peer.registry.execute(
                peer.state, contract, method, args or {},
                caller=caller, timestamp=self.now, tx_id="query",
            )
            if not result.success:
                raise ContractError(result.error or "query failed")
            return result.return_value
        raise ContractError("no live peer to query")
