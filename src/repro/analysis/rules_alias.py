"""ALIAS — cross-peer state-sharing hazards.

Peers in the simulated network live in one process, so nothing stops a
``Peer`` method from handing its caller a live reference to the world
state or mempool internals.  Mutating such a reference on the "other
side" of the message boundary corrupts both peers at once — a bug class
the paper's trust argument (independent validators) cannot survive.

ALIAS001 (error)  mutable default argument (list/dict/set display, or a
                  bare ``dict()``/``list()``/``set()``/``defaultdict``
                  call) — the classic shared-across-calls alias.
ALIAS002 (warn)   a method of a boundary class (``Peer``,
                  ``SyncManager``, ``WorldState``, ``Mempool`` by
                  config) returning ``self.<attr>`` where ``<attr>``
                  was initialised to a mutable container in
                  ``__init__``, without a ``dict()/list()/sorted()/
                  .copy()/.snapshot()`` style defensive copy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register

__all__ = ["MutableDefaultRule", "BoundaryReturnRule"]

_MUTABLE_FACTORIES = {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "ALIAS001"
    severity = "error"
    summary = "mutable default argument"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
                if _is_mutable_literal(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        mod, default,
                        f"mutable default argument in `{label}` is shared "
                        "across every call; default to None and create inside",
                    )


def _mutable_init_attrs(class_node: ast.ClassDef) -> dict[str, int]:
    """``self.x = <mutable literal>`` assignments in ``__init__``."""
    attrs: dict[str, int] = {}
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and item.name == "__init__":
            for node in ast.walk(item):
                value = None
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value, targets = node.value, [node.target]
                if value is None or not _is_mutable_literal(value):
                    continue
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        attrs[target.attr] = node.lineno
    return attrs


@register
class BoundaryReturnRule(Rule):
    rule_id = "ALIAS002"
    severity = "warn"
    summary = "boundary class returns a live reference to mutable state"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        boundary = set(self.config.boundary_classes)
        for class_node in ast.walk(mod.tree):
            if not isinstance(class_node, ast.ClassDef) or class_node.name not in boundary:
                continue
            mutable = _mutable_init_attrs(class_node)
            if not mutable:
                continue
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__":
                    continue
                for node in ast.walk(method):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    ret = node.value
                    if (isinstance(ret, ast.Attribute)
                            and isinstance(ret.value, ast.Name)
                            and ret.value.id == "self"
                            and ret.attr in mutable):
                        yield self.finding(
                            mod, node,
                            f"`{class_node.name}.{method.name}` returns a live "
                            f"reference to mutable `self.{ret.attr}`; return a "
                            "copy/snapshot so callers across the peer boundary "
                            "cannot mutate shared state",
                        )
