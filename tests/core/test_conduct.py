"""Management Act conduct reports, strikes, suspension, reinstatement."""

import pytest


from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.errors import ContractError


@pytest.fixture
def world(platform):
    # ConductContract is part of the platform's default install.
    platform.register_participant("acme", role="publisher")
    platform.create_distribution_platform("acme", "acme-news")
    platform.create_news_room("acme", "acme-news", "desk", "politics")
    platform.register_participant("troll", role="journalist")
    platform.authenticate_journalist("acme-news", "troll")
    platform.register_participant("flagger", role="checker")
    return platform


def _file(world, report_id, accused="troll", category="fake-news", stake=1.0,
          reporter="flagger"):
    return world.chain.invoke(
        world.account(reporter), "conduct", "file_report",
        {"report_id": report_id, "accused": world.address_of(accused),
         "article_id": "a-x", "category": category, "stake": stake},
    )


def _adjudicate(world, report_id, upheld):
    return world.chain.invoke(
        world.governance, "conduct", "adjudicate",
        {"report_id": report_id, "upheld": upheld},
    )


def test_file_and_uphold_gives_strike_and_bounty(world):
    _file(world, "r-1")
    record = _adjudicate(world, "r-1", True).return_value
    assert record["status"] == "upheld"
    assert record["payout"] == pytest.approx(3.0)  # stake back + bounty
    standing = world.chain.query("conduct", "standing",
                                 {"address": world.address_of("troll")})
    assert standing == {"strikes": 1, "suspended": False}


def test_dismissed_report_forfeits_stake(world):
    _file(world, "r-1")
    record = _adjudicate(world, "r-1", False).return_value
    assert record["status"] == "dismissed" and record["payout"] == 0.0
    standing = world.chain.query("conduct", "standing",
                                 {"address": world.address_of("troll")})
    assert standing["strikes"] == 0


def test_three_strikes_suspends_and_blocks_publishing(world):
    for index in range(3):
        _file(world, f"r-{index}")
        _adjudicate(world, f"r-{index}", True)
    standing = world.chain.query("conduct", "standing",
                                 {"address": world.address_of("troll")})
    assert standing == {"strikes": 3, "suspended": True}
    gen = CorpusGenerator(seed=1)
    text = relay(gen.factual(topic="politics"), "troll", 0.0).text
    with pytest.raises(ContractError, match="suspended"):
        world.publish_article("troll", "acme-news", "desk", "blocked-1", text, "politics")


def test_reinstatement_restores_publishing(world):
    for index in range(3):
        _file(world, f"r-{index}")
        _adjudicate(world, f"r-{index}", True)
    world.chain.invoke(world.governance, "conduct", "reinstate",
                       {"address": world.address_of("troll")})
    standing = world.chain.query("conduct", "standing",
                                 {"address": world.address_of("troll")})
    assert standing == {"strikes": 0, "suspended": False}
    gen = CorpusGenerator(seed=2)
    text = relay(gen.factual(topic="politics"), "troll", 0.0).text
    published = world.publish_article("troll", "acme-news", "desk", "ok-1", text, "politics")
    assert published.receipt.success


def test_cannot_report_self(world):
    with pytest.raises(ContractError, match="yourself"):
        _file(world, "r-self", accused="flagger", reporter="flagger")


def test_unknown_category_rejected(world):
    with pytest.raises(ContractError, match="unknown category"):
        _file(world, "r-cat", category="vibes")


def test_reporter_cannot_adjudicate_own_report(world):
    # Make flagger verified-adjudicator capable, then try self-adjudication.
    _file(world, "r-own")
    with pytest.raises(ContractError, match="own report"):
        world.chain.invoke(world.account("flagger"), "conduct", "adjudicate",
                           {"report_id": "r-own", "upheld": True})


def test_double_adjudication_rejected(world):
    _file(world, "r-1")
    _adjudicate(world, "r-1", True)
    with pytest.raises(ContractError, match="already adjudicated"):
        _adjudicate(world, "r-1", False)


def test_report_requires_registered_accused(world):
    with pytest.raises(ContractError, match="not a registered identity"):
        world.chain.invoke(
            world.account("flagger"), "conduct", "file_report",
            {"report_id": "r-ghost", "accused": "acct:" + "0" * 40,
             "article_id": "a", "category": "spam", "stake": 1.0},
        )


def test_reinstate_requires_suspension(world):
    with pytest.raises(ContractError, match="not suspended"):
        world.chain.invoke(world.governance, "conduct", "reinstate",
                           {"address": world.address_of("troll")})
