"""Always-on consensus invariant auditing.

:class:`InvariantAuditor` hooks a :class:`~repro.chain.network.
BlockchainNetwork` and re-verifies the safety properties the platform's
trust argument rests on — after every committed block (incremental
checks, cheap) and again at end-of-run (full-ledger forensics):

- **agreement** — no two honest peers ever commit different blocks at
  the same height, crashed peers included (a commit is permanent, so a
  peer that forked before crashing still violated safety);
- **certificate validity** — every PBFT commit certificate names at
  least 2f+1 *distinct validators*, no non-validator signers, and the
  certified digest matches the block that actually committed (this is
  the invariant the validator-membership rule in
  :mod:`repro.chain.consensus.pbft` exists to protect);
- **tx durability** — every admitted transaction is eventually committed
  or still pending in some honest mempool (catches the silent tx-drop
  where a deposed primary's in-flight round was discarded on view
  change);
- **state convergence** — the existing
  :meth:`~repro.chain.network.BlockchainNetwork.assert_convergence`
  prefix/app-hash check, surfaced as a structured violation;
- **catch-up liveness** — at end of run every live honest peer must sit
  at the network head with the identical ``state_digest()`` (a recovered
  peer that silently stays behind forever is a liveness bug, which the
  old min-height prefix check masked), and — given a fault log — every
  peer recovered or restarted at time *t* must have reached the head
  height that existed at *t* within ``sync_window`` seconds;
- **pipeline consistency** — under pipelined PBFT, an engine's
  decided-but-unapplied buffer must only ever hold heights *above* the
  applied head: a decided block at or below it means the drain logic
  lost a block or applied out of order;
- **storage durability** — on peers with a durable store
  (:class:`repro.chain.store.DurableStore`), every block the store
  acknowledged durable and that survived injected disk faults must be
  present and hash-identical in the recovered ledger, and every acked
  block that did *not* survive must be explained by a counted recovery
  degradation (torn tail, partial flush, corruption) — a silent loss of
  an acknowledged write is the one failure a durable store may never
  exhibit.  Recovered peers still re-converge via the existing catch-up
  and convergence checks.

Crash-*restart* faults (see :meth:`~repro.simnet.failure.
FailureSchedule.restart_at`) legitimately wipe a peer's mempool; the
auditor is told which pending tx ids were wiped and excuses exactly
those from the durability check — an injected loss, not a protocol drop.

Violations raise (or, with ``strict=False``, collect) structured
:class:`AuditViolation` errors carrying full round forensics.  The
chaos harness in :mod:`repro.simnet.chaos` generates the fault schedules
these invariants are audited under; ``benchmarks/bench_chaos_audit.py``
reports violation counts and recovery latency across seeds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.chain.block import Block
from repro.errors import ChainError
from repro.obs import MetricsRegistry, metric_attr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.network import BlockchainNetwork
    from repro.chain.peer import Peer
    from repro.chain.transaction import Transaction
    from repro.simnet.failure import FailureEvent

__all__ = ["AuditViolation", "InvariantAuditor", "recovery_latencies"]


class AuditViolation(ChainError):
    """A consensus invariant failed, with forensics attached.

    Attributes:
        invariant: which check failed (``"agreement"``,
            ``"certificate"``, ``"durability"``, ``"convergence"``).
        height: block height the violation anchors to, if any.
        peers: node ids implicated.
        forensics: free-form structured context (digests, certificates,
            views, timestamps) for the failing round.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        height: int | None = None,
        peers: tuple[str, ...] = (),
        forensics: dict[str, Any] | None = None,
    ):
        self.invariant = invariant  # "agreement" | "certificate" | "durability" | "convergence" | "catchup" | "pipeline" | "storage"
        self.detail = detail
        self.height = height
        self.peers = tuple(peers)
        self.forensics = dict(forensics or {})
        location = f" at height {height}" if height is not None else ""
        involved = f" [{', '.join(self.peers)}]" if self.peers else ""
        super().__init__(f"invariant '{invariant}' violated{location}{involved}: {detail}")


class InvariantAuditor:
    """Continuously audits a :class:`BlockchainNetwork`'s safety invariants.

    Attach with ``auditor = InvariantAuditor(network)`` *before* driving
    traffic; the auditor registers itself on every peer's commit path and
    on the network's admission path.  ``strict=True`` (default) raises on
    the first violation; ``strict=False`` collects into ``violations``
    so chaos benchmarks can count rather than abort.
    """

    #: Audit counters live in the network's shared metrics registry so
    #: the exporters report them alongside peer/sync/consensus numbers;
    #: the attribute API is unchanged (see :class:`repro.obs.views.metric_attr`).
    blocks_audited = metric_attr("audit.blocks_audited")
    checks_run = metric_attr("audit.checks_run")

    def __init__(self, network: "BlockchainNetwork", strict: bool = True):
        self.network = network
        self.strict = strict
        self._obs = getattr(network, "obs", None) or MetricsRegistry()
        self._counter_cache: dict[str, Any] = {}
        self.violations: list[AuditViolation] = []
        #: tx_id -> simulated admission time, for the durability check.
        self.tracked_txs: dict[str, float] = {}
        #: pending tx ids wiped by injected crash-restarts — excused from
        #: the durability check (fault-induced loss, not a protocol drop).
        self.restart_wiped: set[str] = set()
        #: height -> {digest: first honest peer that committed it}.
        self._height_digests: dict[int, dict[str, str]] = {}
        #: node id -> [(time, height)] commit trajectory, for catch-up
        #: latency measurement (monotone in both coordinates).
        self._commit_history: dict[str, list[tuple[float, int]]] = {}
        self._watched: set[str] = set()
        network.auditors.append(self)
        for peer in network.peers:
            self.watch_peer(peer)

    def _obs_counter(self, metric: str) -> Any:
        """Resolve (and cache) a registry counter — the protocol
        :class:`repro.obs.views.metric_attr` descriptors require."""
        counter = self._counter_cache.get(metric)
        if counter is None:
            counter = self._obs.counter(metric)
            self._counter_cache[metric] = counter
        return counter

    # -- hook registration -------------------------------------------------

    def watch_peer(self, peer: "Peer") -> None:
        """Subscribe to *peer*'s commits (idempotent; used by join_peer)."""
        if peer.node_id in self._watched:
            return
        self._watched.add(peer.node_id)
        self._commit_history[peer.node_id] = [(self.network.sim.now, peer.ledger.height)]
        peer.commit_listeners.append(self._on_block_committed)
        peer.restart_listeners.append(self._on_peer_restarted)

    def _on_peer_restarted(self, peer: "Peer", wiped: set[str]) -> None:
        self.restart_wiped |= wiped
        self._check_storage_recovery(peer)

    def on_tx_admitted(self, tx: "Transaction") -> None:
        """Record an admitted transaction for the durability invariant."""
        self.tracked_txs.setdefault(tx.tx_id, self.network.sim.now)

    def track_tx(self, tx_id: str) -> None:
        """Manually track a tx submitted directly to a peer (bypassing
        ``BlockchainNetwork.submit``), as chaos tests do."""
        self.tracked_txs.setdefault(tx_id, self.network.sim.now)

    # -- incremental checks (after every committed block) ------------------

    def _on_block_committed(self, peer: "Peer", block: Block) -> None:
        self.blocks_audited += 1
        self._commit_history.setdefault(peer.node_id, []).append(
            (self.network.sim.now, block.height)
        )
        if peer.byzantine:
            return  # a byzantine ledger carries no guarantees to audit
        self._check_agreement_incremental(peer, block)
        self._check_certificate(peer, block)

    def _check_agreement_incremental(self, peer: "Peer", block: Block) -> None:
        self.checks_run += 1
        digests = self._height_digests.setdefault(block.height, {})
        digests.setdefault(block.block_hash, peer.node_id)
        if len(digests) > 1:
            self._violate(
                "agreement",
                f"honest peers committed {len(digests)} distinct blocks",
                height=block.height,
                peers=tuple(sorted(digests.values())) + (peer.node_id,),
                forensics={
                    "digests": dict(digests),
                    "latest_peer": peer.node_id,
                    "latest_digest": block.block_hash,
                    "time": self.network.sim.now,
                },
            )

    def _check_certificate(self, peer: "Peer", block: Block) -> None:
        engine = peer.engine
        certificates = getattr(engine, "commit_certificates", None)
        if certificates is None:
            return  # engine issues no certificates (e.g. PoA ordering)
        entry = certificates.get(block.height)
        if entry is None:
            # Synchronous state-transfer replay (join_peer bootstrap)
            # commits without a certificate; the source peer's was audited.
            return
        self.checks_run += 1
        digest, certificate = entry
        validators = set(engine.validators)
        quorum = engine.quorum
        distinct = set(certificate)
        forensics = {
            "certificate": sorted(certificate),
            "validators": sorted(validators),
            "quorum": quorum,
            "view": getattr(engine, "view", None),
            "digest": digest,
            "block_digest": block.block_hash,
            "time": self.network.sim.now,
        }
        outsiders = distinct - validators
        if outsiders:
            self._violate(
                "certificate",
                f"certificate contains non-validator signer(s) {sorted(outsiders)}",
                height=block.height, peers=(peer.node_id,), forensics=forensics,
            )
        if len(distinct & validators) < quorum:
            self._violate(
                "certificate",
                f"only {len(distinct & validators)} distinct validator signers, "
                f"quorum is {quorum}",
                height=block.height, peers=(peer.node_id,), forensics=forensics,
            )
        if digest != block.block_hash:
            self._violate(
                "certificate",
                "certified digest does not match the committed block",
                height=block.height, peers=(peer.node_id,), forensics=forensics,
            )

    # -- end-of-run checks -------------------------------------------------

    def final_check(
        self,
        failures: list["FailureEvent"] | None = None,
        sync_window: float | None = None,
    ) -> list[AuditViolation]:
        """Run the full audit; returns (and with ``strict`` raises) violations.

        Pass the fault injector's ``log`` as *failures* (and optionally a
        *sync_window* bound in simulated seconds) to also audit per-event
        catch-up latency; without it only the end-state catch-up check
        runs.
        """
        self.check_agreement()
        self.check_certificates()
        self.check_durability()
        self.check_convergence()
        self.check_catchup(failures=failures, sync_window=sync_window)
        self.check_pipeline()
        self.check_storage(failures=failures)
        return list(self.violations)

    def check_agreement(self) -> None:
        """Full-ledger prefix agreement across honest peers, crashed included.

        Every honest chain must be a prefix of the longest honest chain
        (prefix-of-reference implies pairwise agreement on common
        prefixes, so one reference suffices).
        """
        self.checks_run += 1
        honest = [p for p in self.network.peers if not p.byzantine]
        if not honest:
            return
        reference = max(honest, key=lambda p: p.ledger.height)
        for peer in honest:
            if peer is reference:
                continue
            for height in range(1, peer.ledger.height + 1):
                a = reference.ledger.block(height).block_hash
                b = peer.ledger.block(height).block_hash
                if a != b:
                    self._violate(
                        "agreement",
                        f"{peer.node_id} diverges from {reference.node_id}",
                        height=height,
                        peers=(reference.node_id, peer.node_id),
                        forensics={
                            "reference_digest": a,
                            "peer_digest": b,
                            "crashed": peer.crashed,
                        },
                    )
                    break  # deeper heights on this fork add no information

    def check_certificates(self) -> None:
        """Re-validate every recorded commit certificate on honest peers."""
        for peer in self.network.peers:
            if peer.byzantine:
                continue
            certificates = getattr(peer.engine, "commit_certificates", None)
            if not certificates:
                continue
            for height, (digest, certificate) in sorted(certificates.items()):
                if height > peer.ledger.height:
                    continue
                block = peer.ledger.block(height)
                self._check_certificate_entry(peer, height, digest, certificate, block)

    def _check_certificate_entry(
        self, peer: "Peer", height: int, digest: str,
        certificate: tuple[str, ...], block: Block,
    ) -> None:
        self.checks_run += 1
        engine = peer.engine
        validators = set(engine.validators)
        distinct = set(certificate)
        problems = []
        if distinct - validators:
            problems.append(f"non-validator signers {sorted(distinct - validators)}")
        if len(distinct & validators) < engine.quorum:
            problems.append(
                f"{len(distinct & validators)} validator signers < quorum {engine.quorum}"
            )
        if digest != block.block_hash:
            problems.append("certified digest mismatches committed block")
        if problems:
            self._violate(
                "certificate",
                "; ".join(problems),
                height=height,
                peers=(peer.node_id,),
                forensics={
                    "certificate": sorted(certificate),
                    "validators": sorted(validators),
                    "digest": digest,
                    "block_digest": block.block_hash,
                },
            )

    def check_durability(self) -> None:
        """Every admitted tx is committed or still pending somewhere honest.

        "Pending" covers a peer's mempool *and* its engine's open
        consensus rounds (``pending_txs``): a transaction taken into an
        in-flight proposal is retained state, not a drop.  A tx that
        appears in none of receipts / mempools / open rounds has been
        silently lost — exactly what the seed engine did when a view
        change discarded a deposed primary's round.

        Tx ids wiped by an injected crash-*restart* are excused: losing
        a restarted node's mempool is the fault being modeled, not a
        protocol bug (the excused count is reported in forensics).
        """
        self.checks_run += 1
        honest = [p for p in self.network.peers if not p.byzantine]
        in_flight: set[str] = set()
        for peer in honest:
            pending = getattr(peer.engine, "pending_txs", None)
            if pending is not None:
                in_flight |= pending()
        missing = [
            (tx_id, admitted_at)
            for tx_id, admitted_at in self.tracked_txs.items()
            if tx_id not in in_flight
            and not any(tx_id in p.receipts for p in honest)
            and not any(tx_id in p.mempool for p in honest)
        ]
        lost = [(t, a) for t, a in missing if t not in self.restart_wiped]
        excused = len(missing) - len(lost)
        if lost:
            self._violate(
                "durability",
                f"{len(lost)} admitted transaction(s) vanished "
                "(neither committed nor pending in any honest mempool)",
                forensics={
                    "lost": [
                        {"tx_id": tx_id, "admitted_at": admitted_at}
                        for tx_id, admitted_at in lost[:20]
                    ],
                    "lost_total": len(lost),
                    "lost_excused": excused,
                    "tracked_total": len(self.tracked_txs),
                },
            )

    def check_convergence(self) -> None:
        """State convergence (prefix + app-hash), as a structured violation."""
        self.checks_run += 1
        try:
            self.network.assert_convergence()
        except AuditViolation:
            raise
        except ChainError as exc:
            self._violate(
                "convergence",
                str(exc),
                forensics={"heights": self.network.committed_heights()},
            )

    def check_catchup(
        self,
        failures: list["FailureEvent"] | None = None,
        sync_window: float | None = None,
    ) -> None:
        """Catch-up liveness: nobody honest and alive stays behind.

        End-state: every live honest peer must sit at the maximum honest
        height with the identical ``state_digest()``.  This is strictly
        stronger than the old min-height prefix check, which passed even
        when a recovered peer silently never caught up.

        Per-event (needs *failures*): for every ``recover`` / ``restart``
        fault at time *t*, the peer must have reached the head height
        that existed at *t*.  With *sync_window* set, it must have done
        so within that many simulated seconds.
        """
        self.checks_run += 1
        honest = [p for p in self.network.peers if not p.byzantine]
        live = [p for p in honest if not p.crashed]
        if live:
            head = max(p.ledger.height for p in honest)
            behind = [p for p in live if p.ledger.height < head]
            if behind:
                self._violate(
                    "catchup",
                    f"{len(behind)} live honest peer(s) below head height {head}",
                    height=head,
                    peers=tuple(sorted(p.node_id for p in behind)),
                    forensics={
                        "heights": {p.node_id: p.ledger.height for p in honest},
                        "time": self.network.sim.now,
                    },
                )
            digests = {p.state.state_digest() for p in live if p.ledger.height == head}
            if len(digests) > 1:
                self._violate(
                    "catchup",
                    "live honest peers at head disagree on state_digest()",
                    height=head,
                    peers=tuple(sorted(p.node_id for p in live)),
                    forensics={
                        "digests": {
                            p.node_id: p.state.state_digest()
                            for p in live
                            if p.ledger.height == head
                        },
                    },
                )
        if failures is None:
            return
        for event, latency in self.catchup_latencies(failures):
            if latency is None:
                self._violate(
                    "catchup",
                    f"{event.target} never reached the head height that existed "
                    f"when it came back at t={event.time:g} ({event.action})",
                    peers=(event.target,),
                    forensics={"event": event, "sync_window": sync_window},
                )
            elif sync_window is not None and latency > sync_window:
                self._violate(
                    "catchup",
                    f"{event.target} took {latency:.2f}s to catch up after its "
                    f"{event.action} at t={event.time:g} (window {sync_window:g}s)",
                    peers=(event.target,),
                    forensics={
                        "event": event,
                        "latency": latency,
                        "sync_window": sync_window,
                    },
                )

    def check_pipeline(self) -> None:
        """Pipeline internal consistency on honest engines.

        A decided-but-unapplied block (commit quorum reached out of
        order) must sit strictly above the applied head; an entry at or
        below it means the commit-buffer drain lost a block or applied
        out of order.  Engines without a buffer (PoA, depth-1 PBFT with
        nothing in flight) trivially pass.
        """
        self.checks_run += 1
        for peer in self.network.peers:
            if peer.byzantine:
                continue
            decided = getattr(peer.engine, "decided_heights", None)
            if decided is None:
                continue
            stuck = [h for h in decided() if h <= peer.ledger.height]
            if stuck:
                self._violate(
                    "pipeline",
                    f"decided-block buffer holds height(s) {stuck} at or below "
                    f"the applied head {peer.ledger.height}",
                    height=min(stuck),
                    peers=(peer.node_id,),
                    forensics={
                        "buffered_heights": decided(),
                        "ledger_height": peer.ledger.height,
                    },
                )

    def check_storage(self, failures: list["FailureEvent"] | None = None) -> None:
        """Storage durability on peers with a durable store.

        Three obligations, audited per peer against the store's own
        acked map (``height -> (block_hash, payload crc)``, recorded at
        fsync time and *never* used to rebuild state, so it is
        independent ground truth):

        - every acknowledged block that survived recovery must be
          present and hash-identical in the live ledger;
        - every acknowledged block that did **not** survive must be
          explained by a recorded (and counted) degradation — a durable
          store may lose acked writes only to an injected disk fault it
          *detected*, never silently;
        - given the fault log, a peer that suffered no disk fault may
          not have lost any acknowledged write at all.

        The per-kind ``store.degradations`` counters are cross-checked
        against the recovery reports so the observability path cannot
        drift from the forensics path.
        """
        self.checks_run += 1
        disk_faulted = {
            e.target for e in (failures or []) if e.action.startswith("disk-")
        }
        for peer in self.network.peers:
            if peer.byzantine:
                continue
            store = peer.store
            acked = getattr(store, "acked", None)
            if acked is None:
                continue  # in-memory backend: nothing durable to audit
            self._check_acked_in_ledger(peer, acked)
            reports = list(getattr(store, "reports", ()))
            lost = sum(len(r.missing_acked) for r in reports)
            degraded = sum(len(r.degradations) for r in reports)
            if lost and not degraded:
                self._violate(
                    "storage",
                    f"{lost} acknowledged block(s) lost with no recorded degradation",
                    peers=(peer.node_id,),
                    forensics={"reports": [r.summary() for r in reports]},
                )
            if lost and failures is not None and peer.node_id not in disk_faulted:
                self._violate(
                    "storage",
                    f"{lost} acknowledged block(s) lost although no disk fault "
                    "was injected on this peer",
                    peers=(peer.node_id,),
                    forensics={"reports": [r.summary() for r in reports]},
                )
            counted = sum(
                c.value
                for c in self._obs.counters("store.degradations")
                if c.labels.get("peer") == peer.node_id
            )
            if counted < degraded:
                self._violate(
                    "storage",
                    f"recovery reports list {degraded} degradation(s) but only "
                    f"{counted:g} were counted in store.degradations",
                    peers=(peer.node_id,),
                    forensics={"counted": counted, "reported": degraded},
                )

    def _check_storage_recovery(self, peer: "Peer") -> None:
        """Incremental storage audit, run the moment a peer restarts
        through its store (before sync can paper over a bad recovery)."""
        store = peer.store
        report = getattr(store, "last_recovery", None)
        if report is None:
            return  # in-memory backend, or the store has never recovered
        self.checks_run += 1
        self._check_acked_in_ledger(peer, store.acked)
        if report.missing_acked and not report.degradations:
            self._violate(
                "storage",
                f"recovery lost {len(report.missing_acked)} acknowledged "
                "block(s) without recording a degradation",
                peers=(peer.node_id,),
                forensics={"report": report.summary()},
            )

    def _check_acked_in_ledger(
        self, peer: "Peer", acked: dict[int, tuple[str, int]]
    ) -> None:
        for height, (block_hash, _crc) in sorted(acked.items()):
            actual = (
                peer.ledger.block(height).block_hash
                if 0 < height <= peer.ledger.height
                else None
            )
            if actual != block_hash:
                self._violate(
                    "storage",
                    "block acknowledged durable is missing or differs after recovery",
                    height=height,
                    peers=(peer.node_id,),
                    forensics={
                        "acked_hash": block_hash,
                        "ledger_hash": actual,
                        "ledger_height": peer.ledger.height,
                    },
                )

    def catchup_latencies(
        self, failures: list["FailureEvent"]
    ) -> list[tuple["FailureEvent", float | None]]:
        """For each recover/restart fault, time until the peer reached the
        head height that existed at the moment it came back.

        Only honest watched peers are measured (a byzantine node is under
        no obligation to catch up).  Latency is ``0.0`` when the peer was
        already at the then-head at recovery time, ``None`` when the run
        ended before it got there.
        """
        honest_ids = {p.node_id for p in self.network.peers if not p.byzantine}
        out: list[tuple[FailureEvent, float | None]] = []
        for event in failures:
            if event.action not in ("recover", "restart"):
                continue
            if event.target not in honest_ids or event.target not in self._commit_history:
                continue
            target_height = self._head_height_at(event.time)
            reached = self._reached_height_at(event.target, target_height, event.time)
            out.append((event, reached - event.time if reached is not None else None))
        return out

    def _head_height_at(self, time: float) -> int:
        """Max honest height on record at simulated *time*."""
        byzantine = {p.node_id for p in self.network.peers if p.byzantine}
        head = 0
        for node_id, history in self._commit_history.items():
            if node_id in byzantine:
                continue
            for t, height in history:
                if t > time:
                    break
                head = max(head, height)
        return head

    def _reached_height_at(
        self, node_id: str, height: int, not_before: float
    ) -> float | None:
        """Earliest time ≥ *not_before* at which *node_id* had *height*."""
        for t, h in self._commit_history[node_id]:
            if h >= height and t >= not_before:
                return t
            if h >= height and t < not_before:
                return not_before  # already there when it came back
        return None

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Counters for benchmark tables."""
        by_invariant: dict[str, int] = {}
        for violation in self.violations:
            by_invariant[violation.invariant] = by_invariant.get(violation.invariant, 0) + 1
        return {
            "blocks_audited": self.blocks_audited,
            "checks_run": self.checks_run,
            "txs_tracked": len(self.tracked_txs),
            "restart_wiped": len(self.restart_wiped),
            "violations": len(self.violations),
            "violations_by_invariant": by_invariant,
        }

    def _violate(
        self,
        invariant: str,
        detail: str,
        *,
        height: int | None = None,
        peers: tuple[str, ...] = (),
        forensics: dict[str, Any] | None = None,
    ) -> None:
        violation = AuditViolation(
            invariant, detail, height=height, peers=peers, forensics=forensics
        )
        self.violations.append(violation)
        self._obs.counter("audit.violations", invariant=invariant).inc()
        if self.strict:
            raise violation


def recovery_latencies(
    network: "BlockchainNetwork", failures: list["FailureEvent"]
) -> list[tuple["FailureEvent", float | None]]:
    """For each injected fault, time until the next honest commit.

    Measures how quickly consensus regains liveness after each
    crash/partition/chaos event: the gap between the fault firing and the
    first block committed by any honest peer afterwards (``None`` if the
    run ended first).  Heal/recover events are included — their latency
    shows the cost of catching up.
    """
    commit_times = sorted(
        t
        for peer in network.peers
        if not peer.byzantine
        for t in peer.metrics.commit_times
    )
    out: list[tuple[FailureEvent, float | None]] = []
    for event in failures:
        after = next((t for t in commit_times if t > event.time), None)
        out.append((event, after - event.time if after is not None else None))
    return out
