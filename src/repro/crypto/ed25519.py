"""Pure-Python Ed25519 (RFC 8032) signatures.

Implemented from scratch on top of ``hashlib.sha512`` so the blockchain
substrate has no dependency on external crypto packages.  Points are kept
in extended homogeneous coordinates (X, Y, Z, T) for efficient addition
and doubling; scalar multiplication is a simple double-and-add, which is
plenty for a simulator (signing/verifying a few thousand transactions).

This module deliberately exposes only the byte-level API:

- :func:`generate_public_key` — 32-byte seed -> 32-byte public key
- :func:`sign` — (seed, message) -> 64-byte signature
- :func:`verify` — (public key, message, signature) -> bool

Key management lives in :mod:`repro.crypto.keys`.
"""

from __future__ import annotations

import hashlib

from repro.errors import CryptoError

__all__ = [
    "generate_public_key",
    "sign",
    "verify",
    "verify_cache_stats",
    "verify_cache_clear",
    "SEED_BYTES",
    "SIG_BYTES",
]

SEED_BYTES = 32
SIG_BYTES = 64

_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P
_I = pow(2, (_P - 1) // 4, _P)  # sqrt(-1)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _P - 2, _P)


def _recover_x(y: int, sign_bit: int) -> int:
    """Recover the x coordinate from y and the encoded sign bit."""
    if y >= _P:
        raise CryptoError("point y coordinate out of range")
    x2 = (y * y - 1) * _inv(_D * y * y + 1) % _P
    if x2 == 0:
        if sign_bit:
            raise CryptoError("invalid point encoding")
        return 0
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = x * _I % _P
    if (x * x - x2) % _P != 0:
        raise CryptoError("invalid point encoding")
    if (x & 1) != sign_bit:
        x = _P - x
    return x


# Points as (X, Y, Z, T) extended coordinates with x = X/Z, y = Y/Z, xy = T/Z.
_Point = tuple[int, int, int, int]

_G_Y = 4 * _inv(5) % _P
_G_X = _recover_x(_G_Y, 0)
_G: _Point = (_G_X, _G_Y, 1, _G_X * _G_Y % _P)
_IDENTITY: _Point = (0, 1, 1, 0)


def _point_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_mul(s: int, p: _Point) -> _Point:
    q = _IDENTITY
    while s > 0:
        if s & 1:
            q = _point_add(q, p)
        p = _point_add(p, p)
        s >>= 1
    return q


# -- fixed-base acceleration -------------------------------------------------
#
# Signing (and half of verification) multiplies the *base point* by a
# scalar.  With a 4-bit windowed table — table[w][d] = (16**w * d) * G —
# that multiplication becomes at most 63 point additions instead of
# ~256 doublings + ~128 additions, a ~4x speedup that the whole
# blockchain layer inherits.  The table costs ~1000 point additions
# once, at import.

_WINDOW_BITS = 4
_N_WINDOWS = 64  # 256 bits / 4


def _build_base_table() -> list[list[_Point]]:
    table: list[list[_Point]] = []
    power = _G  # (16 ** w) * G
    for _ in range(_N_WINDOWS):
        row = [_IDENTITY]
        for _ in range(15):
            row.append(_point_add(row[-1], power))
        table.append(row)
        power = _point_add(row[-1], power)  # 16 * (16**w) G
    return table


_BASE_TABLE = _build_base_table()


def _point_mul_base(s: int) -> _Point:
    """Scalar multiplication of the base point via the windowed table."""
    q = _IDENTITY
    window = 0
    while s > 0:
        digit = s & 0xF
        if digit:
            q = _point_add(q, _BASE_TABLE[window][digit])
        s >>= _WINDOW_BITS
        window += 1
    return q


def _point_equal(p: _Point, q: _Point) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    if (x1 * z2 - x2 * z1) % _P != 0:
        return False
    return (y1 * z2 - y2 * z1) % _P == 0


def _point_compress(p: _Point) -> bytes:
    x, y, z, _ = p
    zinv = _inv(z)
    x, y = x * zinv % _P, y * zinv % _P
    return int.to_bytes(y | ((x & 1) << 255), 32, "little")


def _point_decompress(data: bytes) -> _Point:
    if len(data) != 32:
        raise CryptoError("point encoding must be 32 bytes")
    encoded = int.from_bytes(data, "little")
    y = encoded & ((1 << 255) - 1)
    sign_bit = encoded >> 255
    x = _recover_x(y, sign_bit)
    return (x, y, 1, x * y % _P)


def _secret_expand(seed: bytes) -> tuple[int, bytes]:
    if len(seed) != SEED_BYTES:
        raise CryptoError(f"seed must be {SEED_BYTES} bytes, got {len(seed)}")
    h = _sha512(seed)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def generate_public_key(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    a, _ = _secret_expand(seed)
    return _point_compress(_point_mul_base(a))


def sign(seed: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature of *message* under *seed*."""
    a, prefix = _secret_expand(seed)
    public = _point_compress(_point_mul_base(a))
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    r_point = _point_compress(_point_mul_base(r))
    h = int.from_bytes(_sha512(r_point + public + message), "little") % _L
    s = (r + h * a) % _L
    return r_point + int.to_bytes(s, 32, "little")


# -- memoized verification ---------------------------------------------------
#
# In the simulator every peer re-verifies the same immutable transaction
# bytes, and verification is a pure function of its inputs, so caching
# changes no outcome — it only stops an n-peer network from paying the
# same scalar multiplications n times.  The cache is keyed on
# sha512(pubkey ‖ msg ‖ sig) rather than the raw argument tuple: an
# lru_cache key retains the full message bytes, so 200k entries of
# kilobyte-scale payloads pinned hundreds of MB.  Digest keys are a
# fixed 64 bytes regardless of payload size.  (The three inputs have
# fixed lengths — checked before lookup — so the concatenation is
# unambiguous.)  Eviction is insertion-order FIFO over a plain dict,
# which is deterministic and O(1) amortized.

_VERIFY_CACHE: dict[bytes, bool] = {}
#: Entry cap; each entry is a 64-byte key + bool, so the cache memory
#: bound no longer scales with payload size.  Tests may shrink this.
VERIFY_CACHE_MAX = 200_000

_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def verify_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters plus current size, for the obs registry
    (see :func:`repro.obs.export.snapshot_crypto_cache`)."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "evictions": _cache_evictions,
        "size": len(_VERIFY_CACHE),
    }


def verify_cache_clear() -> None:
    """Reset the verification cache and its counters (test isolation)."""
    global _cache_hits, _cache_misses, _cache_evictions
    _VERIFY_CACHE.clear()
    _cache_hits = _cache_misses = _cache_evictions = 0


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature; returns ``False`` on any mismatch.

    Malformed inputs (wrong lengths, non-points) return ``False`` rather
    than raising, so callers can treat all bad signatures uniformly.
    Results are memoized on a bounded digest-keyed cache (see above).
    """
    global _cache_hits, _cache_misses
    if len(public_key) != 32 or len(signature) != SIG_BYTES:
        return False
    key = _sha512(public_key + message + signature)
    cached = _VERIFY_CACHE.get(key)
    if cached is not None:
        _cache_hits += 1
        return cached
    _cache_misses += 1
    result = _verify_uncached(public_key, message, signature)
    if len(_VERIFY_CACHE) >= VERIFY_CACHE_MAX:
        _evict_oldest()
    _VERIFY_CACHE[key] = result
    return result


def _evict_oldest() -> None:
    global _cache_evictions
    oldest = next(iter(_VERIFY_CACHE))
    del _VERIFY_CACHE[oldest]
    _cache_evictions += 1


def _verify_uncached(public_key: bytes, message: bytes, signature: bytes) -> bool:
    try:
        a_point = _point_decompress(public_key)
        r_point = _point_decompress(signature[:32])
    except CryptoError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    h = int.from_bytes(_sha512(signature[:32] + public_key + message), "little") % _L
    left = _point_mul_base(s)
    right = _point_add(r_point, _point_mul(h, a_point))
    return _point_equal(left, right)
