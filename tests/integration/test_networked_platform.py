"""Integration: platform contracts over the *distributed* chain.

The platform normally runs on LocalChain for speed; this suite proves
the same contracts behave identically when ordered by real consensus on
the simulated network — the deployment the paper actually describes.
"""

import pytest

from repro.chain import BlockchainNetwork, EndorsementPolicy
from repro.core import (
    FactualDatabaseContract,
    IdentityContract,
    SupplyChainContract,
    VoteContract,
    build_supply_chain_graph,
    trace_to_factual_root,
)
from repro.simnet import FixedLatency


@pytest.fixture(scope="module", params=["poa", "pbft"])
def net(request):
    network = BlockchainNetwork(
        n_peers=4, consensus=request.param, block_interval=0.5,
        latency=FixedLatency(0.02), seed=55,
    )
    for contract in (IdentityContract, FactualDatabaseContract, SupplyChainContract, VoteContract):
        network.install_contract(contract)
    return network


def test_identity_and_facts_over_consensus(net):
    governance = net.client()
    receipt = governance.invoke("identity", "register",
                                {"display_name": "gov", "role": "checker"})
    assert receipt.success
    receipt = governance.invoke("identity", "verify", {"address": governance.address})
    assert receipt.success
    receipt = governance.invoke("factualdb", "seed_fact",
                                {"fact_id": "f-1", "content_hash": "h", "source": "s",
                                 "topic": "politics"})
    assert receipt.success
    assert governance.query("factualdb", "list_facts", {}) == ["f-1"]
    net.run_for(5)
    net.assert_convergence()


def test_supply_chain_graph_identical_on_all_peers(net):
    author = net.client()
    author.invoke("identity", "register", {"display_name": "a", "role": "creator"})
    author.invoke("supplychain", "record_node",
                  {"article_id": "net-a1", "content_hash": "h", "parents": [],
                   "modification_degree": 0.0, "topic": "politics", "op": "publish",
                   "fact_roots": ["f-1"], "parent_degrees": [], "fact_degrees": [0.0]})
    author.invoke("supplychain", "record_node",
                  {"article_id": "net-a2", "content_hash": "h2", "parents": ["net-a1"],
                   "parent_degrees": [0.3], "modification_degree": 0.3,
                   "topic": "politics", "op": "insert", "fact_roots": []})
    net.run_for(5)
    net.assert_convergence()
    graphs = [build_supply_chain_graph(peer.ledger) for peer in net.peers]
    heights = [p.ledger.height for p in net.peers]
    assert len(set(heights)) == 1
    reference_edges = sorted(graphs[0].edges())
    for graph in graphs[1:]:
        assert sorted(graph.edges()) == reference_edges
    trace = trace_to_factual_root(graphs[0], "net-a2")
    assert trace.traceable
    assert trace.cumulative_modification == pytest.approx(0.3)


def test_endorsement_policy_multi_peer():
    network = BlockchainNetwork(n_peers=4, consensus="poa", block_interval=0.5, seed=77)
    network.install_contract(IdentityContract, policy=EndorsementPolicy(required=3))
    client = network.client()
    receipt = client.invoke("identity", "register", {"display_name": "x", "role": "consumer"})
    assert receipt.success
    network.run_for(5)  # let the block reach every peer
    for peer in network.peers:
        committed = peer.ledger.get_transaction(receipt.tx_id)
        assert committed is not None and committed.valid
        assert len(committed.transaction.endorsements) >= 3
