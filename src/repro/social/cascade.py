"""Independent-cascade news propagation with mutation-on-share.

Round-based: everything posted in round *r* is seen by the poster's
followers, each of whom re-shares with a probability shaped by

- their agent kind (bots ≫ users ≫ journalists),
- the article's *emotional appeal* (sensational content travels faster —
  the empirical asymmetry the paper is built to fight),
- platform intervention (flagged articles get damped — the Facebook
  "reduce recurrence by 80 %" mechanism of ref [26, 27]),
- limited per-round attention (ref [65]).

A re-share may *mutate* the article (malicious agents use the paper's
modification taxonomy), so a cascade generates exactly the dynamic
news supply chain of Fig. 4.  A hook lets the platform record every
share as a blockchain transaction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from repro.corpus.articles import Article
from repro.corpus.generator import CorpusGenerator
from repro.corpus.lexicon import EMOTIONAL_WORDS, tokenize
from repro.social.agents import AgentKind, SocialAgent

__all__ = [
    "ShareEvent",
    "CascadeResult",
    "CascadeRunner",
    "emotional_appeal",
    "DRAW_SHARE",
    "DRAW_VERIFY",
    "DRAW_MUTATE",
    "DRAW_BENIGN",
]

_EMOTIONAL = frozenset(EMOTIONAL_WORDS)

#: Purposes for injectable keyed draw sources (see
#: :class:`repro.social.fastcascade.KeyedDraws`).  A draw source maps
#: (article key, agent index, purpose) to a uniform in [0, 1), so the
#: scalar and vectorized engines consume identical randomness no matter
#: which order they evaluate candidates in.
DRAW_SHARE, DRAW_VERIFY, DRAW_MUTATE, DRAW_BENIGN = 0, 1, 2, 3


def emotional_appeal(article: Article) -> float:
    """Virality multiplier in [1, 3] from the emotional register."""
    tokens = tokenize(article.text)
    if not tokens:
        return 1.0
    rate = sum(1 for t in tokens if t in _EMOTIONAL) / len(tokens)
    return min(3.0, 1.0 + 12.0 * rate)


@dataclass(frozen=True)
class ShareEvent:
    """One propagation edge: *agent* re-published *article* derived from
    *parent_article* which it saw from *source_agent*."""

    time: float
    round_index: int
    agent_id: str
    source_agent_id: str
    article_id: str
    parent_article_id: str
    op: str


@dataclass
class CascadeResult:
    """Everything a cascade produced, with per-root bookkeeping."""

    events: list[ShareEvent] = field(default_factory=list)
    articles: dict[str, Article] = field(default_factory=dict)
    root_of: dict[str, str] = field(default_factory=dict)
    exposures_by_round: list[dict[str, int]] = field(default_factory=list)
    shares_by_round: list[int] = field(default_factory=list)
    exposed_agents: dict[str, set[str]] = field(default_factory=dict)
    #: root id -> lineage article ids in creation order (root included);
    #: filled by the runners so :meth:`descendants` is O(lineage), not
    #: O(every article any root produced).
    children_by_root: dict[str, list[str]] = field(default_factory=dict)
    #: root id -> unique exposed-agent count.  The vectorized engine can
    #: skip materializing ``exposed_agents`` sets at scale and record the
    #: counts here instead; :meth:`reach` falls through to them.
    reach_counts: dict[str, int] = field(default_factory=dict)

    def reach(self, root_id: str) -> int:
        """Unique agents exposed to any descendant of *root_id*."""
        agents = self.exposed_agents.get(root_id)
        if agents is not None:
            return len(agents)
        return self.reach_counts.get(root_id, 0)

    def reach_curve(self, root_id: str) -> list[int]:
        """Cumulative exposure per round for one root."""
        return [snapshot.get(root_id, 0) for snapshot in self.exposures_by_round]

    def descendants(self, root_id: str) -> list[Article]:
        """Every article of *root_id*'s lineage, root included."""
        lineage = self.children_by_root.get(root_id)
        if lineage is None:
            # Hand-assembled results never filled the index; fall back
            # to the full scan these records used to require.
            return [a for aid, a in self.articles.items() if self.root_of.get(aid) == root_id]
        return [self.articles[aid] for aid in lineage]

    def record_article(self, article: Article, root_id: str) -> None:
        """Register *article* under *root_id*, keeping the lineage index
        consistent — the one write path both engines share."""
        self.articles[article.article_id] = article
        self.root_of[article.article_id] = root_id
        self.children_by_root.setdefault(root_id, []).append(article.article_id)


class CascadeRunner:
    """Runs cascades over a bound follow graph.

    Args:
        graph: directed graph; edge (u, v) means content flows u -> v.
        corpus: generator used for mutation-on-share (shares its rng).
        flagged: predicate article_id -> bool; flagged articles get
            their share probability multiplied by (1 - damping).
        on_share: callback fired for every share event (platform hook).
        damping: intervention strength (paper cites 80 % for Facebook).
        draws: optional keyed draw source (see
            :class:`repro.social.fastcascade.KeyedDraws`).  When given,
            every share/verify/mutate decision is a pure function of
            (article, agent, purpose) instead of a sequential ``rng``
            draw, which is what lets the vectorized engine reproduce
            this runner's output byte for byte.
    """

    def __init__(
        self,
        graph: nx.DiGraph,
        corpus: CorpusGenerator,
        rng: random.Random | None = None,
        flagged: Callable[[str], bool] | None = None,
        promoted: Callable[[str], bool] | None = None,
        on_share: Callable[[ShareEvent, Article], None] | None = None,
        damping: float = 0.8,
        promotion_boost: float = 2.0,
        journalist_verify_accuracy: float = 0.85,
        draws=None,
    ):
        self.graph = graph
        self.corpus = corpus
        self.rng = rng or corpus.rng
        self.flagged = flagged or (lambda article_id: False)
        self.promoted = promoted or (lambda article_id: False)
        self.on_share = on_share
        self.damping = damping
        self.promotion_boost = promotion_boost
        self.journalist_verify_accuracy = journalist_verify_accuracy
        self.draws = draws
        # Appeal is a pure function of the text, and relays reuse the
        # parent's text object — keying the cache by text makes every
        # relay a cache hit instead of a fresh tokenization pass.
        self._appeal_cache: dict[str, float] = {}
        self._node_index: dict[int, int] | None = None
        self._key_cache: dict[str, int] = {}

    def _agent(self, node: int) -> SocialAgent:
        return self.graph.nodes[node]["agent"]

    def _agent_index(self, node: int) -> int:
        """Stable agent index shared with the vectorized engine (the
        node's rank in sorted node order, as in ``bind_agents``)."""
        if self._node_index is None:
            self._node_index = {n: i for i, n in enumerate(sorted(self.graph.nodes()))}
        return self._node_index[node]

    def _appeal(self, article: Article) -> float:
        cached = self._appeal_cache.get(article.text)
        if cached is None:
            cached = emotional_appeal(article)
            self._appeal_cache[article.text] = cached
        return cached

    def _unit(self, purpose: int, article: Article, agent_index: int | None) -> float:
        """One uniform draw: keyed when a draw source is injected,
        sequential from ``self.rng`` otherwise (the historical path)."""
        if self.draws is None or agent_index is None:
            return self.rng.random()
        key = self._key_cache.get(article.article_id)
        if key is None:
            key = self.draws.key(article.article_id)
            self._key_cache[article.article_id] = key
        return self.draws.unit(key, agent_index, purpose)

    def _wants_to_share(
        self,
        agent: SocialAgent,
        article: Article,
        poster: SocialAgent | None = None,
        agent_index: int | None = None,
    ) -> bool:
        probability = agent.share_probability * self._appeal(article)
        if (
            agent.ring is not None
            and poster is not None
            and poster.ring == agent.ring
        ):
            # Coordinated amplification: ring members re-share ring
            # content near-deterministically regardless of appeal.
            probability = max(probability, 0.9)
        if self.flagged(article.article_id):
            probability *= 1.0 - self.damping
        elif self.promoted(article.article_id):
            # Platform promotion: verified-factual content is surfaced
            # more prominently ("encourage and reward factual news
            # sources", §VII), raising its effective share rate.
            probability *= self.promotion_boost
        if agent.kind is AgentKind.JOURNALIST:
            # Journalists verify before sharing: they catch (and refuse)
            # fake content with some accuracy, and never share flagged items.
            if self.flagged(article.article_id):
                return False
            if article.label_fake and (
                self._unit(DRAW_VERIFY, article, agent_index)
                < self.journalist_verify_accuracy
            ):
                return False
        return self._unit(DRAW_SHARE, article, agent_index) < min(1.0, probability)

    def _derive_share(
        self,
        agent: SocialAgent,
        article: Article,
        time: float,
        agent_index: int | None = None,
    ) -> Article:
        if agent.malicious and (
            self._unit(DRAW_MUTATE, article, agent_index) < agent.mutate_probability
        ):
            return self.corpus.malicious_derivation(article, agent.agent_id, time)
        if self._unit(DRAW_BENIGN, article, agent_index) < 0.1:
            return self.corpus.benign_derivation(article, agent.agent_id, time)
        return self.corpus.relay_derivation(article, agent.agent_id, time)

    def run(
        self,
        seeds: list[tuple[int, Article]],
        n_rounds: int = 12,
        start_time: float = 0.0,
        time_per_round: float = 1.0,
    ) -> CascadeResult:
        """Propagate *seeds* (node, article) for *n_rounds* rounds."""
        result = CascadeResult()
        keyed = self.draws is not None
        frontier: list[tuple[int, Article]] = []
        for node, article in seeds:
            if article.article_id not in result.root_of:
                result.record_article(article, article.article_id)
            result.exposed_agents[article.article_id] = {self._agent(node).agent_id}
            frontier.append((node, article))
        for round_index in range(n_rounds):
            time = start_time + round_index * time_per_round
            attention_used: dict[str, int] = {}
            next_frontier: list[tuple[int, Article]] = []
            shares_this_round = 0
            for poster_node, article in frontier:
                root = result.root_of[article.article_id]
                for follower_node in self.graph.successors(poster_node):
                    agent = self._agent(follower_node)
                    if article.article_id in agent.seen:
                        continue
                    agent.seen.add(article.article_id)
                    result.exposed_agents.setdefault(root, set()).add(agent.agent_id)
                    if attention_used.get(agent.agent_id, 0) >= agent.attention:
                        continue
                    index = self._agent_index(follower_node) if keyed else None
                    if not self._wants_to_share(agent, article, self._agent(poster_node), index):
                        continue
                    attention_used[agent.agent_id] = attention_used.get(agent.agent_id, 0) + 1
                    derived = self._derive_share(agent, article, time, index)
                    result.record_article(derived, root)
                    event = ShareEvent(
                        time=time,
                        round_index=round_index,
                        agent_id=agent.agent_id,
                        source_agent_id=self._agent(poster_node).agent_id,
                        article_id=derived.article_id,
                        parent_article_id=article.article_id,
                        op=derived.op,
                    )
                    result.events.append(event)
                    shares_this_round += 1
                    if self.on_share is not None:
                        self.on_share(event, derived)
                    next_frontier.append((follower_node, derived))
            result.shares_by_round.append(shares_this_round)
            result.exposures_by_round.append(
                {root: len(agents) for root, agents in result.exposed_agents.items()}
            )
            frontier = next_frontier
            if not frontier:
                break
        return result
