"""E6 — contribution (3): crowd-sourced fake-news ranking quality.

Workload: 240 articles (faithful reports, benign quotes, malicious
mutations, fabrications) published through the platform with facts
seeded, AI scores attached, and simulated validator votes on-chain.
Reports, per ranking mode (provenance-only / ai-only / crowd-only /
hybrid):

- Spearman correlation between the factualness score and the
  ground-truth cumulative distortion (sign-flipped),
- ROC-AUC for fake detection,
- precision@20 for the *least* trustworthy articles.

Also the A2 ablation: the hybrid must dominate each single signal,
because each signal has a blind spot (provenance misses minimal-edit
distortions; AI misses neutral-register relays of fabrications; the
crowd is noisy).
"""

from __future__ import annotations

import random

import numpy as np
from scipy import stats

from benchmarks.conftest import emit
from repro.core import TrustingNewsPlatform, ValidatorPool
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.ml import precision_at_k, roc_auc

N_FACTS = 12
N_ARTICLES = 240


def _build(session_scorer):
    platform = TrustingNewsPlatform(seed=600, scorer=session_scorer)
    gen = CorpusGenerator(seed=600)
    rng = random.Random(601)
    facts = [gen.factual(topic="politics") for _ in range(N_FACTS)]
    for index, fact in enumerate(facts):
        platform.seed_fact(f"f-{index}", fact.text, "public-record", "politics")
    platform.register_participant("wire", role="publisher")
    platform.create_distribution_platform("wire", "wire-svc")
    platform.create_news_room("wire", "wire-svc", "desk", "politics")
    platform.register_participant("author", role="journalist")
    platform.authenticate_journalist("wire-svc", "author")
    pool = ValidatorPool.generate(9, rng)
    for index in range(9):
        platform.register_participant(f"val-{index}", role="checker")

    articles = []
    reports = [relay(fact, "author", 0.0) for fact in facts]
    for index in range(N_ARTICLES):
        roll = index % 4
        base = reports[index % len(reports)]
        if roll == 0:
            article = base  # faithful report
        elif roll == 1:
            article = gen.benign_derivation(base, "author", float(index))
        elif roll == 2:
            article = gen.malicious_derivation(base, "author", float(index))
        else:
            article = gen.fabricated(topic="politics", timestamp=float(index))
        article_id = f"e6-{index}"
        platform.publish_article("author", "wire-svc", "desk", article_id,
                                 article.text, "politics")
        votes = pool.collect_votes(not article.label_fake, rng, turnout=0.7)
        for voter_index, vote in enumerate(votes):
            platform.cast_vote(f"val-{voter_index}", article_id, vote.verdict)
        articles.append((article_id, article))
    return platform, articles


def _evaluate(platform, articles):
    truth_fake = np.array([int(a.label_fake) for _, a in articles])
    truth_distortion = np.array([a.cumulative_distortion for _, a in articles])
    rows = []
    scores_by_mode = {}
    for mode in ("provenance", "ai", "crowd", "hybrid"):
        scores = np.array([
            platform.rank_article(article_id, mode=mode, record=False).score
            for article_id, _ in articles
        ])
        scores_by_mode[mode] = scores
        spearman = stats.spearmanr(-scores, truth_distortion).statistic
        auc = roc_auc(truth_fake, -scores)
        p_at_20 = precision_at_k(truth_fake, -scores, 20)
        rows.append(
            f"{mode:<12} spearman(untrust, distortion)={spearman:+.3f} "
            f"fake-AUC={auc:.3f} precision@20={p_at_20:.2f}"
        )
    return rows, scores_by_mode, truth_fake


def test_e6_ranking_quality(benchmark, session_scorer):
    platform, articles = _build(session_scorer)
    rows, scores_by_mode, truth_fake = benchmark.pedantic(
        _evaluate, args=(platform, articles), rounds=1, iterations=1
    )
    emit(benchmark, "E6 — factualness ranking: signal ablation (A2)", rows)
    hybrid_auc = roc_auc(truth_fake, -scores_by_mode["hybrid"])
    for mode in ("provenance", "ai", "crowd"):
        assert hybrid_auc >= roc_auc(truth_fake, -scores_by_mode[mode]) - 0.02, mode
    assert hybrid_auc > 0.9
