"""Static analysis guarding the reproduction's determinism invariants.

``make lint`` (and CI) runs this package over ``src tests benchmarks
examples``: a pure-stdlib :mod:`ast` linter whose rules encode the
repo-wide conventions every headline result depends on — all RNGs are
seeded ``random.Random`` instances (DET), simulation code reads
sim-time, never the wall clock (SIM), mutable state never aliases
across the peer message boundary (ALIAS), plus the pyflakes subset CI
otherwise lacks (PYF) and metric-registry hygiene (OBS).

Entry points::

    repro-news lint [paths...] [--format json] [--update-baseline]
    python -m repro.analysis ...

Rule catalog with rationale and examples: ``docs/LINTS.md``.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.core import (
    AnalysisConfig,
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
    parse_noqa,
    register,
)
from repro.analysis.runner import Report, analyze_paths, analyze_source, main

__all__ = [
    "AnalysisConfig",
    "Finding",
    "ModuleInfo",
    "Report",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "load_baseline",
    "main",
    "parse_noqa",
    "register",
    "write_baseline",
]
