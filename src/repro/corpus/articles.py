"""Article model and factual/fabricated article synthesis.

An :class:`Article` carries its full provenance ground truth: which
articles it was derived from, by which operation, how many tokens that
operation changed (*modification degree*, measured), and how much
semantic damage it did (*distortion*, assigned by the operation's
nature).  The platform never reads the ground-truth fields — they exist
so experiments can score the platform's inferences against reality.

Fake/factual labelling follows the paper's framing: an article is
*factual* if the things it states actually happened in the synthetic
universe.  Fabricated articles and heavily distorted derivations are
fake; faithful relays, quotes, and aggregations of factual articles
remain factual.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.corpus.lexicon import (
    CLICKBAIT_PHRASES,
    CONNECTIVES,
    EMOTIONAL_WORDS,
    HEDGE_WORDS,
    NEUTRAL_VERBS,
    REPORTING_VERBS,
    tokenize,
)
from repro.corpus.topics import Topic

__all__ = ["Article", "FAKE_DISTORTION_THRESHOLD", "make_factual_article", "make_fabricated_article"]

# An article whose cumulative distortion passes this threshold no longer
# reports what actually happened — it is fake by ground truth.
FAKE_DISTORTION_THRESHOLD = 0.25


@dataclass(frozen=True)
class Article:
    """One news item plus its ground-truth provenance."""

    article_id: str
    topic: str
    text: str
    author: str
    timestamp: float
    parents: tuple[str, ...] = ()
    op: str = "original"
    modification_degree: float = 0.0
    distortion: float = 0.0
    cumulative_distortion: float = 0.0
    fabricated: bool = False

    @property
    def label_fake(self) -> bool:
        """Ground-truth label used to score classifiers and rankers."""
        return self.fabricated or self.cumulative_distortion > FAKE_DISTORTION_THRESHOLD

    @property
    def sentences(self) -> list[str]:
        return [s.strip() for s in self.text.split(".") if s.strip()]

    @property
    def tokens(self) -> list[str]:
        return tokenize(self.text)

    def with_id(self, article_id: str) -> "Article":
        return replace(self, article_id=article_id)


def _date_phrase(rng: random.Random) -> str:
    month = rng.choice(
        ["january", "february", "march", "april", "may", "june", "july",
         "august", "september", "october", "november", "december"]
    )
    return f"{month} {rng.randint(1, 28)}"


def _factual_sentence(topic: Topic, rng: random.Random) -> str:
    """One neutral, attribution-heavy reporting sentence."""
    template = rng.randrange(5)
    entity = rng.choice(topic.entities)
    verb = rng.choice(NEUTRAL_VERBS)
    obj = rng.choice(topic.objects)
    place = rng.choice(topic.places)
    noun_a, noun_b = rng.sample(list(topic.nouns), 2)
    if template == 0:
        return f"{entity} {verb} {obj} at {place} on {_date_phrase(rng)}"
    if template == 1:
        reporter = rng.choice(REPORTING_VERBS)
        return f"the decision affects the {noun_a} and the {noun_b}, {reporter} {entity}"
    if template == 2:
        figure = rng.randint(2, 97)
        return f"official figures put the {noun_a} at {figure} percent for the period"
    if template == 3:
        connective = rng.choice(CONNECTIVES)
        return f"{connective}, {entity} {verb} a review of the {noun_a} at {place}"
    second = rng.choice([e for e in topic.entities if e != entity])
    return f"{entity} and {second} {verb} the joint {noun_a} agreement covering {obj}"


def _sensational_sentence(topic: Topic, rng: random.Random) -> str:
    """One emotionally loaded, unattributed sentence."""
    template = rng.randrange(4)
    entity = rng.choice(topic.entities)
    emotion = rng.choice(EMOTIONAL_WORDS)
    noun = rng.choice(topic.nouns)
    hedge = rng.choice(HEDGE_WORDS)
    if template == 0:
        return f"{hedge} the {emotion} truth about {entity} and the {noun} is finally out"
    if template == 1:
        return f"this {emotion} {noun} {rng.choice(['scandal', 'coverup', 'disaster'])} will destroy {entity}"
    if template == 2:
        return rng.choice(CLICKBAIT_PHRASES)
    return f"{entity} caught in {emotion} {noun} plot, insiders {rng.choice(['panic', 'flee', 'scramble'])}"


def make_factual_article(
    topic: Topic,
    author: str,
    timestamp: float,
    rng: random.Random,
    n_sentences: int = 6,
) -> Article:
    """Synthesize a factual seed article (neutral register, attributed)."""
    sentences = [_factual_sentence(topic, rng) for _ in range(n_sentences)]
    return Article(
        article_id="",
        topic=topic.name,
        text=". ".join(sentences) + ".",
        author=author,
        timestamp=timestamp,
        op="original",
    )


def make_fabricated_article(
    topic: Topic,
    author: str,
    timestamp: float,
    rng: random.Random,
    n_sentences: int = 6,
) -> Article:
    """Synthesize a from-whole-cloth fake (the non-mutated 27.7%).

    Fabrications mimic news structure but lean on the emotional and
    clickbait registers, with a few neutral sentences mixed in so the
    classification task is not trivially separable.
    """
    sentences = []
    for _ in range(n_sentences):
        if rng.random() < 0.65:
            sentences.append(_sensational_sentence(topic, rng))
        else:
            sentences.append(_factual_sentence(topic, rng))
    return Article(
        article_id="",
        topic=topic.name,
        text=". ".join(sentences) + ".",
        author=author,
        timestamp=timestamp,
        op="fabricate",
        distortion=1.0,
        cumulative_distortion=1.0,
        fabricated=True,
    )
