"""Classification metrics, including exact AUC with ties."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import (
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    precision_at_k,
    recall,
    roc_auc,
)

Y_TRUE = np.array([0, 0, 1, 1, 1, 0])
Y_PRED = np.array([0, 1, 1, 1, 0, 0])


def test_confusion_matrix():
    tn, fp, fn, tp = confusion_matrix(Y_TRUE, Y_PRED)
    assert (tn, fp, fn, tp) == (2, 1, 1, 2)


def test_accuracy():
    assert accuracy(Y_TRUE, Y_PRED) == pytest.approx(4 / 6)


def test_precision_recall_f1():
    assert precision(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
    assert recall(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
    assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)


def test_degenerate_precision_recall():
    y = np.array([0, 0])
    pred = np.array([0, 0])
    assert precision(y, pred) == 0.0
    assert recall(y, pred) == 0.0
    assert f1_score(y, pred) == 0.0


def test_auc_perfect_ranking():
    assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0


def test_auc_inverted_ranking():
    assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.9, 0.8, 0.2, 0.1])) == 0.0


def test_auc_random_is_half():
    assert roc_auc(np.array([0, 1, 0, 1]), np.array([0.5, 0.5, 0.5, 0.5])) == pytest.approx(0.5)


def test_auc_ties_use_midranks():
    # Pairwise: (0.9 beats 0.5), (0.9 beats 0.1), (0.5 ties 0.5 -> 0.5),
    # (0.5 beats 0.1): AUC = (1 + 1 + 0.5 + 1) / 4.
    y = np.array([1, 1, 0, 0])
    s = np.array([0.9, 0.5, 0.5, 0.1])
    assert roc_auc(y, s) == pytest.approx(0.875)


def test_auc_needs_both_classes():
    with pytest.raises(MLError):
        roc_auc(np.array([1, 1]), np.array([0.1, 0.9]))


def test_precision_at_k():
    y = np.array([1, 0, 1, 0, 0])
    s = np.array([0.9, 0.8, 0.7, 0.2, 0.1])
    assert precision_at_k(y, s, 1) == 1.0
    assert precision_at_k(y, s, 2) == 0.5
    assert precision_at_k(y, s, 3) == pytest.approx(2 / 3)


def test_precision_at_k_range():
    with pytest.raises(MLError):
        precision_at_k(np.array([1, 0]), np.array([0.5, 0.5]), 3)


def test_length_mismatch_raises():
    with pytest.raises(MLError):
        accuracy(np.array([1]), np.array([1, 0]))


def test_empty_raises():
    with pytest.raises(MLError):
        accuracy(np.array([]), np.array([]))


def test_classification_report_bundle():
    scores = np.array([0.2, 0.7, 0.9, 0.8, 0.4, 0.1])
    report = classification_report(Y_TRUE, Y_PRED, scores)
    assert report.accuracy == pytest.approx(4 / 6)
    assert 0 <= report.auc <= 1
    assert "acc=" in report.as_row("name")
