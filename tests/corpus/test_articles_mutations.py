"""Article synthesis, mutation operators, and ground-truth labelling."""

import random

import pytest

from repro.corpus import (
    FAKE_DISTORTION_THRESHOLD,
    distort,
    insert,
    measured_change,
    merge,
    mix,
    relay,
    split,
    topic_by_name,
)
from repro.corpus.articles import make_fabricated_article, make_factual_article
from repro.errors import CorpusError


@pytest.fixture
def rng():
    return random.Random(7)


@pytest.fixture
def factual(rng):
    return make_factual_article(topic_by_name("politics"), "alice", 0.0, rng).with_id("a-1")


@pytest.fixture
def second(rng):
    return make_factual_article(topic_by_name("politics"), "bob", 0.0, rng).with_id("a-2")


def test_factual_article_is_factual(factual):
    assert not factual.label_fake
    assert factual.cumulative_distortion == 0.0
    assert len(factual.sentences) == 6


def test_fabricated_article_is_fake(rng):
    fake = make_fabricated_article(topic_by_name("health"), "troll", 0.0, rng)
    assert fake.label_fake and fake.fabricated
    assert fake.op == "fabricate"


def test_relay_preserves_everything(factual):
    shared = relay(factual, "carol", 1.0)
    assert shared.text == factual.text
    assert shared.modification_degree == 0.0
    assert shared.distortion == 0.0
    assert not shared.label_fake
    assert shared.parents == ("a-1",)


def test_split_keeps_subset(factual, rng):
    quoted = split(factual, "carol", 1.0, rng, keep_fraction=0.5)
    assert len(quoted.sentences) < len(factual.sentences)
    assert not quoted.label_fake  # mild context loss stays factual
    assert 0 < quoted.modification_degree < 1


def test_split_validates_fraction(factual, rng):
    with pytest.raises(CorpusError):
        split(factual, "x", 0.0, rng, keep_fraction=0.0)


def test_insert_adds_emotional_content(factual, rng):
    mutated = insert(factual, "troll", 1.0, rng, n_insertions=3)
    assert len(mutated.sentences) == len(factual.sentences) + 3
    assert mutated.label_fake  # 3 insertions on 6 sentences crosses threshold
    assert mutated.modification_degree > 0


def test_single_insertion_stays_factual(factual, rng):
    # One hedged sentence in six is below the fake threshold — nuance,
    # not fakery.
    mutated = insert(factual, "columnist", 1.0, rng, n_insertions=1)
    assert not mutated.label_fake


def test_insert_requires_positive_count(factual, rng):
    with pytest.raises(CorpusError):
        insert(factual, "x", 0.0, rng, n_insertions=0)


def test_mix_combines_two_parents(factual, second, rng):
    blended = mix(factual, second, "mixer", 1.0, rng)
    assert set(blended.parents) == {"a-1", "a-2"}
    assert len(blended.sentences) == len(factual.sentences) + len(second.sentences)
    assert not blended.label_fake  # one mix alone is below threshold
    assert blended.distortion == pytest.approx(0.2)


def test_merge_is_nearly_free(factual, second):
    digest = merge([factual, second], "aggregator", 1.0)
    assert not digest.label_fake
    assert digest.distortion == pytest.approx(0.02)
    assert set(digest.parents) == {"a-1", "a-2"}


def test_merge_requires_two(factual):
    with pytest.raises(CorpusError):
        merge([factual], "x", 0.0)


def test_distort_small_edit_big_damage(factual, rng):
    twisted = distort(factual, "troll", 1.0, rng)
    assert twisted.label_fake
    # The hallmark: low token change, high distortion.
    assert twisted.modification_degree < 0.35
    assert twisted.distortion == pytest.approx(0.6)


def test_distortion_accumulates_along_chains(factual, rng):
    step1 = mix(factual, relay(factual, "x", 0.0).with_id("a-3"), "y", 1.0, rng).with_id("a-4")
    step2 = mix(step1, factual, "z", 2.0, rng).with_id("a-5")
    assert step1.cumulative_distortion == pytest.approx(0.2)
    assert step2.cumulative_distortion == pytest.approx(0.4)
    assert step2.label_fake  # two mixes cross the threshold together


def test_fabricated_lineage_stays_fake(rng):
    fake = make_fabricated_article(topic_by_name("politics"), "troll", 0.0, rng).with_id("f-1")
    laundered = relay(fake, "innocent", 1.0)
    assert laundered.label_fake  # relaying a fabrication does not clean it
    assert laundered.fabricated


def test_measured_change_bounds():
    assert measured_change(["a b c"], "a b c") == 0.0
    assert measured_change(["a b c"], "x y z") == 1.0
    assert 0 < measured_change(["a b c d"], "a b x y") < 1


def test_measured_change_empty():
    assert measured_change([""], "") == 0.0
    assert measured_change([], "anything") == 1.0


def test_threshold_constant_sane():
    assert 0 < FAKE_DISTORTION_THRESHOLD < 1
