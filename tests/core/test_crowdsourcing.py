"""Validator voting, aggregation rules, accountability settlement."""

import random

import pytest

from repro.chain import LocalChain
from repro.core import IdentityContract, Validator, ValidatorPool, VoteContract
from repro.errors import ContractError


@pytest.fixture
def rng():
    return random.Random(17)


def test_pool_generation_plants_bias(rng):
    pool = ValidatorPool.generate(100, rng, biased_fraction=0.3)
    assert sum(v.biased for v in pool.validators) == 30
    assert all(0.7 <= v.accuracy <= 0.95 for v in pool.validators)


def test_unbiased_validators_mostly_correct(rng):
    pool = ValidatorPool.generate(200, rng, biased_fraction=0.0)
    votes = pool.collect_votes(ground_truth_factual=True, rng=rng)
    assert ValidatorPool.majority_share(votes) > 0.7


def test_biased_validators_vote_party_line(rng):
    validator = Validator("v", accuracy=0.9, biased=True, community=0)
    # Article slanted toward community 0 -> always "factual".
    assert all(validator.decide(False, 0, rng) for _ in range(20))
    # Slanted toward the other side -> always "fake".
    assert not any(validator.decide(True, 1, rng) for _ in range(20))


def test_turnout_subsamples(rng):
    pool = ValidatorPool.generate(100, rng)
    votes = pool.collect_votes(True, rng, turnout=0.5)
    assert 20 < len(votes) < 80


def test_majority_vs_weighted_identical_when_weights_equal(rng):
    pool = ValidatorPool.generate(50, rng)
    votes = pool.collect_votes(True, rng)
    assert ValidatorPool.majority_share(votes) == pytest.approx(
        ValidatorPool.weighted_share(votes)
    )


def test_settlement_rewards_correct_and_slashes_wrong(rng):
    pool = ValidatorPool(validators=[
        Validator("good", accuracy=1.0),
        Validator("bad", accuracy=0.0),
    ])
    for _ in range(10):
        votes = pool.collect_votes(True, rng)
        pool.settle(votes, outcome_factual=True)
    good, bad = pool.validators
    assert good.reputation > 1.0
    assert bad.reputation == 0.0
    assert bad.stake < 10.0  # slashed after reputation exhausted


def test_weight_decay_shrinks_biased_influence(rng):
    """The paper's claim: accountability beats majority under polarization."""
    pool = ValidatorPool.generate(100, rng, biased_fraction=0.4)
    # Repeated articles slanted toward community 0 that are actually fake.
    for _ in range(12):
        votes = pool.collect_votes(False, rng, article_slant=0)
        pool.settle(votes, outcome_factual=False)
    votes = pool.collect_votes(False, rng, article_slant=0)
    majority = ValidatorPool.majority_share(votes)  # still poisoned
    weighted = ValidatorPool.weighted_share(votes)  # bias squeezed out
    assert weighted < majority
    assert weighted < 0.5  # correct verdict: not factual


def test_empty_votes_neutral():
    assert ValidatorPool.majority_share([]) == 0.5
    assert ValidatorPool.weighted_share([]) == 0.5


# -- on-chain vote records -----------------------------------------------------


@pytest.fixture
def chain():
    c = LocalChain(seed=4)
    c.install_contract(IdentityContract())
    c.install_contract(VoteContract())
    return c


def _voter(chain, name):
    account = chain.new_account()
    chain.invoke(account, "identity", "register", {"display_name": name, "role": "checker"})
    return account


def test_cast_and_tally(chain):
    voters = [_voter(chain, f"v{i}") for i in range(4)]
    for index, voter in enumerate(voters):
        chain.invoke(voter, "votes", "cast",
                     {"article_id": "a-1", "verdict": index < 3, "weight": 1.0})
    tally = chain.query("votes", "tally", {"article_id": "a-1"})
    assert tally == {"factual_share": 0.75, "votes": 4}


def test_weighted_tally(chain):
    heavy, light = _voter(chain, "heavy"), _voter(chain, "light")
    chain.invoke(heavy, "votes", "cast", {"article_id": "a-1", "verdict": True, "weight": 0.9})
    chain.invoke(light, "votes", "cast", {"article_id": "a-1", "verdict": False, "weight": 0.1})
    tally = chain.query("votes", "tally", {"article_id": "a-1"})
    assert tally["factual_share"] == pytest.approx(0.9)


def test_double_vote_rejected(chain):
    voter = _voter(chain, "v")
    chain.invoke(voter, "votes", "cast", {"article_id": "a-1", "verdict": True, "weight": 1.0})
    with pytest.raises(ContractError, match="already voted"):
        chain.invoke(voter, "votes", "cast", {"article_id": "a-1", "verdict": False, "weight": 1.0})


def test_unregistered_cannot_vote(chain):
    rogue = chain.new_account()
    with pytest.raises(ContractError, match="registered"):
        chain.invoke(rogue, "votes", "cast", {"article_id": "a-1", "verdict": True, "weight": 1.0})


def test_weight_bounds(chain):
    voter = _voter(chain, "v")
    with pytest.raises(ContractError):
        chain.invoke(voter, "votes", "cast", {"article_id": "a-1", "verdict": True, "weight": 0.0})


def test_tally_empty(chain):
    tally = chain.query("votes", "tally", {"article_id": "nothing"})
    assert tally == {"factual_share": 0.5, "votes": 0}
