"""E8 — §VI expert identification from ledger history.

Workload: 8 topics, 16 planted experts (2 per topic, consistently
fact-rooted and faithful), ~200 ordinary accounts whose output is a
mix of relays and malicious mutations, plus bot content mills.
Measures precision/recall of the suggested per-topic panels against the
planted ground truth.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.chain import LocalChain
from repro.core import ExpertFinder, IdentityContract, SupplyChainContract, build_supply_chain_graph
from repro.corpus import TOPICS, CorpusGenerator

EXPERTS_PER_TOPIC = 2
CASUALS = 120
MILLS = 12


def _build():
    chain = LocalChain(seed=800)
    chain.install_contract(IdentityContract())
    chain.install_contract(SupplyChainContract())
    gen = CorpusGenerator(seed=800)
    rng = random.Random(801)

    accounts: dict[str, object] = {}

    def account(name):
        if name not in accounts:
            keypair = chain.new_account()
            chain.invoke(keypair, "identity", "register",
                         {"display_name": name, "role": "creator"})
            accounts[name] = keypair
        return accounts[name]

    def record(name, article_id, topic, op, parents=(), degrees=(), facts=(), fact_degs=()):
        chain.invoke(account(name), "supplychain", "record_node",
                     {"article_id": article_id, "content_hash": "h",
                      "parents": list(parents), "parent_degrees": list(degrees),
                      "modification_degree": min(list(degrees) + list(fact_degs) + [1.0]),
                      "topic": topic, "op": op,
                      "fact_roots": list(facts), "fact_degrees": list(fact_degs)})

    planted: dict[str, set[str]] = {}
    counter = 0
    expert_articles: dict[str, list[str]] = {}
    for topic in TOPICS:
        planted[topic.name] = set()
        for expert_index in range(EXPERTS_PER_TOPIC):
            name = f"expert-{topic.name}-{expert_index}"
            planted[topic.name].add(name)
            for article_index in range(6):
                article_id = f"exp-{counter}"
                counter += 1
                record(name, article_id, topic.name, "publish",
                       facts=[f"fact-{topic.name}-{article_index}"],
                       fact_degs=[rng.uniform(0.0, 0.05)])
                expert_articles.setdefault(topic.name, []).append(article_id)
    # Casual users: a couple of relays each, moderate fidelity.
    for casual_index in range(CASUALS):
        topic = rng.choice(TOPICS).name
        for _ in range(rng.randint(1, 3)):
            parent = rng.choice(expert_articles[topic])
            article_id = f"cas-{counter}"
            counter += 1
            record(f"casual-{casual_index}", article_id, topic, "relay",
                   parents=[parent], degrees=[rng.uniform(0.0, 0.2)])
    # Content mills: prolific, heavily mutated output.
    for mill_index in range(MILLS):
        topic = rng.choice(TOPICS).name
        for _ in range(10):
            parent = rng.choice(expert_articles[topic])
            article_id = f"mill-{counter}"
            counter += 1
            record(f"mill-{mill_index}", article_id, topic, "insert",
                   parents=[parent], degrees=[rng.uniform(0.4, 0.9)])
    return chain, accounts, planted


def _evaluate(chain, accounts, planted):
    graph = build_supply_chain_graph(chain.ledger)
    finder = ExpertFinder(graph, min_articles=2)
    address_to_name = {kp.address: name for name, kp in accounts.items()}
    true_positive = false_positive = false_negative = 0
    per_topic = []
    for topic, experts in planted.items():
        panel = {address_to_name.get(a, a) for a in finder.suggest_panel(topic, k=EXPERTS_PER_TOPIC)}
        hits = len(panel & experts)
        true_positive += hits
        false_positive += len(panel) - hits
        false_negative += len(experts) - hits
        per_topic.append((topic, hits, len(experts)))
    precision = true_positive / max(1, true_positive + false_positive)
    recall = true_positive / max(1, true_positive + false_negative)
    return precision, recall, per_topic


def test_e8_expert_identification(benchmark):
    chain, accounts, planted = _build()
    precision, recall, per_topic = benchmark.pedantic(
        _evaluate, args=(chain, accounts, planted), rounds=1, iterations=1
    )
    rows = [
        f"planted: {EXPERTS_PER_TOPIC} experts x {len(planted)} topics among "
        f"{CASUALS} casual accounts and {MILLS} content mills",
        f"panel precision={precision:.2f} recall={recall:.2f}",
        "per-topic hits: " + ", ".join(f"{t}:{h}/{n}" for t, h, n in per_topic),
    ]
    emit(benchmark, "E8 — ledger-mined expert panels vs planted ground truth", rows)
    assert precision >= 0.9
    assert recall >= 0.9
