PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-baseline test chaos bench bench-smoke recovery obs-demo

# Byte-compile (catches syntax errors), then the repo's own AST linter:
# determinism / sim-time / aliasing / pyflakes-subset / metric-hygiene
# rules (catalog: docs/LINTS.md).  Fails on any error-severity finding
# that is neither `# repro: noqa[...]`-suppressed nor baselined.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m repro.analysis src tests benchmarks examples

# Deliberately re-grandfather the current findings.  Only for tree-wide
# sweeps (e.g. after adding a rule); new code should be fixed, not
# baselined.
lint-baseline:
	$(PYTHON) -m repro.analysis src tests benchmarks examples --update-baseline

# Tier-1: fast default suite (chaos-marked sweeps excluded via addopts).
test: lint
	$(PYTHON) -m pytest -x -q

# Extended seeded chaos/invariant-audit sweeps (slow, opt-in).
chaos:
	$(PYTHON) -m pytest -m chaos

bench:
	$(PYTHON) -m pytest benchmarks -q

# CI-sized pass over the substrate micro-benchmarks, the pipelined PBFT
# sweep, the cold-start recovery comparison, the explorer index-vs-scan
# equivalence, and the cascade-engine curve: REPRO_BENCH_SMOKE=1 shrinks
# the crypto benches, the pipeline workload, the synthetic chains, and
# the cascade worlds so the hot paths (depth > 1 consensus, snapshot+tail
# recovery, index-path queries, vectorized frontier rounds + the scalar
# oracle equivalence check) are exercised on every push without the
# statistical assertions (which need quiet hardware), the 10x explorer
# p95 gate (which needs the 100k chain), or the 20x cascade gate (which
# needs the 100k world).
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_micro_substrate.py \
		benchmarks/bench_pipeline.py \
		benchmarks/bench_recovery.py::test_cold_start_recovery \
		benchmarks/bench_explorer.py \
		benchmarks/bench_cascade.py \
		-q --benchmark-disable

# Crash-recovery: deep catch-up tests, the storage-engine suites
# (parametrized over the durable and sqlite backends, including the
# seeded disk-fault chaos sweep over both), and the recovery benchmarks
# (write benchmarks/latest_recovery.json).
recovery:
	$(PYTHON) -m pytest tests/chain/test_sync_recovery.py tests/chain/test_store.py \
		tests/chain/test_sqlite_store.py tests/chain/test_store_recovery.py \
		benchmarks/bench_recovery.py -q
	$(PYTHON) -m pytest tests/chain/test_store_recovery.py -q -m chaos

# Traced end-to-end demo: runs a small PBFT workload with a crash/restart,
# writes benchmarks/latest_trace.jsonl, and prints the per-phase report.
obs-demo:
	$(PYTHON) -m repro.cli report --demo --trace benchmarks/latest_trace.jsonl
