"""LocalChain: a single-node, synchronous blockchain.

The trusting-news platform (``repro.core``) needs ledger semantics —
signed immutable transactions, contracts, events, auditability — but
most experiments don't need to pay full consensus simulation for every
article share.  ``LocalChain`` runs the identical transaction pipeline
(sign → execute → endorse → MVCC validate → block commit) on one
in-process peer, committing one block per invocation batch.

Everything that reads the ledger (supply-chain graph construction,
expert mining, accountability tracing) works identically against a
LocalChain or a :class:`~repro.chain.network.BlockchainNetwork` peer,
because both expose the same :class:`~repro.chain.ledger.Ledger`.
E9 is the experiment where consensus latency itself is the subject, and
it uses the networked harness.
"""

from __future__ import annotations

from typing import Any

from repro.chain.block import Block
from repro.chain.contracts import Contract, ContractRegistry, EndorsementPolicy, check_endorsements
from repro.chain.index import ChainIndex
from repro.chain.ledger import Ledger
from repro.chain.state import WorldState
from repro.chain.transaction import (
    Endorsement,
    Transaction,
    TxReceipt,
    rwset_digest,
    signature_items,
)
from repro.crypto.batch import batch_verification_enabled, verify_many
from repro.crypto.keys import KeyPair
from repro.errors import ContractError
from repro.chain.consensus.sharded import ShardedExecutor

__all__ = ["LocalChain"]


class LocalChain:
    """Synchronous single-peer chain with full transaction semantics."""

    def __init__(self, node_id: str = "local-peer", seed: int = 0, n_shards: int | None = None):
        import random

        self.node_id = node_id
        self.rng = random.Random(seed)
        self.keypair = KeyPair.generate(self.rng)
        self.registry = ContractRegistry()
        self.ledger = Ledger()
        #: Explorer index, fed at every commit (see repro.chain.index).
        self.index = ChainIndex()
        self.state = WorldState()
        self.sharded_executor = ShardedExecutor(n_shards) if n_shards else None
        self._clock = 0.0
        self._nonces: dict[str, int] = {}

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock

    def advance_time(self, delta: float = 1.0) -> float:
        """Move the logical clock (transaction timestamps) forward."""
        if delta < 0:
            raise ValueError("time cannot go backwards")
        self._clock += delta
        return self._clock

    # -- deployment -----------------------------------------------------------

    def install_contract(self, contract: Contract, policy: EndorsementPolicy | None = None) -> str:
        self.registry.install(contract)
        return contract.name

    def new_account(self) -> KeyPair:
        """Mint a deterministic keypair for a participant."""
        return KeyPair.generate(self.rng)

    # -- transaction path ---------------------------------------------------------

    def invoke(
        self,
        keypair: KeyPair,
        contract: str,
        method: str,
        args: dict[str, Any] | None = None,
    ) -> TxReceipt:
        """Sign, execute, endorse, and commit one transaction (one block).

        Contract aborts surface as :class:`ContractError`, mirroring what
        a networked client sees at endorsement time.
        """
        args = args or {}
        nonce = self._nonces.get(keypair.address, 0) + 1
        self._nonces[keypair.address] = nonce
        tx = Transaction.create(
            keypair, contract, method, args, nonce=nonce, timestamp=self._clock
        )
        result = self.registry.execute(
            self.state, contract, method, args,
            caller=keypair.address, timestamp=self._clock, tx_id=tx.tx_id,
        )
        if not result.success:
            raise ContractError(result.error or f"{contract}.{method} failed")
        digest = rwset_digest(result.read_set, result.write_set)
        endorsement = Endorsement.create(self.keypair, self.node_id, tx.tx_id, digest)
        endorsed = tx.with_execution(
            read_set=result.read_set,
            write_set=result.write_set,
            events=result.events,
            return_value=result.return_value,
            endorsements=(endorsement,),
        )
        return self._commit([endorsed])[0]

    def _commit(self, txs: list[Transaction]) -> list[TxReceipt]:
        block = Block.build(
            height=self.ledger.height + 1,
            prev_hash=self.ledger.head.block_hash,
            timestamp=self._clock,
            proposer=self.node_id,
            transactions=txs,
        )
        if batch_verification_enabled() and txs:
            # Warm the verify cache for the whole batch; the unchanged
            # per-transaction checks below then hit it.
            verify_many(signature_items(txs))
        validity: list[bool] = []
        receipts: list[TxReceipt] = []
        valid_txs: list[Transaction] = []
        for tx in txs:
            tx.validate_structure()
            check_endorsements(tx, EndorsementPolicy(required=1))
            fresh = self.state.validate_read_set(tx.read_set)
            validity.append(fresh)
            if fresh:
                self.state.apply_write_set(tx.write_set)
                valid_txs.append(tx)
            receipts.append(
                TxReceipt(
                    tx_id=tx.tx_id,
                    block_height=block.height,
                    success=fresh,
                    return_value=tx.return_value if fresh else None,
                    events=tx.events if fresh else (),
                    error=None if fresh else "MVCC conflict: stale read set",
                )
            )
        self.ledger.append(block, validity)
        self.index.on_commit(block, validity)
        if self.sharded_executor is not None and valid_txs:
            self.sharded_executor.plan_block(valid_txs)
        return receipts

    def query(
        self,
        contract: str,
        method: str,
        args: dict[str, Any] | None = None,
        caller: str = "query",
    ) -> Any:
        """Read-only execution; writes are discarded, nothing is committed."""
        result = self.registry.execute(
            self.state, contract, method, args or {},
            caller=caller, timestamp=self._clock, tx_id="query",
        )
        if not result.success:
            raise ContractError(result.error or "query failed")
        return result.return_value
