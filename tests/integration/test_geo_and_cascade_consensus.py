"""Geo-distributed consensus latency, and a cascade over real consensus."""

import random

from repro.chain import BlockchainNetwork, NetworkedChain
from repro.core import TrustingNewsPlatform
from repro.corpus import CorpusGenerator
from repro.simnet import FixedLatency, GeoLatency
from repro.social import CascadeRunner, bind_agents, make_population, scale_free_follow_graph


def _mean_commit_latency(latency_model, seed=91):
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.4,
        latency=latency_model, seed=seed,
    )
    network.install_contract(CounterContract)
    client = network.client()
    for index in range(10):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.peers[index % 4].submit(tx)
        network.run_for(1.5)
    network.run_for(10)
    network.assert_convergence()
    return network.peers[0].metrics.mean_commit_latency


def test_geo_distribution_raises_commit_latency():
    """The paper's global deployment (§VII): cross-region links make
    consensus measurably slower than a single-datacenter network."""
    regions = {"peer-0": "us", "peer-1": "us", "peer-2": "eu", "peer-3": "apac"}
    lan = _mean_commit_latency(FixedLatency(0.01))
    geo = _mean_commit_latency(
        GeoLatency(regions, intra_base=0.01, inter_base=0.15, jitter_sigma=0.2)
    )
    assert geo > lan * 1.2


def test_cascade_ingested_over_real_consensus():
    """Shares recorded through PBFT: the full Fig. 4 pipeline with real
    ordering instead of LocalChain."""
    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.15,
        latency=FixedLatency(0.005), seed=92,
    )
    platform = TrustingNewsPlatform(seed=92, chain=NetworkedChain(network))
    rng = random.Random(92)
    graph = scale_free_follow_graph(60, seed=92)
    agents = make_population(60, rng, bot_fraction=0.1)
    bind_agents(graph, agents)
    corpus = CorpusGenerator(seed=93)
    fact = corpus.factual(topic="politics")
    platform.seed_fact("f-net", fact.text, "record", "politics")
    seed_share = corpus.relay_derivation(fact, "agent-00000", 0.0)

    class _Seed:
        agent_id = "agent-00000"
        parent_article_id = ""
        op = "relay"

    platform.ingest_share(_Seed(), seed_share, "politics")
    events = []

    def on_share(event, article):
        platform.ingest_share(event, article, "politics")
        events.append(event)

    runner = CascadeRunner(graph, corpus, rng=rng, on_share=on_share)
    hub = max(graph.nodes(), key=lambda n: graph.out_degree(n))
    runner.run([(hub, seed_share)], n_rounds=4)
    # Every share must be committed on every peer, identically.
    network.run_for(5)
    network.assert_convergence()
    chain_graph = platform.graph
    for event in events:
        assert event.article_id in chain_graph
    if events:
        trace = platform.trace(events[-1].article_id)
        assert trace.traceable is (trace.root is not None)
    heights = {p.ledger.height for p in network.peers}
    assert len(heights) == 1
