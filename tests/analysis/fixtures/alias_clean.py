"""Known-clean ALIAS corpus: None defaults and defensive copies."""


def collect(item, acc=None):
    acc = [] if acc is None else acc
    acc.append(item)
    return acc


class Peer:
    def __init__(self):
        self.receipts = {}
        self.heights = []

    def all_receipts(self):
        return dict(self.receipts)

    def seen_heights(self):
        return sorted(self.heights)


class Courier:
    """Not a boundary class: returning internals is its contract."""

    def __init__(self):
        self.bag = []

    def contents(self):
        return self.bag
