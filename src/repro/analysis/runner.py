"""Drive the rules over a file tree and render the results.

The runner owns everything rule classes should not care about: file
discovery, dotted-module-name inference, ``# repro: noqa`` suppression,
the severity cap for non-``src`` roots, baseline application, output
formatting, and the exit code.  ``repro-news lint`` and
``python -m repro.analysis`` are both thin wrappers over :func:`main`.

Exit codes: 0 clean (or warns only), 1 active ``error`` findings,
2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.core import (
    AnalysisConfig,
    Finding,
    ModuleInfo,
    all_rules,
    parse_noqa,
)

__all__ = ["Report", "analyze_paths", "analyze_source", "main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")
DEFAULT_BASELINE = "analysis_baseline.json"
JSON_SCHEMA_VERSION = 1


@dataclass
class Report:
    """Everything one analyzer run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0  # dropped by inline noqa
    expired_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def active_errors(self) -> list[Finding]:
        return [f for f in self.findings
                if f.severity == "error" and not f.baselined]

    @property
    def exit_code(self) -> int:
        if self.parse_errors:
            return 2
        return 1 if self.active_errors else 0

    def as_record(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "version": JSON_SCHEMA_VERSION,
            "findings": [f.as_record() for f in self.findings],
            "summary": {
                "files_checked": self.files_checked,
                "total": len(self.findings),
                "errors": sum(1 for f in self.findings if f.severity == "error"),
                "warnings": sum(1 for f in self.findings if f.severity == "warn"),
                "active_errors": len(self.active_errors),
                "baselined": sum(1 for f in self.findings if f.baselined),
                "suppressed": self.suppressed,
                "expired_baseline": self.expired_baseline,
                "by_rule": dict(sorted(counts.items())),
            },
            "parse_errors": self.parse_errors,
        }


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name inferred from ``__init__.py`` package markers."""
    try:
        resolved = path.resolve()
    except OSError:
        return ""
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else ""


def collect_files(paths: Sequence[str], config: AnalysisConfig | None = None) -> list[pathlib.Path]:
    """``.py`` files under *paths*; excluded dir names (the linter's own
    known-bad fixture corpus) are skipped during walks, but a file named
    explicitly is always analyzed."""
    config = config or AnalysisConfig()
    excluded = set(config.exclude_dir_names)
    out: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py")
                       if not (set(p.parts) & excluded))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _severity_cap(finding: Finding, config: AnalysisConfig) -> None:
    """Outside ``src`` the tree is analyzed in warn mode (tests and
    benchmarks measure wall time and seed scratch RNGs by design)."""
    parts = pathlib.PurePath(finding.path).parts
    if parts and parts[0] in config.warn_only_roots and finding.severity == "error":
        finding.severity = "warn"


def _apply_noqa(findings: list[Finding], noqa: dict[int, set[str] | None]) -> tuple[list[Finding], int]:
    if not noqa:
        return findings, 0
    kept: list[Finding] = []
    dropped = 0
    for finding in findings:
        rules = noqa.get(finding.line, ...)
        if rules is ... :
            kept.append(finding)
        elif rules is None or finding.rule in rules:
            dropped += 1
        else:
            kept.append(finding)
    return kept, dropped


def analyze_source(
    source: str,
    path: str = "<memory>",
    module: str = "",
    config: AnalysisConfig | None = None,
) -> list[Finding]:
    """Analyze one in-memory source blob with per-file rules.

    Test/fixture entry point: cross-file rules run their per-file
    collection but ``finish`` hooks also run (against this single
    module), so OBS rules work on self-contained snippets too.
    """
    config = config or AnalysisConfig()
    mod = ModuleInfo.from_source(source, path=path, module=module)
    rules = all_rules(config)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check_module(mod))
    for rule in rules:
        findings.extend(rule.finish([mod]))
    findings, _ = _apply_noqa(findings, parse_noqa(mod.lines))
    for finding in findings:
        _severity_cap(finding, config)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_paths(paths: Sequence[str], config: AnalysisConfig | None = None) -> Report:
    """Run every rule over every ``.py`` file under *paths*."""
    config = config or AnalysisConfig()
    report = Report()
    rules = all_rules(config)
    modules: list[ModuleInfo] = []
    for path in collect_files(paths, config):
        display = str(path)
        try:
            source = path.read_text(encoding="utf-8")
            mod = ModuleInfo.from_source(source, path=display,
                                         module=module_name_for(path))
        except (OSError, SyntaxError, ValueError) as exc:
            report.parse_errors.append(f"{display}: {exc}")
            continue
        modules.append(mod)
    report.files_checked = len(modules)

    for mod in modules:
        file_findings: list[Finding] = []
        for rule in rules:
            file_findings.extend(rule.check_module(mod))
        file_findings, dropped = _apply_noqa(file_findings, parse_noqa(mod.lines))
        report.suppressed += dropped
        report.findings.extend(file_findings)

    noqa_by_path = {mod.path: parse_noqa(mod.lines) for mod in modules}
    for rule in rules:
        for finding in rule.finish(modules):
            kept, dropped = _apply_noqa([finding], noqa_by_path.get(finding.path, {}))
            report.suppressed += dropped
            report.findings.extend(kept)

    for finding in report.findings:
        _severity_cap(finding, config)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def format_human(report: Report) -> str:
    lines = [f.render() + (" (baselined)" if f.baselined else "")
             for f in report.findings]
    lines.extend(f"PARSE ERROR: {err}" for err in report.parse_errors)
    summary = report.as_record()["summary"]
    lines.append(
        f"{summary['files_checked']} files: {summary['errors']} errors "
        f"({summary['active_errors']} active), {summary['warnings']} warnings, "
        f"{summary['baselined']} baselined, {summary['suppressed']} noqa-suppressed"
    )
    if report.expired_baseline:
        lines.append(
            f"NOTE: {len(report.expired_baseline)} baseline entries no longer "
            "match anything — regenerate with --update-baseline"
        )
    return "\n".join(lines)


def format_json(report: Report) -> str:
    return json.dumps(report.as_record(), indent=2)


def build_arg_parser(prog: str = "repro-news lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="AST-based determinism & simulation-safety linter "
                    "(rule catalog: docs/LINTS.md)",
    )
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("human", "json"), default="human")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings and exit 0")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    return parser


def main(argv: Sequence[str] | None = None, prog: str = "repro-news lint") -> int:
    args = build_arg_parser(prog).parse_args(argv)
    report = analyze_paths(args.paths)

    if args.update_baseline:
        count = baseline_mod.write_baseline(args.baseline, report.findings)
        print(f"baseline {args.baseline}: {count} findings recorded")
        return 0

    if not args.no_baseline:
        try:
            entries = baseline_mod.load_baseline(args.baseline)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"bad baseline file: {exc}")
            return 2
        report.expired_baseline = baseline_mod.apply_baseline(report.findings, entries)

    rendered = format_json(report) if args.format == "json" else format_human(report)
    print(rendered)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered + "\n", encoding="utf-8")
    return report.exit_code
