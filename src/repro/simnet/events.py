"""Discrete-event scheduler: the single clock everything runs on.

The blockchain network, the social-media cascades, and the platform all
schedule callbacks on one :class:`Simulator`, so cross-system questions
("does factual news outpace fake news once consensus latency is paid?")
are well-defined races rather than apples-to-oranges comparisons.

Events at equal timestamps fire in scheduling order (a monotone sequence
number breaks ties), which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordered by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule *callback* to run *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self._now + delay, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule *callback* at an absolute simulated time."""
        return self.schedule(time - self._now, callback, label=label)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Args:
            until: stop once the next event lies beyond this time (the
                clock is advanced to *until* so follow-up scheduling is
                relative to the horizon, matching wall-clock intuition).
            max_events: safety valve for runaway feedback loops.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            self.step()
            processed += 1
        if until is not None:
            self._now = max(self._now, until)
