PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos bench

# Tier-1: fast default suite (chaos-marked sweeps excluded via addopts).
test:
	$(PYTHON) -m pytest -x -q

# Extended seeded chaos/invariant-audit sweeps (slow, opt-in).
chaos:
	$(PYTHON) -m pytest -m chaos

bench:
	$(PYTHON) -m pytest benchmarks -q
