"""Chain explorer views and ledger-derived source ratings."""

import pytest

from repro.chain.explorer import (
    chain_summary,
    describe_block,
    describe_transaction,
    find_transactions,
)
from repro.core.source_rating import rate_distribution_platform
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay


@pytest.fixture
def world(platform):
    gen = CorpusGenerator(seed=71)
    facts = [gen.factual(topic="politics") for _ in range(3)]
    for index, fact in enumerate(facts):
        platform.seed_fact(f"f-{index}", fact.text, "record", "politics")
    # A diligent platform and a content mill.
    platform.register_participant("good-pub", role="publisher")
    platform.create_distribution_platform("good-pub", "good-news")
    platform.create_news_room("good-pub", "good-news", "good-desk", "politics")
    platform.register_participant("mill-pub", role="publisher")
    platform.create_distribution_platform("mill-pub", "mill-news")
    platform.create_news_room("mill-pub", "mill-news", "mill-desk", "politics")
    platform.register_participant("good-journo", role="journalist")
    platform.authenticate_journalist("good-news", "good-journo")
    platform.register_participant("mill-journo", role="journalist")
    platform.authenticate_journalist("mill-news", "mill-journo")
    for index in range(3):
        platform.register_participant(f"rater-{index}", role="checker")
    for index, fact in enumerate(facts):
        platform.publish_article("good-journo", "good-news", "good-desk",
                                 f"good-{index}", relay(fact, "g", float(index)).text, "politics")
        fake = gen.insertion_fake(relay(fact, "x", 0.0), "mill-journo",
                                  float(index), n_insertions=4)
        platform.publish_article("mill-journo", "mill-news", "mill-desk",
                                 f"mill-{index}", fake.text, "politics")
        # Fact checkers weigh in (realistic operation: rankings fuse
        # crowd votes, not provenance alone).
        for rater in range(3):
            platform.cast_vote(f"rater-{rater}", f"good-{index}", True)
            platform.cast_vote(f"rater-{rater}", f"mill-{index}", False)
        platform.rank_article(f"good-{index}")
        platform.rank_article(f"mill-{index}")
    return platform


# -- explorer ----------------------------------------------------------------


def test_chain_summary(world):
    summary = chain_summary(world.chain.ledger)
    assert summary["height"] == summary["blocks"] - 1
    assert summary["transactions"] == summary["valid_transactions"]
    assert summary["transactions_by_contract"]["newsroom"] > 0
    assert summary["head_hash"] == world.chain.ledger.head.block_hash


def test_describe_block(world):
    block = world.chain.ledger.block(1)
    described = describe_block(block)
    assert described["height"] == 1
    assert described["tx_count"] == len(described["transactions"]) == 1
    assert "identity.register" in described["transactions"][0]


def test_describe_transaction(world):
    committed = next(world.chain.ledger.transactions())
    described = describe_transaction(world.chain.ledger, committed.transaction.tx_id)
    assert described["valid"] is True
    assert described["contract"] == committed.transaction.contract
    assert describe_transaction(world.chain.ledger, "ff" * 32) is None


def test_find_transactions_filters(world):
    votes = find_transactions(world.chain.ledger, contract="supplychain",
                              method="record_ranking")
    assert len(votes) == 6
    by_sender = find_transactions(world.chain.ledger,
                                  sender=world.address_of("mill-journo"))
    assert by_sender and all(t["sender"] == world.address_of("mill-journo") for t in by_sender)
    assert find_transactions(world.chain.ledger, contract="nope") == []


def test_find_transactions_limit(world):
    assert len(find_transactions(world.chain.ledger, limit=3)) == 3


# -- source ratings --------------------------------------------------------------


def test_good_platform_rates_green(world):
    rating = rate_distribution_platform(world.chain.ledger, world.graph, "good-news")
    assert rating.articles == 3
    assert rating.false_content_share == 0.0
    assert rating.verified_member_share == 1.0
    assert rating.color == "green"
    assert "good-news" in rating.as_row()


def test_mill_platform_rates_worse(world):
    good = rate_distribution_platform(world.chain.ledger, world.graph, "good-news")
    mill = rate_distribution_platform(world.chain.ledger, world.graph, "mill-news")
    assert mill.composite < good.composite
    assert mill.false_content_share > 0.5
    assert mill.provenance_discipline < good.provenance_discipline


def test_unrated_platform_is_grey(world):
    world.register_participant("fresh", role="publisher")
    world.create_distribution_platform("fresh", "fresh-news")
    rating = rate_distribution_platform(world.chain.ledger, world.graph, "fresh-news")
    assert rating.articles == 0
    assert rating.color == "grey"
