"""Platform topic routing and article inclusion proofs."""

import pytest

from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.errors import PlatformError


@pytest.fixture
def world(platform):
    gen = CorpusGenerator(seed=64)
    fact = gen.factual(topic="sports")
    platform.seed_fact("f-s", fact.text, "league-record", "sports")
    platform.register_participant("espn", role="publisher")
    platform.create_distribution_platform("espn", "espn-wire")
    platform.create_news_room("espn", "espn-wire", "scores", "sports")
    return platform, gen, fact


def test_topic_routing(world):
    platform, gen, fact = world
    train = [gen.factual() for _ in range(160)]
    platform.train_topic_model([a.text for a in train], [a.topic for a in train])
    sports_article = gen.factual(topic="sports")
    topic, confidence = platform.suggest_topic(sports_article.text)
    assert topic == "sports"
    assert confidence > 0.5


def test_suggest_topic_requires_training(world):
    platform, *_ = world
    with pytest.raises(PlatformError, match="train_topic_model"):
        platform.suggest_topic("anything")


def test_prove_article_inclusion(world):
    platform, gen, fact = world
    platform.publish_article("espn", "espn-wire", "scores", "s-1",
                             relay(fact, "espn", 1.0).text, "sports")
    proof = platform.prove_article("s-1")
    assert proof["verified"] is True
    block = platform.chain.ledger.block(proof["block_height"])
    assert block.merkle_root == proof["merkle_root"]
    assert proof["proof"].verify(block.merkle_root)
    # Proof against the wrong root fails.
    other_block = platform.chain.ledger.block(max(0, proof["block_height"] - 1))
    assert not proof["proof"].verify(other_block.merkle_root)


def test_prove_unknown_article(world):
    platform, *_ = world
    with pytest.raises(PlatformError, match="no supply-chain record"):
        platform.prove_article("ghost")


def test_rank_room_orders_articles(world):
    platform, gen, fact = world
    platform.publish_article("espn", "espn-wire", "scores", "rr-good",
                             relay(fact, "espn", 1.0).text, "sports")
    fake = gen.insertion_fake(relay(fact, "e", 0.0), "espn", 2.0, n_insertions=4)
    platform.publish_article("espn", "espn-wire", "scores", "rr-bad", fake.text, "sports")
    ranked = platform.rank_room("espn-wire", "scores")
    assert [r.article_id for r in ranked][0] == "rr-good"
    assert ranked[0].score > ranked[-1].score
    assert {r.article_id for r in ranked} == {"rr-good", "rr-bad"}


def test_rank_room_empty(world):
    platform, *_ = world
    assert platform.rank_room("espn-wire", "empty-room") == []
