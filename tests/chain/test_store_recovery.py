"""Network-level crash-consistency: restart is *recovery*, not replay.

With ``storage="durable"`` every peer write-ahead logs its commits to a
fault-injectable :class:`~repro.simnet.disk.SimDisk`.  These tests crash
peers under injected disk faults — torn writes, lying-drive partial
flushes, bit flips in the log and in snapshots — restart them through
:meth:`DurableStore.recover`, and hold the network to the full invariant
suite: acked-durable blocks survive byte-identical, every loss is a
counted degradation (never a wrong state), and recovered peers
re-converge with the fleet.

The hypothesis property at the bottom pins the recovery semantics
itself: for any crash point and snapshot interval, recovering a durable
store yields exactly the ledger tip, receipts, and world state of the
uninterrupted run.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain import BlockchainNetwork, InvariantAuditor
from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.state import WorldState
from repro.chain.store import DurableStore, SQLiteStore
from repro.chain.transaction import Transaction, TxReceipt
from repro.crypto import KeyPair
from repro.simnet import ChaosSchedule, FailureSchedule, UniformLatency
from repro.simnet.disk import SimDisk

DEFAULT_DISK_SEEDS = range(4)
EXTENDED_DISK_SEEDS = range(4, 24)


#: Both durable backends honour the same recovery contract; the network
#: suites run against each so SQLiteStore earns the same guarantees.
BACKENDS = ("durable", "sqlite")


def _build(seed: int, snapshot_interval: int = 4, storage: str = "durable"):
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=UniformLatency(0.01, 0.05), seed=seed, view_timeout=4.0,
        storage=storage, snapshot_interval=snapshot_interval,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)
    schedule = FailureSchedule(network.sim, network.net)
    return network, auditor, schedule


def _drive(network, n_txs: int, gap: float = 0.8) -> None:
    client = network.client()
    for _ in range(n_txs):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.run_for(gap)


def _assert_converged(network) -> None:
    heights = {p.node_id: p.ledger.height for p in network.peers}
    assert len(set(heights.values())) == 1, f"heights diverge: {heights}"
    digests = {p.node_id: p.state.state_digest() for p in network.peers}
    assert len(set(digests.values())) == 1, f"state digests diverge: {digests}"


def _peer(network, node_id):
    return next(p for p in network.peers if p.node_id == node_id)


@pytest.mark.parametrize("storage", BACKENDS)
def test_restart_recovers_from_store_not_replay(storage):
    """A clean crash-restart must come back through the store: snapshot
    + tail, with the archived prefix still queryable block by block."""
    network, auditor, schedule = _build(seed=3, snapshot_interval=4, storage=storage)
    schedule.crash_at(10.0, "peer-1")
    schedule.restart_at(13.0, "peer-1")
    _drive(network, n_txs=24)
    network.run_for(15.0)
    network.stop()
    peer = _peer(network, "peer-1")
    report = peer.store.last_recovery
    assert report is not None, "restart did not go through the store"
    assert report.mode == "snapshot+tail"
    assert report.snapshot_height > 0
    assert report.degradations == [] and report.missing_acked == {}
    # The archive window serves the full chain, hash-linked end to end.
    assert peer.ledger.verify_chain()
    _assert_converged(network)
    assert auditor.final_check(failures=schedule.log) == []


@pytest.mark.parametrize("storage", BACKENDS)
@pytest.mark.parametrize("fault", ["torn", "partial", "bitflip-log", "bitflip-snapshot"])
def test_disk_fault_recovery_reconverges(fault, storage):
    """Every injected fault class degrades detectably and re-converges."""
    network, auditor, schedule = _build(seed=13, snapshot_interval=4, storage=storage)
    victim = "peer-2"
    if fault == "torn":
        schedule.torn_write_at(7.9, victim)
    elif fault == "partial":
        schedule.partial_flush_at(7.9, victim, k=3)
    elif fault == "bitflip-log":
        schedule.bitflip_at(9.0, victim, artifact="log")
    else:
        schedule.bitflip_at(9.0, victim, artifact="snapshot")
    schedule.crash_at(8.0, victim)
    schedule.restart_at(13.0, victim)
    _drive(network, n_txs=24)
    network.run_for(15.0)
    network.stop()
    _assert_converged(network)
    report = _peer(network, victim).store.last_recovery
    assert report is not None
    if fault != "bitflip-snapshot":
        # Log-directed faults cost blocks; the loss must be accounted.
        assert report.missing_acked, "fault lost nothing — scenario too weak"
        assert any(d.kind == "acked-rollback" for d in report.degradations)
    else:
        # Snapshot corruption falls back a rung but loses no blocks.
        assert [d.kind for d in report.degradations] == ["snapshot-corrupt"]
        assert report.missing_acked == {}
    assert auditor.final_check(failures=schedule.log) == []
    # The degradation counters saw exactly what the report recorded.
    counted = sum(
        c.value for c in network.obs.counters("store.degradations")
        if c.labels.get("peer") == victim
    )
    assert counted == len(report.degradations)


def test_disk_events_logged_for_forensics():
    network, _, schedule = _build(seed=5)
    schedule.torn_write_at(5.9, "peer-1")
    schedule.crash_at(6.0, "peer-1")
    schedule.restart_at(9.0, "peer-1")
    _drive(network, n_txs=16)
    network.run_for(10.0)
    network.stop()
    actions = [e.action for e in schedule.log]
    assert "disk-arm-torn-write" in actions
    assert "disk-torn-write" in actions  # fired at the crash itself
    assert actions.index("disk-torn-write") < actions.index("crash")


def _run_disk_chaos(seed: int, duration: float = 24.0, settle: float = 40.0,
                    n_txs: int = 12, storage: str = "durable"):
    """One audited chaos run with the ``disk`` scenario enabled."""
    from tests.conftest import CounterContract

    rng = random.Random(seed)
    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=UniformLatency(0.01, 0.08), seed=seed, view_timeout=4.0,
        storage=storage, snapshot_interval=4,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)
    chaos = ChaosSchedule(network.sim, network.net, seed=seed)
    chaos.plan(duration, validators=[p.node_id for p in network.peers],
               scenarios=("crash", "disk"))
    client = network.client()
    for _ in range(n_txs):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.run_for(rng.uniform(0.4, duration / n_txs))
    network.run_for(max(0.0, duration - network.sim.now) + settle)
    network.stop()
    auditor.final_check(failures=chaos.log, sync_window=duration + settle)
    return network, auditor, chaos


@pytest.mark.parametrize("seed", DEFAULT_DISK_SEEDS)
def test_disk_chaos_audited(seed):
    network, auditor, chaos = _run_disk_chaos(seed)
    assert auditor.violations == []
    assert chaos.log, "chaos plan injected nothing"
    _assert_converged(network)


@pytest.mark.parametrize("seed", [0, 1])
def test_disk_chaos_audited_sqlite(seed):
    """The sqlite backend survives the same disk-fault chaos (a slice in
    tier-1; the full sweep runs behind ``-m chaos`` / ``make recovery``)."""
    network, auditor, chaos = _run_disk_chaos(seed, storage="sqlite")
    assert auditor.violations == []
    assert chaos.log, "chaos plan injected nothing"
    _assert_converged(network)


def test_disk_scenario_does_not_perturb_existing_plans():
    """Enabling ``disk`` must only *add* events: the crash/partition/
    latency/rogue plan for a seed is byte-identical either way."""
    def plan_events(scenarios):
        network, _, _ = _build(seed=9)
        chaos = ChaosSchedule(network.sim, network.net, seed=21)
        chaos.plan(20.0, validators=[p.node_id for p in network.peers],
                   scenarios=scenarios)
        network.sim.run(until=30.0)
        return [(e.time, e.action, e.target) for e in chaos.log]

    base = plan_events(("crash", "partition", "latency"))
    with_disk = plan_events(("crash", "partition", "latency", "disk"))
    non_disk = [e for e in with_disk if not e[1].startswith("disk-")]
    assert non_disk == base


def test_disk_scenario_requires_crash_windows():
    """Disk faults attach to crash windows, so ``scenarios={"disk"}``
    without ``"crash"`` would silently schedule nothing — and read as a
    passing crash-consistency run that injected zero faults.  ``plan``
    refuses the combination and, when valid, reports how many disk
    faults it armed so callers can assert the run actually bit."""
    network, _, _ = _build(seed=3)
    chaos = ChaosSchedule(network.sim, network.net, seed=3)
    validators = [p.node_id for p in network.peers]
    with pytest.raises(ValueError, match="disk"):
        chaos.plan(20.0, validators=validators, scenarios=("disk",))
    armed = chaos.plan(20.0, validators=validators,
                       scenarios=("crash", "disk"))
    network.sim.run(until=30.0)
    fired = [e for e in chaos.log if e.action.startswith("disk-")]
    assert len(fired) == armed


@pytest.mark.chaos
@pytest.mark.parametrize("storage", BACKENDS)
@pytest.mark.parametrize("seed", EXTENDED_DISK_SEEDS)
def test_disk_chaos_audited_extended(seed, storage):
    """The wide disk-fault sweep behind ``make chaos`` / ``make recovery``,
    over both durable backends."""
    network, auditor, chaos = _run_disk_chaos(seed, duration=40.0, settle=50.0,
                                              n_txs=20, storage=storage)
    assert auditor.violations == []
    _assert_converged(network)


# -- recovery-equivalence property -----------------------------------------


_KEYPAIR = KeyPair.generate(random.Random(0))


def _make_tx(nonce: int) -> Transaction:
    tx = Transaction.create(_KEYPAIR, "counter", "increment", {"n": nonce}, nonce=nonce)
    return tx.with_execution(
        read_set={}, write_set={f"counter/{nonce % 5}": nonce},
        events=(), return_value=nonce, endorsements=(),
    )


@pytest.mark.parametrize("store_cls", [DurableStore, SQLiteStore])
@given(
    crash_point=st.integers(min_value=1, max_value=24),
    snapshot_interval=st.integers(min_value=1, max_value=9),
    torn=st.booleans(),
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_recovery_equals_uninterrupted_run(store_cls, crash_point,
                                           snapshot_interval, torn):
    """For any crash point and snapshot interval, recovering a durable
    store — either backend — reproduces the uninterrupted run exactly:
    same ledger tip, same receipts, same world-state contents.

    The crash lands after *crash_point* commits.  A clean crash (every
    record was fsync'd) must lose nothing; with a torn final write the
    store must come back at exactly ``crash_point - 1`` — the state of
    the uninterrupted run one block earlier — with the loss accounted.
    """
    disk = SimDisk("n0", rng=random.Random(42))
    store = store_cls(disk=disk, snapshot_interval=snapshot_interval)
    ledger, state, receipts = Ledger(), WorldState(), {}
    checkpoints = {0: (ledger.head.block_hash, state.dump(), {})}
    nonce = 0
    for height in range(1, crash_point + 1):
        txs = [_make_tx(nonce), _make_tx(nonce + 1)]
        nonce += 2
        block = Block.build(height, ledger.head.block_hash, float(height), "p", txs)
        validity = [tx.nonce % 7 != 3 for tx in txs]
        errors = [None if ok else "MVCC conflict: stale read set" for ok in validity]
        ledger.append(block, validity)
        for index, tx in enumerate(block.transactions):
            if validity[index]:
                state.apply_write_set(tx.write_set)
            receipts[tx.tx_id] = TxReceipt(
                tx_id=tx.tx_id, block_height=height, success=validity[index],
                return_value=tx.return_value if validity[index] else None,
                events=(), error=errors[index],
            )
        store.on_commit(block, validity, proof=None, errors=errors)
        store.maybe_snapshot(ledger, state, receipts)
        checkpoints[height] = (ledger.head.block_hash, state.dump(), dict(receipts))

    if torn:
        disk.arm_torn_write()
    disk.on_crash()
    recovered = store.recover()
    expected_height = crash_point - 1 if torn else crash_point
    expected_tip, expected_state, expected_receipts = checkpoints[expected_height]

    assert recovered.ledger.height == expected_height
    assert recovered.ledger.head.block_hash == expected_tip
    assert recovered.state.dump() == expected_state
    got = {tx_id: (r.success, r.block_height, r.error)
           for tx_id, r in recovered.receipts.items()}
    want = {tx_id: (r.success, r.block_height, r.error)
            for tx_id, r in expected_receipts.items()}
    assert got == want
    if torn:
        assert recovered.report.missing_acked == {crash_point: "record lost from log"}
        assert any(d.kind == "acked-rollback" for d in recovered.report.degradations)
    else:
        assert recovered.report.degradations == []
        assert recovered.report.missing_acked == {}
    # The chain that came back is hash-linked end to end.
    assert recovered.ledger.verify_chain()
