"""Supply-chain recording, graph reconstruction, tracing, accountability."""

import networkx as nx
import pytest

from repro.chain import LocalChain
from repro.core import (
    IdentityContract,
    SupplyChainContract,
    build_supply_chain_graph,
    find_original_author,
    trace_to_factual_root,
)
from repro.errors import ContractError


@pytest.fixture
def chain():
    c = LocalChain(seed=2)
    c.install_contract(IdentityContract())
    c.install_contract(SupplyChainContract())
    return c


def _register(chain, name):
    account = chain.new_account()
    chain.invoke(account, "identity", "register", {"display_name": name, "role": "creator"})
    return account


def _record(chain, account, article_id, parents=(), degree=0.0, fact_roots=(), op="publish"):
    return chain.invoke(
        account, "supplychain", "record_node",
        {"article_id": article_id, "content_hash": "h-" + article_id,
         "parents": list(parents), "modification_degree": degree,
         "topic": "politics", "op": op, "fact_roots": list(fact_roots)},
    )


def test_record_and_get(chain):
    alice = _register(chain, "alice")
    _record(chain, alice, "a-1", fact_roots=["f-1"])
    node = chain.query("supplychain", "get_node", {"article_id": "a-1"})
    assert node["author"] == alice.address
    assert node["fact_roots"] == ["f-1"]


def test_unregistered_cannot_record(chain):
    rogue = chain.new_account()
    with pytest.raises(ContractError, match="unregistered"):
        _record(chain, rogue, "a-1")


def test_parent_must_exist(chain):
    alice = _register(chain, "alice")
    with pytest.raises(ContractError, match="not recorded"):
        _record(chain, alice, "a-2", parents=["ghost"])


def test_degree_bounds_enforced(chain):
    alice = _register(chain, "alice")
    with pytest.raises(ContractError):
        _record(chain, alice, "a-1", degree=1.5)


def test_duplicate_article_rejected(chain):
    alice = _register(chain, "alice")
    _record(chain, alice, "a-1")
    with pytest.raises(ContractError, match="already recorded"):
        _record(chain, alice, "a-1")


@pytest.fixture
def lineage(chain):
    """fact:f-1 <- a-1 (relay, 0.0) <- a-2 (relay 0.0) <- a-3 (distort 0.6) <- a-4 (relay 0.0);
    plus untraceable u-1 <- u-2."""
    alice = _register(chain, "alice")
    bob = _register(chain, "bob")
    troll = _register(chain, "troll")
    relayer = _register(chain, "relayer")
    loner = _register(chain, "loner")
    _record(chain, alice, "a-1", degree=0.0, fact_roots=["f-1"])
    _record(chain, bob, "a-2", parents=["a-1"], degree=0.0, op="relay")
    _record(chain, troll, "a-3", parents=["a-2"], degree=0.6, op="distort")
    _record(chain, relayer, "a-4", parents=["a-3"], degree=0.0, op="relay")
    _record(chain, loner, "u-1", degree=1.0, op="fabricate")
    _record(chain, bob, "u-2", parents=["u-1"], degree=0.0, op="relay")
    return chain, {"alice": alice, "bob": bob, "troll": troll, "relayer": relayer, "loner": loner}


def test_graph_reconstruction(lineage):
    chain, accounts = lineage
    graph = build_supply_chain_graph(chain.ledger)
    assert graph.has_edge("a-2", "a-1")
    assert graph.has_edge("a-1", "fact:f-1")
    assert graph.nodes["fact:f-1"]["is_fact_root"]
    assert graph.nodes["a-3"]["modification_degree"] == 0.6
    assert graph.nodes["a-3"]["author"] == accounts["troll"].address


def test_trace_faithful_chain(lineage):
    chain, _ = lineage
    graph = build_supply_chain_graph(chain.ledger)
    trace = trace_to_factual_root(graph, "a-2")
    assert trace.traceable and trace.root == "fact:f-1"
    assert trace.cumulative_modification == pytest.approx(0.0)
    assert trace.provenance_score == pytest.approx(1.0)
    assert trace.path == ["a-2", "a-1", "fact:f-1"]


def test_trace_accumulates_modification(lineage):
    chain, _ = lineage
    graph = build_supply_chain_graph(chain.ledger)
    trace = trace_to_factual_root(graph, "a-4")
    assert trace.traceable
    assert trace.cumulative_modification == pytest.approx(0.6)
    assert trace.provenance_score == pytest.approx(0.4)


def test_untraceable_article(lineage):
    chain, _ = lineage
    graph = build_supply_chain_graph(chain.ledger)
    trace = trace_to_factual_root(graph, "u-2")
    assert not trace.traceable
    assert trace.provenance_score == 0.0


def test_trace_unknown_article():
    assert not trace_to_factual_root(nx.DiGraph(), "nope").traceable


def test_trace_prefers_least_modified_path(chain):
    """Diamond: article reachable via a clean relay and a distorted copy."""
    alice = _register(chain, "alice")
    _record(chain, alice, "root", degree=0.0, fact_roots=["f-1"])
    _record(chain, alice, "clean", parents=["root"], degree=0.0, op="relay")
    _record(chain, alice, "dirty", parents=["root"], degree=0.7, op="distort")
    _record(chain, alice, "leaf", parents=["clean", "dirty"], degree=0.1, op="merge")
    graph = build_supply_chain_graph(chain.ledger)
    trace = trace_to_factual_root(graph, "leaf")
    assert trace.cumulative_modification == pytest.approx(0.1)
    assert "dirty" not in trace.path


def test_accountability_fingers_the_distorter(lineage):
    chain, accounts = lineage
    graph = build_supply_chain_graph(chain.ledger)
    assert find_original_author(graph, "a-4") == accounts["troll"].address


def test_accountability_untraceable_goes_to_origin(lineage):
    chain, accounts = lineage
    graph = build_supply_chain_graph(chain.ledger)
    assert find_original_author(graph, "u-2") == accounts["loner"].address


def test_accountability_unknown_article(lineage):
    chain, _ = lineage
    graph = build_supply_chain_graph(chain.ledger)
    assert find_original_author(graph, "missing") is None


def test_record_ranking_requires_existing_node(chain):
    with pytest.raises(ContractError, match="not recorded"):
        chain.invoke(
            _register(chain, "alice"), "supplychain", "record_ranking",
            {"article_id": "ghost", "provenance_score": 1.0, "ai_score": 1.0,
             "crowd_score": 1.0, "final_score": 1.0},
        )


def test_record_ranking_roundtrip(lineage):
    chain, accounts = lineage
    chain.invoke(
        accounts["alice"], "supplychain", "record_ranking",
        {"article_id": "a-1", "provenance_score": 1.0, "ai_score": 0.9,
         "crowd_score": None, "final_score": 0.95},
    )
    ranking = chain.query("supplychain", "get_ranking", {"article_id": "a-1"})
    assert ranking["final_score"] == 0.95
