"""Permissioned blockchain substrate (from scratch).

Fabric-style execute–order–validate: signed transaction proposals are
simulated on endorsing peers (producing MVCC read/write sets), ordered
into Merkle-rooted blocks by a pluggable consensus engine (PBFT or a
round-robin PoA orderer), and validated at commit on every peer.
``LocalChain`` provides the same pipeline on one synchronous node for
platform-level experiments; ``BlockchainNetwork`` runs the distributed
protocols on the discrete-event simulator.
"""

from repro.chain.block import Block, make_genesis_block
from repro.chain.consensus import PBFTEngine, RoundRobinOrderer, ShardedExecutor, ShardSchedule
from repro.chain.contracts import (
    Contract,
    ContractContext,
    ContractRegistry,
    EndorsementPolicy,
    contract_method,
)
from repro.chain.adapter import NetworkedChain
from repro.chain.audit import AuditViolation, InvariantAuditor, recovery_latencies
from repro.chain.explorer import (
    chain_summary,
    describe_block,
    describe_transaction,
    find_transactions,
)
from repro.chain.index import ChainIndex
from repro.chain.ledger import CommittedTx, Ledger
from repro.chain.local import LocalChain
from repro.chain.mempool import Mempool
from repro.chain.network import BlockchainNetwork, ChainClient
from repro.chain.peer import Admission, Peer
from repro.chain.state import StateSnapshot, WorldState
from repro.chain.store import (
    BlockStore,
    Degradation,
    DurableStore,
    MemoryStore,
    RecoveredChain,
    RecoveryReport,
    SQLiteStore,
)
from repro.chain.sync import SyncManager, SyncMetrics
from repro.chain.transaction import Endorsement, Transaction, TxReceipt

__all__ = [
    "AuditViolation",
    "InvariantAuditor",
    "recovery_latencies",
    "Block",
    "make_genesis_block",
    "PBFTEngine",
    "RoundRobinOrderer",
    "ShardedExecutor",
    "ShardSchedule",
    "Contract",
    "ContractContext",
    "ContractRegistry",
    "EndorsementPolicy",
    "contract_method",
    "chain_summary",
    "describe_block",
    "describe_transaction",
    "find_transactions",
    "ChainIndex",
    "CommittedTx",
    "Ledger",
    "LocalChain",
    "NetworkedChain",
    "Mempool",
    "BlockchainNetwork",
    "ChainClient",
    "Admission",
    "Peer",
    "SyncManager",
    "SyncMetrics",
    "StateSnapshot",
    "WorldState",
    "BlockStore",
    "Degradation",
    "DurableStore",
    "SQLiteStore",
    "MemoryStore",
    "RecoveredChain",
    "RecoveryReport",
    "Endorsement",
    "Transaction",
    "TxReceipt",
]
