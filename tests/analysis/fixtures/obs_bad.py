"""Known-bad OBS corpus: one metric name, conflicting registrations."""


def record_commit(registry, peer: str, latency: float) -> None:
    registry.counter("chain.commits", peer=peer).inc()
    registry.histogram("chain.commits", peer=peer).observe(latency)  # OBS001


def record_sync(registry, peer: str, origin: str) -> None:
    registry.counter("sync.fetches", peer=peer).inc()
    registry.counter("sync.fetches", peer=peer, origin=origin).inc()  # OBS002
