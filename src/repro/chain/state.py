"""Versioned world state with MVCC read-set validation.

Fabric-style: every key carries the commit sequence number that last
wrote it.  Contract execution runs against a :class:`StateSnapshot` that
records what it read (key -> version) and buffers what it wrote; at
commit time :meth:`WorldState.validate_read_set` rejects transactions
whose reads went stale between endorsement and ordering.  That rejection
rate is itself an experimental signal (the sharded executor in E9 exists
to reduce cross-shard conflicts).
"""

from __future__ import annotations

import copy
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any, Iterator

from repro.chain.transaction import ReadSet, WriteSet

__all__ = ["WorldState", "StateSnapshot", "VersionedValue"]

_ABSENT_VERSION = -1  # version reported for keys that do not exist

#: Immutable JSON-scalar types that are safe to hand out and take in
#: without a defensive deep copy (bool before int is irrelevant — both
#: are immutable).  Containers still get copied: a caller mutating a
#: returned list/dict must never reach committed state.
_SCALARS = (str, int, float, bool, type(None))


def _isolate(value: Any) -> Any:
    """Deep-copy *value* unless it is an immutable JSON scalar."""
    if isinstance(value, _SCALARS):
        return value
    return copy.deepcopy(value)


@dataclass
class VersionedValue:
    value: Any
    version: int


class WorldState:
    """The committed key-value state of one peer."""

    def __init__(self) -> None:
        self._store: dict[str, VersionedValue] = {}
        #: Sorted view of the store's keys, maintained incrementally so
        #: prefix scans are O(log n + k) instead of re-sorting the whole
        #: store per scan.
        self._sorted_keys: list[str] = []
        self._commit_seq = 0

    # -- reads ------------------------------------------------------------

    def get(self, key: str) -> Any:
        entry = self._store.get(key)
        return _isolate(entry.value) if entry is not None else None

    def version(self, key: str) -> int:
        entry = self._store.get(key)
        return entry.version if entry is not None else _ABSENT_VERSION

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def keys_with_prefix(self, prefix: str) -> Iterator[str]:
        """Range scan by key prefix (contracts use composite keys).

        Served from the maintained sorted index: bisect to the first
        candidate, then walk while the prefix holds.
        """
        index = self._sorted_keys
        pos = bisect_left(index, prefix)
        while pos < len(index):
            key = index[pos]
            if not key.startswith(prefix):
                break
            yield key
            pos += 1

    # -- commit path -------------------------------------------------------

    def validate_read_set(self, read_set: ReadSet) -> bool:
        """True iff every read version still matches committed state."""
        return all(self.version(key) == version for key, version in read_set.items())

    def apply_write_set(self, write_set: WriteSet) -> int:
        """Apply writes under a fresh commit sequence; returns it."""
        self._commit_seq += 1
        for key, value in write_set.items():
            if value is None:
                if self._store.pop(key, None) is not None:
                    pos = bisect_left(self._sorted_keys, key)
                    if pos < len(self._sorted_keys) and self._sorted_keys[pos] == key:
                        del self._sorted_keys[pos]
            else:
                if key not in self._store:
                    insort(self._sorted_keys, key)
                self._store[key] = VersionedValue(value=_isolate(value), version=self._commit_seq)
        return self._commit_seq

    def snapshot(self) -> "StateSnapshot":
        """Open a read-your-writes view for simulated execution."""
        return StateSnapshot(self)

    # -- persistence -------------------------------------------------------

    def dump(self) -> dict[str, Any]:
        """JSON-ready full dump: commit sequence + sorted (key, value,
        version) entries.  The inverse of :meth:`from_dump`; values are
        isolated on the way back in, so a dump is safe to serialize,
        stash, and restore without aliasing committed state."""
        return {
            "commit_seq": self._commit_seq,
            "entries": [
                [key, entry.value, entry.version]
                for key, entry in sorted(self._store.items())
            ],
        }

    @classmethod
    def from_dump(cls, dumped: dict[str, Any]) -> "WorldState":
        """Rebuild a world state from :meth:`dump` output (snapshot
        recovery).  Restores values, MVCC versions, *and* the commit
        sequence, so post-recovery commits continue the same version
        numbering an uninterrupted run would have used — required for
        ``state_digest()`` convergence with peers that never crashed."""
        state = cls()
        state._commit_seq = int(dumped["commit_seq"])
        for key, value, version in dumped["entries"]:
            state._store[key] = VersionedValue(value=_isolate(value), version=int(version))
        state._sorted_keys = sorted(state._store)
        return state

    def state_digest(self) -> str:
        """Deterministic digest of the full committed state.

        The app-hash analogue: two peers that executed the same block
        sequence produce the same digest, so convergence checks can
        compare one string instead of walking both stores.  Versions are
        included — state that *looks* equal but was written by different
        commit schedules is a consensus bug worth catching.
        """
        from repro.crypto.hashing import hash_json

        return hash_json(
            [(key, entry.value, entry.version) for key, entry in sorted(self._store.items())]
        )


class StateSnapshot:
    """Execution view: records reads, buffers writes.

    Reads hit the buffered writes first (read-your-writes within one
    transaction), then committed state, recording the committed version
    so MVCC validation can detect staleness later.
    """

    def __init__(self, base: WorldState):
        self._base = base
        self.read_set: ReadSet = {}
        self.write_buffer: WriteSet = {}

    def get(self, key: str) -> Any:
        if key in self.write_buffer:
            value = self.write_buffer[key]
            return _isolate(value) if value is not None else None
        self.read_set.setdefault(key, self._base.version(key))
        return self._base.get(key)

    def put(self, key: str, value: Any) -> None:
        if value is None:
            raise ValueError("use delete() to remove a key; None is the deletion marker")
        self.write_buffer[key] = _isolate(value)

    def delete(self, key: str) -> None:
        self.write_buffer[key] = None

    def keys_with_prefix(self, prefix: str) -> list[str]:
        """Prefix scan merged across committed state and buffered writes.

        Every committed key returned is also recorded in the read set, so
        a concurrent insert/delete under the prefix invalidates us only
        if it touches keys we actually observed — matching Fabric's
        behaviour for range queries.
        """
        committed = list(self._base.keys_with_prefix(prefix))
        for key in committed:
            self.read_set.setdefault(key, self._base.version(key))
        merged = set(committed)
        for key, value in self.write_buffer.items():
            if key.startswith(prefix):
                if value is None:
                    merged.discard(key)
                else:
                    merged.add(key)
        return sorted(merged)
