"""Text similarity: shingles, MinHash, and cosine — provenance's toolbox.

The platform discovers an article's parent references by content
similarity (§VI: "analyze the news content searching and discovering
the parent references").  Three interchangeable measures are provided
so ablation A1 can compare cost/recall:

- exact k-shingle Jaccard (the reference measure),
- MinHash-estimated Jaccard (sublinear sketch, what a production system
  would index),
- cosine over term counts (robust to reordering, blind to word order).
"""

from __future__ import annotations

import math
from collections import Counter

from repro.corpus.lexicon import tokenize
from repro.crypto.hashing import sha256_bytes

__all__ = [
    "shingles",
    "jaccard",
    "MinHashSignature",
    "minhash_signature",
    "estimated_jaccard",
    "cosine_similarity",
]


def shingles(text: str, k: int = 3) -> set[str]:
    """The set of k-token shingles of *text*."""
    tokens = tokenize(text)
    if len(tokens) < k:
        return {" ".join(tokens)} if tokens else set()
    return {" ".join(tokens[i : i + k]) for i in range(len(tokens) - k + 1)}


def jaccard(a: set[str], b: set[str]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    return intersection / (len(a) + len(b) - intersection)


MinHashSignature = tuple[int, ...]

_MAX_HASH = (1 << 61) - 1


def _hash_family(value: str, index: int) -> int:
    """The index-th hash of a shingle (salted SHA-256, truncated)."""
    digest = sha256_bytes(f"{index}:{value}".encode("utf-8"))
    return int.from_bytes(digest[:8], "big") & _MAX_HASH


def minhash_signature(shingle_set: set[str], n_hashes: int = 64) -> MinHashSignature:
    """MinHash sketch: the minimum of each hash function over the set."""
    if not shingle_set:
        return tuple([_MAX_HASH] * n_hashes)
    signature = []
    for index in range(n_hashes):
        signature.append(min(_hash_family(s, index) for s in shingle_set))
    return tuple(signature)


def estimated_jaccard(a: MinHashSignature, b: MinHashSignature) -> float:
    """Estimate Jaccard similarity from two equal-length signatures."""
    if len(a) != len(b):
        raise ValueError("signatures must have equal length")
    if not a:
        return 0.0
    return sum(1 for x, y in zip(a, b) if x == y) / len(a)


def cosine_similarity(text_a: str, text_b: str) -> float:
    """Cosine similarity over raw term counts."""
    counts_a = Counter(tokenize(text_a))
    counts_b = Counter(tokenize(text_b))
    if not counts_a or not counts_b:
        return 0.0
    dot = sum(counts_a[term] * counts_b[term] for term in counts_a.keys() & counts_b.keys())
    norm_a = math.sqrt(sum(c * c for c in counts_a.values()))
    norm_b = math.sqrt(sum(c * c for c in counts_b.values()))
    return dot / (norm_a * norm_b)
