"""repro — reproduction of "AI Blockchain Platform for Trusting News"
(Shae & Tsai, IEEE ICDCS 2019).

A from-scratch implementation of the paper's platform and every
substrate it depends on:

- :mod:`repro.crypto`  — hashing, Merkle trees, Ed25519 (RFC 8032)
- :mod:`repro.simnet`  — deterministic discrete-event network simulator
- :mod:`repro.chain`   — permissioned blockchain (Fabric-style
  execute-order-validate, PBFT / PoA consensus, smart contracts)
- :mod:`repro.corpus`  — synthetic news corpus with provenance ground
  truth and the paper's mutation taxonomy
- :mod:`repro.ml`      — NumPy text classifiers, stylometric features,
  ensembles, simulated deepfake detection
- :mod:`repro.social`  — agent-based propagation simulator (users,
  bots, cyborgs, journalists)
- :mod:`repro.core`    — the paper's contribution: factual database,
  news supply-chain graph, crowd-sourced ranking, expert mining,
  intervention, prediction, and the TrustingNewsPlatform facade

Quickstart::

    from repro import TrustingNewsPlatform

    platform = TrustingNewsPlatform(seed=7)
    platform.register_participant("reuters", role="publisher")
    platform.create_distribution_platform("reuters", "reuters-wire")
    platform.create_news_room("reuters", "reuters-wire", "politics-desk", "politics")
    article = platform.publish_article(
        "reuters", "reuters-wire", "politics-desk",
        article_id="a-1", text="...", topic="politics",
    )
    print(platform.rank_article("a-1"))
"""

from repro.core.platform import PublishedArticle, TrustingNewsPlatform

__version__ = "1.0.0"

__all__ = ["TrustingNewsPlatform", "PublishedArticle", "__version__"]
