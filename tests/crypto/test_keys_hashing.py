"""KeyPair, addresses, and canonical hashing."""

import random

import pytest

from repro.crypto import KeyPair, address_from_public_key, hash_json, sha256_hex, verify_signature
from repro.crypto.hashing import short_id
from repro.errors import CryptoError


def test_keypair_deterministic_from_rng():
    a = KeyPair.generate(random.Random(5))
    b = KeyPair.generate(random.Random(5))
    assert a.seed == b.seed and a.address == b.address


def test_keypair_sign_verify():
    keypair = KeyPair.generate(random.Random(1))
    signature = keypair.sign(b"payload")
    assert keypair.verify(b"payload", signature)
    assert not keypair.verify(b"other", signature)
    assert verify_signature(keypair.public_key, b"payload", signature)


def test_address_derivation_is_stable():
    keypair = KeyPair.generate(random.Random(2))
    assert keypair.address == address_from_public_key(keypair.public_key)
    assert keypair.address.startswith("acct:")
    assert len(keypair.address) == len("acct:") + 40


def test_distinct_keys_distinct_addresses():
    rng = random.Random(3)
    addresses = {KeyPair.generate(rng).address for _ in range(50)}
    assert len(addresses) == 50


def test_from_seed_rejects_bad_length():
    with pytest.raises(CryptoError):
        KeyPair.from_seed(b"too-short")


def test_hash_json_order_independent():
    assert hash_json({"a": 1, "b": [2, 3]}) == hash_json({"b": [2, 3], "a": 1})


def test_hash_json_value_sensitive():
    assert hash_json({"a": 1}) != hash_json({"a": 2})


def test_sha256_hex_known_vector():
    assert sha256_hex(b"") == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"


def test_short_id():
    digest = sha256_hex(b"x")
    assert short_id(digest) == digest[:12]
    assert short_id(digest, 4) == digest[:4]


def test_generate_requires_explicit_rng():
    """Regression (DET002): generate() used to fall back to
    random.SystemRandom() when called with no rng, so one forgotten
    argument silently produced OS-entropy keys and broke bit-identical
    reruns.  The rng is now mandatory."""
    with pytest.raises((TypeError, CryptoError)):
        KeyPair.generate()  # type: ignore[call-arg]
    with pytest.raises(CryptoError):
        KeyPair.generate(None)  # type: ignore[arg-type]


def test_generate_deterministic_and_optable_out():
    assert (KeyPair.generate(random.Random(5)).address
            == KeyPair.generate(random.Random(5)).address)
    # Real-world callers can still opt into OS entropy, but only by
    # writing it down explicitly at the call site.
    entropic = KeyPair.generate(random.SystemRandom())  # repro: noqa[DET002] the opt-out under test
    assert entropic.address.startswith("acct:")
