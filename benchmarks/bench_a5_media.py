"""A5 — Fig. 1 component 2: fake-multimedia detection in the pipeline.

Workload: 120 articles with attached media; half carry the authentic
registered capture (possibly honestly re-encoded with sensor-level
noise), half carry deepfake-style splices at varying strength.  Reports
the detector's operating characteristics across tamper strength and the
end-to-end effect: articles whose media fails verification rank below
clean ones even when their *text* is identical.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.core import TrustingNewsPlatform
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.ml import DeepfakeDetector, MediaFingerprint, capture_signal, roc_auc, tamper_signal

N_ASSETS = 120
SEGMENTS = (1, 2, 4, 8)


def _detector_sweep():
    rng = np.random.default_rng(1500)
    detector = DeepfakeDetector()
    labels = []
    scores = []
    per_strength: dict[int, list[float]] = {s: [] for s in SEGMENTS}
    honest_scores = []
    for index in range(N_ASSETS):
        signal = capture_signal(rng)
        fingerprint = MediaFingerprint.of(signal)
        if index % 2 == 0:
            suspect = signal + rng.normal(0, 0.01, len(signal))  # honest re-encode
            labels.append(0)
            score = detector.tamper_score(fingerprint, suspect)
            honest_scores.append(score)
        else:
            strength = SEGMENTS[(index // 2) % len(SEGMENTS)]
            suspect, _ = tamper_signal(signal, rng, n_segments=strength)
            labels.append(1)
            score = detector.tamper_score(fingerprint, suspect)
            per_strength[strength].append(score)
        scores.append(score)
    auc = roc_auc(np.array(labels), np.array(scores))
    return auc, honest_scores, per_strength


def _pipeline_effect():
    rng = np.random.default_rng(1501)
    platform = TrustingNewsPlatform(seed=1501)
    gen = CorpusGenerator(seed=1502)
    fact = gen.factual(topic="politics")
    platform.seed_fact("f-m", fact.text, "record", "politics")
    platform.register_participant("wire", role="publisher")
    platform.create_distribution_platform("wire", "wire-m")
    platform.create_news_room("wire", "wire-m", "desk", "politics")
    signal = capture_signal(rng)
    platform.register_media("wire", "clip", signal, "authentic capture")
    text = relay(fact, "wire", 0.0).text
    tampered, _ = tamper_signal(signal, rng, n_segments=6)
    clean = platform.publish_article("wire", "wire-m", "desk", "m-clean", text, "politics",
                                     media=[("clip", signal)])
    faked = platform.publish_article("wire", "wire-m", "desk", "m-faked", text + " update",
                                     "politics", media=[("clip", tampered)])
    clean_rank = platform.rank_article("m-clean")
    fake_rank = platform.rank_article("m-faked")
    return clean_rank.score, fake_rank.score


def test_a5_media_verification(benchmark):
    def _all():
        return _detector_sweep(), _pipeline_effect()

    (auc, honest_scores, per_strength), (clean_score, faked_score) = benchmark.pedantic(
        _all, rounds=1, iterations=1
    )
    rows = [
        f"detector AUC (honest re-encode vs spliced): {auc:.3f}",
        f"honest re-encodes: mean tamper score {np.mean(honest_scores):.4f} "
        f"(max {np.max(honest_scores):.4f})",
    ]
    for strength, scores in per_strength.items():
        rows.append(f"splices x{strength}: mean tamper score {np.mean(scores):.3f}")
    rows.append(
        f"pipeline: identical text, authentic clip -> rank {clean_score:.3f}; "
        f"deepfaked clip -> rank {faked_score:.3f}"
    )
    emit(benchmark, "A5 — deepfake detection in the publish pipeline", rows)
    assert auc > 0.99
    assert faked_score < clean_score
    means = [float(np.mean(scores)) for scores in per_strength.values()]
    assert means == sorted(means)  # more splices, higher score