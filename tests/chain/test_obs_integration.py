"""Observability wired through the live chain: one registry per network,
phase histograms from a real run, metrics surviving crash-restarts."""

import pytest

from repro.chain import BlockchainNetwork, Contract, contract_method
from repro.obs import export_jsonl, read_jsonl, report_from_records
from repro.simnet import FixedLatency


class KVContract(Contract):
    name = "kv"

    @contract_method
    def put(self, ctx, key: str, value: str):
        ctx.put(key, value)
        return True


@pytest.fixture(scope="module", params=["poa", "pbft"])
def ran_network(request):
    network = BlockchainNetwork(
        n_peers=4, consensus=request.param, block_interval=0.25,
        latency=FixedLatency(0.02), seed=42,
    )
    network.install_contract(KVContract)
    client = network.client()
    for i in range(8):
        client.invoke("kv", "put", {"key": f"k{i}", "value": "v"})
    network.run_for(2.0)
    return network


def test_one_registry_shared_by_all_components(ran_network):
    net = ran_network
    assert all(peer.obs is net.obs for peer in net.peers)
    assert all(peer.tracer is net.tracer for peer in net.peers)
    assert all(peer.sync.metrics.registry is net.obs for peer in net.peers)
    assert net.net.stats.registry is net.obs


def test_lifecycle_phases_recorded(ran_network):
    obs = ran_network.obs
    for phase in ("phase.endorse", "phase.gossip", "phase.order_wait",
                  "phase.consensus_round", "phase.commit_latency"):
        assert obs.merged_histogram(phase).count > 0, phase
    # Seed-era experiment APIs still read the same numbers.
    peer = ran_network.peers[0]
    assert peer.metrics.txs_committed_valid == 8
    assert obs.counter("peer.txs_committed_valid", peer=peer.node_id).value == 8
    assert ran_network.net.stats.sent == obs.counter("net.sent").value > 0


def test_endorse_and_commit_spans_traced(ran_network):
    tracer = ran_network.tracer
    assert len(tracer.spans("endorse")) == 8
    commits = tracer.spans("commit")
    assert commits and all(s.finished for s in commits)
    assert all(s.attrs["wall_ms"] >= 0 for s in commits)


def test_e2e_trace_reconstructs_phase_breakdown(ran_network, tmp_path):
    """Acceptance path: export the run, rebuild the report from the file
    alone, and check the per-phase table with commit percentiles."""
    path = tmp_path / "trace.jsonl"
    export_jsonl(path, ran_network.obs, ran_network.tracer, meta={"test": "e2e"})
    report = report_from_records(read_jsonl(path))
    assert "## Per-phase latency" in report
    for phase in ("endorse", "gossip", "order_wait", "consensus_round",
                  "commit_latency"):
        assert f"| {phase} |" in report, phase
    # Percentile columns reconstructed from the pooled JSONL reservoirs
    # must match the live registry's pooled values.
    pooled = ran_network.obs.merged_histogram("phase.commit_latency")
    line = next(l for l in report.splitlines() if l.startswith("| commit_latency"))
    cells = [c.strip() for c in line.split("|")]
    assert int(cells[2]) == pooled.count
    assert abs(float(cells[4]) - pooled.percentile(50)) < 5e-5
    assert abs(float(cells[5]) - pooled.percentile(95)) < 5e-5


def test_peer_metrics_survive_restart():
    network = BlockchainNetwork(
        n_peers=4, consensus="poa", block_interval=0.25,
        latency=FixedLatency(0.02), seed=43,
    )
    network.install_contract(KVContract)
    client = network.client()
    for i in range(4):
        client.invoke("kv", "put", {"key": f"k{i}", "value": "v"})
    peer = network.peers[0]
    committed_before = peer.metrics.txs_committed_valid
    blocks_before = peer.metrics.blocks_committed
    assert committed_before > 0

    peer.crashed = True
    network.run_for(1.0)
    peer.restart()
    network.run_for(2.0)

    # Counters live in the network registry, not in wiped volatile state.
    assert peer.metrics.restarts == 1
    assert peer.metrics.txs_committed_valid >= committed_before
    assert peer.metrics.blocks_committed >= blocks_before
    assert network.obs.counter("peer.restarts", peer=peer.node_id).value == 1


def test_commit_times_bounded_by_reservoir():
    from repro.chain.peer import PeerMetrics

    metrics = PeerMetrics(peer="p0")
    for i in range(3000):
        metrics.record_block_commit(float(i))
    # The seed kept an unbounded list here; the reservoir caps memory
    # while blocks_committed stays exact.
    assert metrics.blocks_committed == 3000
    assert len(metrics.commit_times) <= 1024
    assert metrics.commit_times  # still a usable sample


def test_audit_counters_in_shared_registry(ran_network):
    from repro.chain import InvariantAuditor

    network = BlockchainNetwork(n_peers=4, consensus="poa", seed=44)
    auditor = InvariantAuditor(network)
    network.install_contract(KVContract)
    client = network.client()
    client.invoke("kv", "put", {"key": "a", "value": "v"})
    network.run_for(1.0)
    assert auditor.blocks_audited > 0
    assert network.obs.counter("audit.blocks_audited").value == auditor.blocks_audited
