"""Suppression and baseline semantics: noqa parsing, grandfathering,
fingerprint stability under line drift, and expiry of fixed entries."""

import json
import pathlib

from repro.analysis import analyze_source, apply_baseline, load_baseline, parse_noqa, write_baseline
from repro.analysis.baseline import fingerprint_findings

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


# -- noqa -------------------------------------------------------------------

def test_parse_noqa_forms():
    lines = [
        "x = 1  # repro: noqa",
        "y = 2  # repro: noqa[DET001] reason text here",
        "z = 3  # repro: noqa[DET001, PYF002]",
        "plain = 4",
        "w = 5  # noqa",  # other tools' spelling: not ours, ignored
    ]
    noqa = parse_noqa(lines)
    assert noqa[1] is None
    assert noqa[2] == {"DET001"}
    assert noqa[3] == {"DET001", "PYF002"}
    assert 4 not in noqa and 5 not in noqa


def test_noqa_suppression_in_fixture():
    source = (FIXTURES / "noqa_mixed.py").read_text(encoding="utf-8")
    findings = analyze_source(source, path="fixture/noqa_mixed.py")
    # Only the deliberately mismatched suppression survives.
    assert [f.rule for f in findings] == ["DET001"]
    assert "wrong_rule" in "\n".join(
        line for line in source.splitlines()[findings[0].line - 3:findings[0].line]
    )


def test_noqa_only_covers_its_own_line():
    source = (
        "import random\n"
        "a = random.random()  # repro: noqa[DET001] this line only\n"
        "b = random.random()\n"
    )
    findings = analyze_source(source, path="two_lines.py")
    assert [(f.rule, f.line) for f in findings] == [("DET001", 3)]


# -- baseline ---------------------------------------------------------------

BAD = "import random\nvalue = random.random()\n"


def test_baseline_roundtrip_grandfathers(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    findings = analyze_source(BAD, path="src/mod.py")
    assert len(findings) == 1 and findings[0].severity == "error"

    assert write_baseline(baseline_path, findings) == 1
    entries = load_baseline(baseline_path)
    fresh = analyze_source(BAD, path="src/mod.py")
    expired = apply_baseline(fresh, entries)
    assert expired == []
    assert fresh[0].baselined is True


def test_baseline_survives_line_drift(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, analyze_source(BAD, path="src/mod.py"))
    drifted = "import random\n\n\n# new comment above\nvalue = random.random()\n"
    findings = analyze_source(drifted, path="src/mod.py")
    apply_baseline(findings, load_baseline(baseline_path))
    assert findings[0].baselined is True  # keyed by content, not line number


def test_new_violation_not_grandfathered(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, analyze_source(BAD, path="src/mod.py"))
    grown = BAD + "other = random.randint(0, 7)\n"
    findings = analyze_source(grown, path="src/mod.py")
    apply_baseline(findings, load_baseline(baseline_path))
    flags = {f.context: f.baselined for f in findings}
    assert flags["value = random.random()"] is True
    assert flags["other = random.randint(0, 7)"] is False


def test_fixed_entry_expires(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, analyze_source(BAD, path="src/mod.py"))
    fixed = "import random\nvalue = random.Random(7).random()\n"
    findings = analyze_source(fixed, path="src/mod.py")
    expired = apply_baseline(findings, load_baseline(baseline_path))
    assert findings == []
    assert len(expired) == 1  # stale fingerprint surfaced for regeneration


def test_duplicate_findings_on_one_line_get_distinct_fingerprints():
    two = analyze_source(
        "import random\npair = (random.random(), random.random())\n",
        path="src/mod.py",
    )
    assert len(two) == 2
    assert len(fingerprint_findings(two)) == 2


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_version_mismatch_rejected(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "findings": []}))
    try:
        load_baseline(bad)
    except ValueError as exc:
        assert "version" in str(exc)
    else:
        raise AssertionError("expected ValueError for version mismatch")


def test_shipped_baseline_is_empty_for_error_rules():
    # The acceptance criterion: the repo ships with nothing grandfathered.
    repo_baseline = pathlib.Path(__file__).parents[2] / "analysis_baseline.json"
    data = json.loads(repo_baseline.read_text(encoding="utf-8"))
    assert data["version"] == 1
    assert [e for e in data["findings"] if e.get("severity") == "error"] == []
