"""A4 — §VII: personalized intervention vs one-size-fits-all.

"There is no single size fit all solution for general population to the
fake news intervention mechanisms."  Workload: 900 exposed agents in
three communities with the asymmetric-updater mix the paper describes
(open / evidence-sensitive / entrenched), swept over the entrenched
fraction.  Compares correction acceptance of

- a blanket broadcast (one messenger team from one community), and
- personalized outreach (in-group messengers recruited per community,
  entrenched individuals approached only in-group).

The gap should *widen* as the population gets more entrenched — the
regime where personalization matters most.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.core import PersonalizedCampaign, assign_receptivity
from repro.social import make_population

N_AGENTS = 900
ENTRENCHED_LEVELS = (0.1, 0.3, 0.5, 0.7)


def _run_level(entrenched_fraction: float) -> tuple[float, float]:
    open_fraction = (1 - entrenched_fraction) * 0.45
    evidence_fraction = (1 - entrenched_fraction) * 0.55
    agents = make_population(N_AGENTS, random.Random(1400))
    for index, agent in enumerate(agents):
        agent.community = index % 3
    receptivity = assign_receptivity(
        agents, random.Random(1401),
        open_fraction=open_fraction, evidence_fraction=evidence_fraction,
    )
    campaign = PersonalizedCampaign(evidence_strength=0.8)
    blanket = campaign.run(agents, receptivity, messenger_communities={0},
                           rng=random.Random(1402), personalize=False)
    personalized = campaign.run(agents, receptivity, messenger_communities={0},
                                rng=random.Random(1402), personalize=True)
    return blanket, personalized


def _sweep():
    return {level: _run_level(level) for level in ENTRENCHED_LEVELS}


def test_a4_personalized_intervention(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [f"{'entrenched':>10} {'blanket':>9} {'personalized':>13} {'lift':>7}"]
    for level, (blanket, personalized) in results.items():
        lift = personalized / max(1e-9, blanket)
        rows.append(f"{level:>10.0%} {blanket:>9.2f} {personalized:>13.2f} {lift:>6.2f}x")
    emit(benchmark, "A4 — blanket vs personalized correction acceptance", rows)
    for blanket, personalized in results.values():
        assert personalized > blanket
    lifts = [p / max(1e-9, b) for b, p in results.values()]
    assert lifts[-1] > lifts[0]  # personalization matters more when entrenched
