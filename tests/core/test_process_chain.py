"""Fixed-workflow supply chain (Fig. 3 baseline)."""

import pytest

from repro.chain import LocalChain
from repro.core.process_chain import (
    PROCESS_STAGES,
    ProcessSupplyChainContract,
    graph_shape,
    process_chain_graph,
)
from repro.errors import ContractError


@pytest.fixture
def chain():
    c = LocalChain(seed=9)
    c.install_contract(ProcessSupplyChainContract())
    return c


def test_register_and_advance_full_workflow(chain):
    actor = chain.new_account()
    chain.invoke(actor, "process-chain", "register_batch",
                 {"batch_id": "b-1", "description": "lettuce"})
    for _ in range(len(PROCESS_STAGES) - 1):
        chain.invoke(actor, "process-chain", "advance", {"batch_id": "b-1"})
    record = chain.query("process-chain", "get_batch", {"batch_id": "b-1"})
    assert record["stage_index"] == len(PROCESS_STAGES) - 1
    assert [h["stage"] for h in record["history"]] == list(PROCESS_STAGES)


def test_cannot_advance_past_end(chain):
    actor = chain.new_account()
    chain.invoke(actor, "process-chain", "register_batch", {"batch_id": "b-1", "description": "x"})
    for _ in range(len(PROCESS_STAGES) - 1):
        chain.invoke(actor, "process-chain", "advance", {"batch_id": "b-1"})
    with pytest.raises(ContractError, match="completed"):
        chain.invoke(actor, "process-chain", "advance", {"batch_id": "b-1"})


def test_duplicate_batch_rejected(chain):
    actor = chain.new_account()
    chain.invoke(actor, "process-chain", "register_batch", {"batch_id": "b-1", "description": "x"})
    with pytest.raises(ContractError, match="already registered"):
        chain.invoke(actor, "process-chain", "register_batch", {"batch_id": "b-1", "description": "y"})


def test_unknown_batch(chain):
    actor = chain.new_account()
    with pytest.raises(ContractError, match="no batch"):
        chain.invoke(actor, "process-chain", "advance", {"batch_id": "ghost"})


def test_graph_is_linear_per_batch(chain):
    actor = chain.new_account()
    for batch in ("b-1", "b-2"):
        chain.invoke(actor, "process-chain", "register_batch",
                     {"batch_id": batch, "description": "x"})
        for _ in range(len(PROCESS_STAGES) - 1):
            chain.invoke(actor, "process-chain", "advance", {"batch_id": batch})
    graph = process_chain_graph(chain.ledger)
    shape = graph_shape(graph)
    assert shape.nodes == 2 * len(PROCESS_STAGES)
    assert shape.edges == 2 * (len(PROCESS_STAGES) - 1)
    assert shape.max_fanout == 1  # strictly linear: the Fig. 3 signature
    assert shape.branching_nodes == 0
    assert shape.max_depth == len(PROCESS_STAGES) - 1


def test_graph_shape_empty():
    import networkx as nx

    shape = graph_shape(nx.DiGraph())
    assert shape.nodes == 0 and shape.edges == 0
