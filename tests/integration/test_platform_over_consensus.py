"""The full TrustingNewsPlatform over the distributed chain.

Identical platform code, but every transaction is endorsed, ordered by
consensus, and MVCC-validated on four peers — the deployment §IV
describes.  Kept to one scenario because each invocation pays simulated
consensus latency.
"""

import pytest

from repro.chain import BlockchainNetwork, NetworkedChain
from repro.core import TrustingNewsPlatform
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.simnet import FixedLatency


@pytest.fixture(scope="module", params=["poa", "pbft"])
def networked_platform(request):
    network = BlockchainNetwork(
        n_peers=4, consensus=request.param, block_interval=0.2,
        latency=FixedLatency(0.01), seed=123,
    )
    chain = NetworkedChain(network)
    platform = TrustingNewsPlatform(seed=123, chain=chain)
    return platform, network


def test_full_pipeline_over_consensus(networked_platform):
    platform, network = networked_platform
    gen = CorpusGenerator(seed=124)
    fact = gen.factual(topic="economy")
    platform.seed_fact("f-net", fact.text, "stats-office", "economy")
    platform.register_participant("wire", role="publisher")
    platform.create_distribution_platform("wire", "net-wire")
    platform.create_news_room("wire", "net-wire", "macro", "economy")
    report = relay(fact, "wire", 1.0)
    published = platform.publish_article(
        "wire", "net-wire", "macro", "net-a1", report.text, "economy"
    )
    assert published.fact_roots == ("f-net",)

    fake = gen.insertion_fake(report, "wire", 2.0, n_insertions=4)
    platform.publish_article("wire", "net-wire", "macro", "net-a2", fake.text, "economy")

    for index in range(3):
        platform.register_participant(f"net-checker-{index}", role="checker")
        platform.cast_vote(f"net-checker-{index}", "net-a1", True)
        platform.cast_vote(f"net-checker-{index}", "net-a2", False)

    factual_rank = platform.rank_article("net-a1")
    fake_rank = platform.rank_article("net-a2")
    assert factual_rank.score > fake_rank.score

    trace = platform.trace("net-a2")
    assert trace.traceable and trace.root == "fact:f-net"

    # Consensus-level health: all peers converged, chains audit clean.
    network.run_for(5)
    network.assert_convergence()
    for peer in network.peers:
        assert peer.ledger.verify_chain()
    heights = {p.ledger.height for p in network.peers}
    assert len(heights) == 1
