"""Quickstart: publish, rank, and trace news on the trusting-news platform.

Run:  python examples/quickstart.py
"""

from repro import TrustingNewsPlatform
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay


def main() -> None:
    platform = TrustingNewsPlatform(seed=7)
    gen = CorpusGenerator(seed=7)

    # 1. Bootstrap the factual database from an "official public record".
    fact = gen.factual(topic="politics")
    platform.seed_fact("speech-2026-001", fact.text,
                       source="congressional-record", topic="politics")
    print("seeded fact: speech-2026-001")

    # 2. A verified publisher founds a distribution platform with a news room.
    platform.register_participant("reuters", role="publisher")
    platform.create_distribution_platform("reuters", "reuters-wire")
    platform.create_news_room("reuters", "reuters-wire", "politics-desk", "politics")

    # 3. An authenticated journalist publishes a faithful report.
    platform.register_participant("jane", role="journalist")
    platform.authenticate_journalist("reuters-wire", "jane")
    report = relay(fact, "jane", 1.0)
    published = platform.publish_article(
        "jane", "reuters-wire", "politics-desk",
        article_id="report-1", text=report.text, topic="politics",
    )
    print(f"published report-1  fact_roots={published.fact_roots} "
          f"modification={published.modification_degree:.3f}")

    # 4. A troll publishes a sensationalized mutation of the report.
    platform.register_participant("troll", role="journalist")
    platform.authenticate_journalist("reuters-wire", "troll")
    fake = gen.insertion_fake(report, "troll", 2.0, n_insertions=4)
    platform.publish_article(
        "troll", "reuters-wire", "politics-desk",
        article_id="fake-1", text=fake.text, topic="politics",
    )

    # 5. Fact checkers vote on-chain.
    for index in range(5):
        platform.register_participant(f"checker-{index}", role="checker")
        platform.cast_vote(f"checker-{index}", "report-1", verdict=True)
        platform.cast_vote(f"checker-{index}", "fake-1", verdict=index == 0)

    # 6. Rank both; the verdicts (and their components) land on the ledger.
    for article_id in ("report-1", "fake-1"):
        ranked = platform.rank_article(article_id)
        print(f"rank {article_id:9} score={ranked.score:.3f} "
              f"(provenance={ranked.provenance_score:.3f} crowd={ranked.crowd_score:.2f})")

    # 7. Trace the fake back to the factual database and hold its author
    #    accountable.
    trace = platform.trace("fake-1")
    print(f"trace fake-1 -> {trace.root} in {trace.hops} hops, "
          f"accumulated modification {trace.cumulative_modification:.3f}")
    culprit = platform.accountable_author("fake-1")
    print(f"accountable author: {culprit} (troll is {platform.address_of('troll')})")

    # 8. The faithful report clears the promotion bar and joins the
    #    factual database itself.
    platform.promote_to_factual("report-1")
    print("facts now:", platform.facts())
    print("platform stats:", platform.stats())


if __name__ == "__main__":
    main()
