"""A validating peer: mempool + ledger + world state + contracts + consensus.

The peer implements Fabric's *validate* phase at commit time: every
transaction in a decided block is checked for (1) client signature,
(2) endorsement policy, (3) MVCC read-set freshness; only then is its
write set applied.  All peers run the same deterministic checks over the
same block sequence, so their world states stay identical — asserted by
``BlockchainNetwork.assert_convergence`` in tests.

Beyond consensus, each peer owns a :class:`~repro.chain.sync.SyncManager`
that detects when the peer has fallen behind the network head and
fetches, verifies, and applies the missing blocks — the recovery path
for crash windows, partitions, and message loss.  :meth:`Peer.restart`
models a real process restart: volatile state (mempool, open consensus
rounds, timers) is wiped and the world state is rebuilt from the durable
ledger via :meth:`~repro.chain.ledger.Ledger.replay_state`.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.chain.consensus.base import ConsensusEngine
from repro.chain.consensus.sharded import ShardedExecutor
from repro.chain.contracts import ContractRegistry, EndorsementPolicy, check_endorsements
from repro.chain.contracts.runtime import ExecutionResult
from repro.chain.block import Block
from repro.chain.index import ChainIndex
from repro.chain.ledger import Ledger
from repro.chain.mempool import Mempool
from repro.chain.state import WorldState
from repro.chain.store import BlockStore, MemoryStore
from repro.chain.sync import SyncManager
from repro.chain.transaction import (
    Endorsement,
    Transaction,
    TxReceipt,
    rwset_digest,
    signature_items,
)
from repro.crypto.batch import batch_verification_enabled, verify_many
from repro.crypto.keys import KeyPair
from repro.errors import EndorsementError, InvalidTransactionError
from repro.obs import MetricsRegistry, ObsView, Tracer, metric_attr
from repro.simnet.network import Message, NetworkNode

__all__ = ["Admission", "Peer", "PeerMetrics"]

_KIND_TX = "tx-gossip"
_KIND_SYNC_PREFIX = "sync-"


class Admission(enum.Enum):
    """Outcome of submitting a transaction to one peer.

    The distinction matters for retry logic: a ``DUPLICATE`` or
    ``COMMITTED`` transaction is *safe* (pending or final somewhere — a
    gossip echo, not a failure), while ``FULL``, ``CRASHED``, and
    ``INVALID`` mean this peer genuinely did not take it and another
    entry point should be tried.  The seed code conflated all of these
    into one ``False``, so a duplicate submission could walk every peer
    and then raise for a transaction that was happily pending.
    """

    ADMITTED = "admitted"    #: entered this peer's mempool just now
    DUPLICATE = "duplicate"  #: already pending in this peer's mempool
    COMMITTED = "committed"  #: already committed on this peer's chain
    FULL = "full"            #: mempool at capacity (back-pressure)
    INVALID = "invalid"      #: failed structural/signature validation
    CRASHED = "crashed"      #: peer is down; a real RPC would not connect

    def __bool__(self) -> bool:
        # Truthiness preserves the seed API: True iff newly admitted.
        return self is Admission.ADMITTED

    @property
    def accepted(self) -> bool:
        """The transaction is pending or final — no retry needed."""
        return self in (Admission.ADMITTED, Admission.DUPLICATE, Admission.COMMITTED)


class PeerMetrics(ObsView):
    """Per-peer counters the experiments read.

    The seed-era attribute API (``metrics.txs_committed_valid += 1``) is
    preserved, but every value now lives in a shared
    :class:`~repro.obs.registry.MetricsRegistry` under a
    ``peer=<node_id>`` label, so the exporters and ``repro-news report``
    see the same numbers the experiments do.  ``commit_times`` — an
    unbounded list in the seed, a leak on long chaos runs — is now a
    bounded reservoir (:class:`~repro.obs.registry.Histogram`).
    """

    txs_committed_valid = metric_attr("peer.txs_committed_valid")
    txs_committed_invalid = metric_attr("peer.txs_committed_invalid")
    mvcc_conflicts = metric_attr("peer.mvcc_conflicts")
    endorsement_failures = metric_attr("peer.endorsement_failures")
    signature_failures = metric_attr("peer.signature_failures")
    commit_latency_total = metric_attr("peer.commit_latency_total")
    commit_latency_count = metric_attr("peer.commit_latency_count")
    blocks_committed = metric_attr("peer.blocks_committed")
    restarts = metric_attr("peer.restarts")

    def __init__(self, registry: MetricsRegistry | None = None, peer: str = ""):
        super().__init__(registry, peer=peer)
        self._commit_times = self.registry.histogram("peer.commit_time", **self.labels)
        self._commit_latency = self.registry.histogram("phase.commit_latency", **self.labels)

    @property
    def commit_times(self) -> list[float]:
        """Bounded sample of block-commit timestamps (observation order)."""
        return self._commit_times.values

    def record_block_commit(self, now: float) -> None:
        self.blocks_committed += 1
        self._commit_times.observe(now)

    def record_tx_commit_latency(self, latency: float) -> None:
        self.commit_latency_total += latency
        self.commit_latency_count += 1
        self._commit_latency.observe(latency)

    @property
    def mean_commit_latency(self) -> float:
        if not self.commit_latency_count:
            return 0.0
        return self.commit_latency_total / self.commit_latency_count


class Peer(NetworkNode):
    """One blockchain node on the simulated network."""

    def __init__(
        self,
        node_id: str,
        keypair: KeyPair,
        registry: ContractRegistry,
        engine: ConsensusEngine,
        default_policy: EndorsementPolicy | None = None,
        sharded_executor: ShardedExecutor | None = None,
        byzantine: bool = False,
        obs: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        store: BlockStore | None = None,
    ):
        super().__init__(node_id)
        self.keypair = keypair
        self.registry = registry
        self.engine = engine
        #: Storage backend; :class:`~repro.chain.store.MemoryStore` keeps
        #: the seed behaviour, :class:`~repro.chain.store.DurableStore`
        #: write-ahead logs every commit and makes restart a *recovery*.
        self.store: BlockStore = store if store is not None else MemoryStore()
        self.ledger = Ledger()
        #: Explorer-grade secondary index, fed incrementally at commit and
        #: rebuilt from the recovered ledger on restart — explorer queries
        #: against this peer answer from materialized views, not scans.
        self.index = ChainIndex()
        self.state = WorldState()
        self.mempool = Mempool()
        self.receipts: dict[str, TxReceipt] = {}
        self.policies: dict[str, EndorsementPolicy] = {}
        self.default_policy = default_policy or EndorsementPolicy(required=1)
        self.sharded_executor = sharded_executor
        self.byzantine = byzantine
        #: Shared (network-wide) metrics registry; private when the peer
        #: is constructed standalone, as unit tests do.
        self.obs = obs if obs is not None else MetricsRegistry()
        #: Lifecycle tracer; defaults to one on this peer's clock.  The
        #: sim clock is only reachable once the peer joins a network, so
        #: the fallback clock reads it lazily (0.0 before attachment).
        self.tracer = tracer if tracer is not None else Tracer(
            clock=lambda: self.network.sim.now if self.network is not None else 0.0,
            registry=self.obs,
        )
        self.metrics = PeerMetrics(registry=self.obs, peer=node_id)
        self.store.attach(self.obs, node_id)
        self.sync = SyncManager(self)
        #: Called as ``listener(peer, block)`` after every committed
        #: block — the invariant auditor's hook point.
        self.commit_listeners: list[Callable[["Peer", Block], None]] = []
        #: Called as ``listener(peer, wiped_tx_ids)`` when a crash-restart
        #: wipes volatile state, so auditors can excuse the injected loss.
        self.restart_listeners: list[Callable[["Peer", set[str]], None]] = []
        engine.attach(self)

    @property
    def disk(self):
        """The store's simulated disk, if the backend has one — the hook
        :class:`~repro.simnet.failure.FailureSchedule` disk faults target
        (duck-typed: the simnet layer never imports chain classes)."""
        return getattr(self.store, "disk", None)

    # -- configuration --------------------------------------------------------

    def set_policy(self, contract: str, policy: EndorsementPolicy) -> None:
        self.policies[contract] = policy

    def policy_for(self, contract: str) -> EndorsementPolicy:
        return self.policies.get(contract, self.default_policy)

    # -- endorsement (executed on behalf of clients) ----------------------------

    def endorse(self, tx: Transaction) -> tuple[Endorsement, ExecutionResult] | None:
        """Simulate *tx* against current state and sign the rw-set.

        Returns ``(endorsement, execution_result)``, or ``None`` if this
        peer is crashed or not eligible under the contract's policy.
        Failed executions still come back (with ``success=False`` and no
        endorsement use) so clients can surface the contract error.
        """
        if self.crashed or not self.policy_for(tx.contract).eligible(self.node_id):
            return None
        result = self.registry.execute(
            self.state,
            tx.contract,
            tx.method,
            tx.args,
            caller=tx.sender,
            timestamp=tx.timestamp,
            tx_id=tx.tx_id,
        )
        digest = rwset_digest(result.read_set, result.write_set)
        endorsement = Endorsement.create(self.keypair, self.node_id, tx.tx_id, digest)
        return endorsement, result

    # -- transaction admission ---------------------------------------------------

    def submit(self, tx: Transaction, gossip: bool = True) -> Admission:
        """Admit an endorsed transaction into the mempool (and gossip it).

        The returned :class:`Admission` is truthy iff the transaction
        was newly admitted, so seed-era ``if peer.submit(tx):`` call
        sites keep their meaning.
        """
        if self.crashed:
            return Admission.CRASHED
        if batch_verification_enabled():
            # Prewarm the verify cache with the client + endorsement
            # signatures in one batch; validate_structure and the later
            # commit-time endorsement checks then hit the cache.
            verify_many(signature_items([tx]), registry=self.obs, peer=self.node_id)
        try:
            tx.validate_structure()
        except InvalidTransactionError:
            self.metrics.signature_failures += 1
            return Admission.INVALID
        if tx.tx_id in self.ledger:
            # Already committed here (a gossip echo arriving after
            # ``mempool.remove``).  Re-admitting would let the copy land
            # in a later block, fail MVCC, and clobber the original valid
            # receipt.
            return Admission.COMMITTED
        if tx.tx_id in self.mempool:
            return Admission.DUPLICATE
        if not self.mempool.add(tx):
            return Admission.FULL
        if self.network is not None:
            # Submit/gossip phase: creation → admission into *this*
            # mempool.  ~0 at the entry peer (endorsement is synchronous),
            # one network hop at gossip recipients.
            self.obs.histogram("phase.gossip", peer=self.node_id).observe(
                max(0.0, self.sim.now - tx.timestamp)
            )
        self.engine.on_transaction_admitted()
        if gossip:
            self.broadcast(_KIND_TX, tx)
        return Admission.ADMITTED

    # -- commit path ----------------------------------------------------------------

    def commit_block(self, block: Block) -> None:
        """Validate and apply a decided block (the Fabric validate phase)."""
        span = self.tracer.start(
            "commit", peer=self.node_id, height=block.height, n_txs=len(block)
        )
        # Consensus + propagation cost for this peer: proposal timestamp
        # to local commit (0 for a PoA leader committing its own block).
        self.obs.histogram("phase.consensus_round", peer=self.node_id).observe(
            max(0.0, self.sim.now - block.timestamp)
        )
        if batch_verification_enabled() and block.transactions:
            # One batched pass over every signature in the block (client
            # + endorsements); the per-transaction validation below is
            # unchanged and hits the warmed cache, so verdicts — and the
            # order failures are attributed in — are identical.
            verify_many(
                signature_items(block.transactions),
                registry=self.obs,
                peer=self.node_id,
            )
        validity: list[bool] = []
        errors: list[str | None] = []
        valid_txs: list[Transaction] = []
        for tx in block.transactions:
            verdict, error = self._validate_transaction(tx)
            validity.append(verdict)
            errors.append(error)
            receipt = TxReceipt(
                tx_id=tx.tx_id,
                block_height=block.height,
                success=verdict,
                return_value=tx.return_value if verdict else None,
                events=tx.events if verdict else (),
                error=error,
            )
            existing = self.receipts.get(tx.tx_id)
            if existing is None or verdict or not existing.success:
                # Never downgrade: if a duplicate copy of an already
                # committed-valid tx lands in a later block, its MVCC
                # failure there must not overwrite the valid receipt.
                self.receipts[tx.tx_id] = receipt
            if verdict:
                self.state.apply_write_set(tx.write_set)
                valid_txs.append(tx)
                self.metrics.txs_committed_valid += 1
                self.metrics.record_tx_commit_latency(self.sim.now - tx.timestamp)
            else:
                self.metrics.txs_committed_invalid += 1
        self.ledger.append(block, validity)
        self.index.on_commit(block, validity)
        # Write-ahead durability: the record (block + verdicts + error
        # strings + consensus proof) is logged and fsync'd-in-model before
        # this commit is acknowledged durable; recovery re-verifies the
        # proof before trusting the record.  PBFT records its certificate
        # before calling commit_block, so sync_proof is available here.
        self.store.on_commit(
            block, validity, proof=self.engine.sync_proof(block.height), errors=errors
        )
        self.mempool.remove([tx.tx_id for tx in block.transactions])
        self.metrics.record_block_commit(self.sim.now)
        self.store.maybe_snapshot(self.ledger, self.state, self.receipts)
        if self.sharded_executor is not None and valid_txs:
            self.sharded_executor.plan_block(valid_txs)
        for listener in self.commit_listeners:
            listener(self, block)
        self.tracer.finish(span, valid=len(valid_txs), invalid=len(block) - len(valid_txs))
        # After the listeners: a pipelined engine may apply buffered
        # decided blocks here, and each re-enters commit_block — the
        # auditor must have seen *this* block first.
        self.engine.on_block_applied(block)

    def _validate_transaction(self, tx: Transaction) -> tuple[bool, str | None]:
        try:
            tx.validate_structure()
        except InvalidTransactionError as exc:
            self.metrics.signature_failures += 1
            return False, str(exc)
        try:
            check_endorsements(tx, self.policy_for(tx.contract))
        except EndorsementError as exc:
            self.metrics.endorsement_failures += 1
            return False, str(exc)
        if not self.state.validate_read_set(tx.read_set):
            self.metrics.mvcc_conflicts += 1
            return False, "MVCC conflict: stale read set"
        return True, None

    # -- crash recovery -----------------------------------------------------------

    def restart(self) -> set[str]:
        """Simulate a process restart: durable state survives, the rest dies.

        What "durable" means depends on the storage backend.  With the
        in-memory store (seed behaviour) the ledger object is axiomatically
        kept and the world state is rebuilt by full
        :meth:`~repro.chain.ledger.Ledger.replay_state` from genesis.
        With a :class:`~repro.chain.store.DurableStore`, restart is
        *recovery*: the backend rebuilds ledger, state, and receipts from
        its verified snapshot + log tail — and anything it had to give up
        (torn tail, corrupt snapshot) is reported, counted, and later
        re-fetched from the network by the sync manager.  The mempool,
        the engine's open rounds and timers, and in-flight fetches are
        wiped either way — exactly what a real crash loses.  Returns the
        wiped pending tx ids so fault injectors can report (and auditors
        can excuse) the loss.
        """
        wiped: set[str] = {tx.tx_id for tx in self.mempool.snapshot()}
        pending = getattr(self.engine, "pending_txs", None)
        if pending is not None:
            wiped |= pending()
        wiped = {tx_id for tx_id in wiped if tx_id not in self.ledger}
        self.crashed = False
        self.mempool = Mempool()
        recovered = self.store.recover(engine=self.engine)
        report = None
        if recovered is None:
            self.state = self.ledger.replay_state()
            self.receipts = self._rebuild_receipts()
        else:
            report = recovered.report
            self.ledger = recovered.ledger
            self.state = recovered.state
            self.receipts = recovered.receipts
        # The in-memory index is volatile: rebuild it from whatever chain
        # survived (recovery may have truncated below the pre-crash tip).
        self.index.reindex(self.ledger)
        self.engine.on_restart()
        if recovered is not None:
            self._reseed_engine_proofs(recovered.proofs)
        self.sync.on_restart(report=report)
        self.metrics.restarts += 1
        for listener in self.restart_listeners:
            listener(self, wiped)
        return wiped

    def _reseed_engine_proofs(self, proofs: dict[int, "object"]) -> None:
        """Re-seed the engine's certificate map from recovered proofs and
        drop certificates above the recovered head (their blocks did not
        survive the disk; keeping them would let sync serve proofs for
        blocks this peer no longer holds)."""
        head = self.ledger.height
        for height in sorted(proofs):
            proof = proofs[height]
            if proof is not None and height <= head:
                self.engine.on_synced_block(self.ledger.block(height), proof)
        certificates = getattr(self.engine, "commit_certificates", None)
        if certificates is not None:
            for height in [h for h in certificates if h > head]:
                del certificates[height]
                signatures = getattr(self.engine, "commit_signatures", None)
                if signatures is not None:
                    signatures.pop(height, None)

    def _rebuild_receipts(self) -> dict[str, TxReceipt]:
        """Receipts are derivable from the chain: validity verdicts and
        block heights are recorded there (per-tx error strings are not,
        so rebuilt failure receipts carry a generic marker)."""
        receipts: dict[str, TxReceipt] = {}
        for committed in self.ledger.transactions(valid_only=False):
            tx = committed.transaction
            existing = receipts.get(tx.tx_id)
            if existing is not None and existing.success:
                continue  # same no-downgrade rule as the live commit path
            receipts[tx.tx_id] = TxReceipt(
                tx_id=tx.tx_id,
                block_height=committed.block_height,
                success=committed.valid,
                return_value=tx.return_value if committed.valid else None,
                events=tx.events if committed.valid else (),
                error=None if committed.valid else "invalid (rebuilt from ledger)",
            )
        return receipts

    # -- network ------------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == _KIND_TX:
            self.submit(message.payload, gossip=False)
            return
        if message.kind.startswith(_KIND_SYNC_PREFIX):
            self.sync.on_message(message)
            return
        self.engine.on_message(message)
