"""Unit tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import Histogram


def test_counter_identity_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("txs", peer="p0")
    b = registry.counter("txs", peer="p0")
    c = registry.counter("txs", peer="p1")
    assert a is b
    assert a is not c
    a.inc()
    a.inc(2)
    assert a.value == 3
    assert c.value == 0
    assert registry.total("txs") == 3
    c.inc(4)
    assert registry.total("txs") == 7


def test_gauge_goes_down():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.inc(5)
    gauge.dec(2)
    assert gauge.value == 3
    assert gauge.as_record()["kind"] == "gauge"


def test_histogram_exact_stats_bounded_reservoir():
    hist = Histogram("h", {}, capacity=64)
    for i in range(1000):
        hist.observe(float(i))
    # Exact aggregates are unaffected by the reservoir bound.
    assert hist.count == 1000
    assert hist.total == sum(range(1000))
    assert hist.min == 0.0
    assert hist.max == 999.0
    # The reservoir itself never exceeds capacity.
    assert len(hist.values) == 64
    # Percentiles come from a uniform sample: loose sanity bounds.
    assert 300 < hist.percentile(50) < 700
    assert hist.percentile(99) > hist.percentile(50)


def test_histogram_percentiles_exact_under_capacity():
    hist = Histogram("h", {}, capacity=1024)
    for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
        hist.observe(v)
    assert hist.percentile(0) == 1.0
    assert hist.percentile(50) == 3.0
    assert hist.percentile(100) == 5.0
    summary = hist.summary()
    assert summary["count"] == 5
    assert summary["mean"] == 3.0
    assert summary["p50"] == 3.0


def test_histogram_deterministic_reservoir():
    """Same name/labels + same observations → identical reservoir."""
    runs = []
    for _ in range(2):
        hist = Histogram("det", {"peer": "p0"}, capacity=16)
        for i in range(500):
            hist.observe(float(i * 7 % 101))
        runs.append(hist.values)
    assert runs[0] == runs[1]


def test_histogram_capacity_validation():
    with pytest.raises(ValueError):
        Histogram("h", {}, capacity=0)


def test_merge_histograms_pools_counts_and_extremes():
    registry = MetricsRegistry()
    a = registry.histogram("lat", peer="p0")
    b = registry.histogram("lat", peer="p1")
    for v in (1.0, 2.0):
        a.observe(v)
    for v in (10.0, 20.0):
        b.observe(v)
    merged = registry.merged_histogram("lat")
    assert merged.count == 4
    assert merged.total == 33.0
    assert merged.min == 1.0
    assert merged.max == 20.0
    assert sorted(merged.values) == [1.0, 2.0, 10.0, 20.0]


def test_collect_is_json_ready_and_stable():
    registry = MetricsRegistry()
    registry.counter("c", peer="p1").inc()
    registry.histogram("h").observe(1.5)
    registry.gauge("g").set(7)
    records = registry.collect()
    assert len(records) == len(registry) == 3
    kinds = {r["kind"] for r in records}
    assert kinds == {"counter", "gauge", "histogram"}
    assert records == registry.collect()  # stable ordering
    assert registry.names() == ["c", "g", "h"]
