"""Sharded parallel execution planning (ICDCS'18 substrate)."""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.consensus.sharded import ShardedExecutor, _shard_of
from repro.chain.transaction import Transaction
from repro.crypto import KeyPair


def _tx(nonce, reads=(), writes=()):
    tx = Transaction.create(KeyPair.generate(random.Random(nonce)), "c", "m", {}, nonce=nonce)
    return tx.with_execution(
        read_set={k: 1 for k in reads},
        write_set={k: "v" for k in writes},
        events=(),
        return_value=None,
        endorsements=(),
    )


def test_disjoint_txs_parallelize():
    executor = ShardedExecutor(n_shards=4)
    txs = [_tx(i, writes=(f"key-{i}",)) for i in range(16)]
    schedule = executor.plan_block(txs)
    assert schedule.cross_shard_count == 0
    assert schedule.local_count == 16
    assert schedule.parallel_makespan < schedule.sequential_makespan
    assert schedule.speedup > 1.5


def test_single_shard_no_speedup():
    executor = ShardedExecutor(n_shards=1)
    txs = [_tx(i, writes=(f"key-{i}",)) for i in range(8)]
    schedule = executor.plan_block(txs)
    assert schedule.speedup == pytest.approx(1.0)


def test_cross_shard_txs_serialize():
    executor = ShardedExecutor(n_shards=4)
    # Each tx touches many keys -> almost surely spans shards.
    txs = [_tx(i, reads=tuple(f"r{i}-{j}" for j in range(6)), writes=(f"w{i}",)) for i in range(6)]
    schedule = executor.plan_block(txs)
    assert schedule.cross_shard_count > 0
    assert schedule.cross_shard_gas > 0


def test_empty_rwset_goes_to_shard_zero():
    executor = ShardedExecutor(n_shards=4)
    schedule = executor.plan_block([_tx(1)])
    assert schedule.shard_loads[0] > 0
    assert schedule.local_count == 1


def test_cumulative_accounting():
    executor = ShardedExecutor(n_shards=2)
    executor.plan_block([_tx(i, writes=(f"k{i}",)) for i in range(4)])
    executor.plan_block([_tx(i + 10, writes=(f"k{i+10}",)) for i in range(4)])
    assert executor.blocks_planned == 2
    assert executor.total_sequential_gas >= executor.total_parallel_gas
    assert executor.cumulative_speedup >= 1.0


def test_more_shards_never_slower():
    txs = [_tx(i, writes=(f"key-{i}",)) for i in range(32)]
    makespans = []
    for shards in (1, 2, 4, 8):
        schedule = ShardedExecutor(n_shards=shards).plan_block(list(txs))
        makespans.append(schedule.parallel_makespan)
    assert makespans == sorted(makespans, reverse=True)


def test_invalid_shard_count():
    with pytest.raises(ValueError):
        ShardedExecutor(n_shards=0)


def test_shard_of_stable_and_in_range():
    """Assignment is a pure function of (key, n_shards) — repeated calls
    and repeated planner instances must agree, or cross-block accounting
    would silently drift."""
    rng = random.Random(7)
    keys = ["".join(rng.choices(string.ascii_lowercase, k=12)) for _ in range(200)]
    for n_shards in (1, 2, 4, 8, 16):
        first = [_shard_of(k, n_shards) for k in keys]
        second = [_shard_of(k, n_shards) for k in keys]
        assert first == second
        assert all(0 <= s < n_shards for s in first)
    # With enough keys, every shard receives some traffic.
    assert len({_shard_of(k, 4) for k in keys}) == 4


def test_cross_shard_classification_matches_key_spans():
    """A tx is cross-shard exactly when its read+write keys map to more
    than one shard."""
    executor = ShardedExecutor(n_shards=4)
    rng = random.Random(11)
    txs = []
    expected_cross = 0
    for i in range(20):
        keys = ["".join(rng.choices(string.ascii_lowercase, k=8))
                for _ in range(rng.randint(1, 4))]
        txs.append(_tx(i, reads=tuple(keys[:-1]), writes=(keys[-1],)))
        if len({_shard_of(k, 4) for k in keys}) > 1:
            expected_cross += 1
    schedule = executor.plan_block(txs)
    assert schedule.cross_shard_count == expected_cross
    assert schedule.local_count == len(txs) - expected_cross


@settings(max_examples=50, deadline=None)
@given(
    spec=st.lists(
        st.tuples(
            st.lists(st.integers(min_value=0, max_value=30), max_size=4),  # reads
            st.lists(st.integers(min_value=0, max_value=30), max_size=3),  # writes
        ),
        max_size=12,
    ),
    n_shards=st.integers(min_value=1, max_value=8),
)
def test_parallel_never_slower_than_sequential(spec, n_shards):
    """Property: for any block, parallel makespan <= sequential makespan,
    and the totals are conserved (every tx's gas lands somewhere)."""
    txs = [
        _tx(i, reads=tuple(f"k{r}" for r in reads), writes=tuple(f"k{w}" for w in writes))
        for i, (reads, writes) in enumerate(spec)
    ]
    schedule = ShardedExecutor(n_shards=n_shards).plan_block(txs)
    assert schedule.parallel_makespan <= schedule.sequential_makespan
    assert schedule.speedup >= 1.0
    assert schedule.local_count + schedule.cross_shard_count == len(txs)
    total_gas = sum(schedule.shard_loads) + schedule.cross_shard_gas
    assert schedule.sequential_makespan == total_gas
