"""Known-bad ALIAS corpus: shared defaults and leaked internals."""


def collect(item, acc=[]):  # ALIAS001
    acc.append(item)
    return acc


def tally(key, counts={}):  # ALIAS001
    counts[key] = counts.get(key, 0) + 1
    return counts


class Peer:
    def __init__(self):
        self.receipts = {}
        self.heights = []

    def all_receipts(self):
        return self.receipts  # ALIAS002: live reference across the boundary

    def seen_heights(self):
        return self.heights  # ALIAS002
