"""Regression tests: PBFT quorums must count validators only.

The seed engine's ``_on_prepare`` / ``_on_commit`` / ``_vote_view_change``
added *any* message ``src`` to quorum sets, so a non-validator on the
same network could forge commit certificates or depose a healthy
primary.  The ``old_code_path`` tests re-open that hole (by stubbing the
membership check back to the seed's always-true behavior) and
demonstrate both exploits; the rest assert the fixed engine shrugs the
same attacks off.
"""

from __future__ import annotations

from typing import Sequence

from repro.chain import BlockchainNetwork, InvariantAuditor
from repro.chain.consensus.pbft import (
    _COMMIT,
    _PREPARE,
    _VIEW_CHANGE,
    PBFTEngine,
)
from repro.simnet import FixedLatency, VoteFlooder
from repro.simnet.chaos import _PBFT_COMMIT, _PBFT_PREPARE, _PBFT_VIEW_CHANGE


def test_chaos_kind_literals_match_engine():
    """chaos.py mirrors the PBFT wire kinds without importing them (the
    simnet layer sits below chain); pin them together here."""
    assert _PBFT_PREPARE == _PREPARE
    assert _PBFT_COMMIT == _COMMIT
    assert _PBFT_VIEW_CHANGE == _VIEW_CHANGE


def _flooded_network(
    modes: Sequence[str] = ("forge", "echo", "view-change"),
    n_flooders: int = 3,
    seed: int = 7,
):
    """4 honest validators + *n_flooders* rogue non-validator nodes."""
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=FixedLatency(0.02), seed=seed, view_timeout=5.0,
    )
    network.install_contract(CounterContract)
    flooders = []
    for index in range(n_flooders):
        flooder = VoteFlooder(f"rogue-{index}", modes=modes)
        network.net.add_node(flooder)
        flooders.append(flooder)
    return network, flooders


def _drive(network, flooders, n_txs: int = 4, rounds: int = 12) -> list[str]:
    client = network.client()
    tx_ids = []
    for _ in range(n_txs):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        tx_ids.append(tx.tx_id)
    for _ in range(rounds):
        for flooder in flooders:
            flooder.flood_burst()
        network.run_for(1.0)
    network.run_for(10.0)
    return tx_ids


def test_exploit_view_change_forgery_on_old_code_path(monkeypatch):
    """Seed behavior: three rogue view-change votes reach 'quorum' and
    depose a healthy primary no honest replica voted against."""
    monkeypatch.setattr(PBFTEngine, "_member", lambda self, src: True)
    network, flooders = _flooded_network(modes=("view-change",))
    for _ in range(3):
        for flooder in flooders:
            flooder.flood_burst()
        network.run_for(1.0)
    network.stop()
    assert all(p.engine.view > 0 for p in network.peers), (
        "forged view-change votes should have deposed the primary"
    )


def test_exploit_forged_certificate_on_old_code_path(monkeypatch):
    """Seed behavior: with two validators crashed (honest quorum is
    unreachable — the network *must* stall), echo flooders stand in for
    the missing validators and blocks commit on certificates that name
    non-validators."""
    monkeypatch.setattr(PBFTEngine, "_member", lambda self, src: True)
    network, flooders = _flooded_network(modes=("echo",))
    auditor = InvariantAuditor(network, strict=False)
    network.net.node("peer-2").crashed = True
    network.net.node("peer-3").crashed = True
    _drive(network, flooders, rounds=8)
    network.stop()

    live = [p for p in network.peers if not p.crashed]
    assert any(p.ledger.height > 0 for p in live), (
        "exploit should commit blocks despite honest quorum being unreachable"
    )
    rogue_ids = {f.node_id for f in flooders}
    forged = [
        certificate
        for peer in live
        for _, certificate in peer.engine.commit_certificates.items()
        if set(certificate[1]) & rogue_ids
    ]
    assert forged, "no commit certificate carried a rogue signer"
    auditor.final_check()
    assert any(v.invariant == "certificate" for v in auditor.violations)
    kinds = {v.invariant for v in auditor.violations}
    assert "certificate" in kinds


def test_membership_check_defeats_the_flood():
    """The full attack against the fixed engine: every forged vote is
    rejected, no spurious view change, every certificate is 2f+1
    distinct validators, and the strict audit stays silent."""
    network, flooders = _flooded_network()
    auditor = InvariantAuditor(network)  # strict: raises on any violation
    tx_ids = _drive(network, flooders)
    network.stop()

    honest = network.peers
    assert all(p.engine.view == 0 for p in honest), "flooders forced a view change"
    assert all(p.engine.view_changes_completed == 0 for p in honest)
    assert sum(p.engine.votes_rejected_nonvalidator for p in honest) > 0
    rogue_ids = {f.node_id for f in flooders}
    for peer in honest:
        for digest, certificate in peer.engine.commit_certificates.values():
            assert not (set(certificate) & rogue_ids)
            assert len(set(certificate)) >= peer.engine.quorum
    # The flood cost nothing: all transactions still commit.
    reference = max(honest, key=lambda p: p.ledger.height)
    assert all(tx_id in reference.receipts for tx_id in tx_ids)
    assert not auditor.final_check()


def test_quorum_loss_stalls_despite_flood():
    """Mirror of the forged-certificate exploit against the fixed
    engine: with two validators crashed, echo flooders must NOT be able
    to substitute for them — nothing commits."""
    network, flooders = _flooded_network(modes=("echo",))
    network.net.node("peer-2").crashed = True
    network.net.node("peer-3").crashed = True
    _drive(network, flooders, rounds=8)
    network.stop()
    assert all(p.ledger.height == 0 for p in network.peers), (
        "a block committed without an honest validator quorum"
    )


def test_no_commit_with_forged_digest():
    """Forge-mode flooders push a fabricated digest hard; it must never
    appear on any honest chain."""
    network, flooders = _flooded_network()
    _drive(network, flooders)
    network.stop()
    forged = flooders[0].forged_digest
    for peer in network.peers:
        for height in range(peer.ledger.height + 1):
            assert peer.ledger.block(height).block_hash != forged


def test_rounds_stay_bounded_under_garbage_flood():
    """Garbage (view, height) coordinates must not allocate round state:
    the seed engine leaked a ``_Round`` per unique key forever."""
    network, flooders = _flooded_network()
    _drive(network, flooders, rounds=20)
    network.stop()
    for peer in network.peers:
        engine = peer.engine
        assert len(engine._rounds) <= engine.height_window * (engine.VIEW_WINDOW + 1)
        assert len(engine._rounds) < 20  # and in practice: a handful
        assert len(engine._view_votes) <= engine.VIEW_WINDOW + 1


def test_observer_peer_never_votes():
    """A late-joined observer (not in the validator set) follows the
    chain but must not vote: its id never appears in any certificate."""
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=FixedLatency(0.02), seed=3, view_timeout=5.0,
    )
    network.install_contract(CounterContract)
    client = network.client()
    tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
    network.submit(tx)
    network.wait_for_receipt(tx.tx_id)
    observer = network.join_peer("observer-0")
    for _ in range(3):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.wait_for_receipt(tx.tx_id)
    network.run_for(5.0)
    network.stop()
    assert observer.ledger.height >= 1  # it does follow the chain
    for peer in network.peers:
        for _, certificate in peer.engine.commit_certificates.items():
            assert "observer-0" not in certificate[1]


def test_deposed_primary_requeues_inflight_txs():
    """The silent tx-drop on view change: a deposed primary's
    taken-but-uncommitted transactions must return to its mempool
    instead of vanishing."""
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=FixedLatency(0.02), seed=11, view_timeout=2.0,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)
    client = network.client()
    primary = network.peers[0]  # primary of view 0
    # tx_a is gossiped everywhere; tx_b exists only on the primary.
    tx_a = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
    tx_b = network.endorse_transaction(client, "counter", "increment", {"amount": 2})
    network.submit(tx_a)
    auditor.track_tx(tx_b.tx_id)
    network.run_for(0.3)  # let tx_a's gossip land before the partition
    assert primary.submit(tx_b, gossip=False)
    # Split 2|2: the primary proposes a block (taking tx_a and tx_b) that
    # can never gather quorum on either side, so every replica stalls.
    # After the heal, the joint view change deposes the primary — which
    # must then re-queue the transactions its dead round had taken.
    network.net.partition({"peer-0", "peer-1"})
    network.run_for(8.0)
    network.net.heal()
    network.run_for(20.0)
    network.stop()
    assert primary.engine.view >= 1, "deposed primary never joined the view change"
    assert primary.ledger.height == 0 or tx_a.tx_id in primary.receipts
    majority = network.peers[1]
    assert tx_a.tx_id in majority.receipts, "tx_a did not commit after view change"
    # tx_b was in the deposed round; it must be back in the primary's
    # mempool (or committed later) — not silently dropped.
    assert (tx_b.tx_id in primary.mempool) or (tx_b.tx_id in primary.receipts), (
        "deposed primary's in-flight tx vanished"
    )
    assert not auditor.final_check()


def test_view_change_votes_require_membership():
    """Directly inject view-change votes from unknown ids: quorum must
    never assemble from them."""
    network, _ = _flooded_network(n_flooders=0)
    engine = network.peers[0].engine
    for fake in ("ghost-1", "ghost-2", "ghost-3", "ghost-4"):
        engine._vote_view_change(1, fake)
    assert engine.view == 0
    assert engine.votes_rejected_nonvalidator == 4
    # Real validators still can change the view.
    for validator in ("peer-1", "peer-2", "peer-3"):
        engine._vote_view_change(1, validator)
    assert engine.view == 1
    network.stop()
