"""Bot-ring detection and topic classification."""

import random

import pytest

from repro.core import (
    account_activity_features,
    bot_scores,
    detect_bot_rings,
)
from repro.corpus import CorpusGenerator
from repro.errors import MLError
from repro.ml import TopicClassifier
from repro.social import (
    CascadeRunner,
    bind_agents,
    interconnect,
    make_botnet,
    make_population,
    scale_free_follow_graph,
)
from repro.social.cascade import ShareEvent


def _event(src, dst, op="relay", index=0):
    return ShareEvent(time=0.0, round_index=0, agent_id=dst, source_agent_id=src,
                      article_id=f"a-{src}-{dst}-{index}", parent_article_id="p", op=op)


# -- feature extraction -----------------------------------------------------


def test_activity_features_basic():
    events = [_event("a", "b"), _event("a", "b", index=1), _event("b", "a"),
              _event("c", "b", op="insert")]
    features = account_activity_features(events)
    b = features["b"]
    assert b.shares == 3
    assert b.distinct_sources == 2
    assert b.reciprocity == pytest.approx(0.5)  # mutual with a, not with c
    assert b.mutation_rate == pytest.approx(1 / 3)
    assert features["a"].reciprocity == 1.0


def test_ring_detection_on_synthetic_clique():
    events = []
    ring = ["r1", "r2", "r3", "r4"]
    for repeat in range(2):  # repeated reciprocation = the coordination signature
        for i, u in enumerate(ring):
            for v in ring[i + 1:]:
                events.append(_event(u, v, index=repeat))
                events.append(_event(v, u, index=repeat))
    # Organic chain: a -> b -> c (no reciprocity).
    events += [_event("a", "b"), _event("b", "c")]
    rings = detect_bot_rings(events)
    assert rings == [set(ring)]


def test_single_mutual_share_not_a_ring():
    """One-off reciprocation is organic (mutual follows exist)."""
    events = []
    for u, v in (("a", "b"), ("b", "c"), ("c", "a")):
        events.append(_event(u, v))
        events.append(_event(v, u))
    assert detect_bot_rings(events) == []


def test_no_rings_in_tree_cascade():
    events = [_event("root", f"child-{i}") for i in range(10)]
    events += [_event(f"child-{i}", f"grand-{i}") for i in range(10)]
    assert detect_bot_rings(events) == []


def test_bot_scores_rank_ring_members_highest():
    events = []
    ring = ["r1", "r2", "r3"]
    for repeat in range(2):
        for i, u in enumerate(ring):
            for v in ring[i + 1:]:
                events.append(_event(u, v, index=repeat))
                events.append(_event(v, u, index=repeat))
    events += [_event("root", "organic"), _event("organic", "leaf")]
    scores = bot_scores(events)
    for member in ring:
        assert scores[member] > 0.6
    assert scores["organic"] < 0.5


def test_bot_scores_empty():
    assert bot_scores([]) == {}


# -- end-to-end: planted botnet in a cascade ----------------------------------


def test_planted_botnet_detected_in_cascade():
    rng = random.Random(33)
    graph = scale_free_follow_graph(300, seed=33)
    agents = make_population(300, rng, bot_fraction=0.0)  # no organic bots
    bind_agents(graph, agents)
    recruits = make_botnet(agents, size=8, rng=rng, ring_id="troll-farm")
    interconnect(graph, recruits)
    corpus = CorpusGenerator(seed=34)
    fake = corpus.insertion_fake(corpus.factual(), recruits[0].agent_id, 0.0)
    # Seed at a ring member so the farm amplifies.
    start_node = next(
        node for node, attrs in graph.nodes(data=True)
        if attrs["agent"].agent_id == recruits[0].agent_id
    )
    result = CascadeRunner(graph, corpus, rng=rng).run([(start_node, fake)], n_rounds=8)
    rings = detect_bot_rings(result.events)
    detected = set().union(*rings) if rings else set()
    planted = {agent.agent_id for agent in recruits}
    assert detected & planted == planted  # the whole farm caught
    assert detected - planted == set()  # zero organic false positives
    scores = bot_scores(result.events)
    planted_mean = sum(scores[a] for a in planted if a in scores) / len(planted)
    organic_scores = [s for agent_id, s in scores.items() if agent_id not in planted]
    organic_mean = sum(organic_scores) / len(organic_scores)
    assert planted_mean > organic_mean + 0.4


# -- topic classification -------------------------------------------------------


@pytest.fixture(scope="module")
def topic_data():
    gen = CorpusGenerator(seed=44)
    train = [gen.factual() for _ in range(240)]
    test = [gen.factual() for _ in range(80)]
    return train, test


def test_topic_classifier_accuracy(topic_data):
    train, test = topic_data
    classifier = TopicClassifier().fit([a.text for a in train], [a.topic for a in train])
    predictions = classifier.predict([a.text for a in test])
    accuracy = sum(p == a.topic for p, a in zip(predictions, test)) / len(test)
    assert accuracy > 0.9


def test_topic_classifier_confidence(topic_data):
    train, _ = topic_data
    classifier = TopicClassifier().fit([a.text for a in train], [a.topic for a in train])
    topic, confidence = classifier.confidence(train[0].text)
    assert topic in classifier.topics
    assert 0.0 <= confidence <= 1.0


def test_topic_classifier_validation():
    with pytest.raises(MLError):
        TopicClassifier().fit([], [])
    with pytest.raises(MLError):
        TopicClassifier().fit(["a", "b"], ["politics", "politics"])
    with pytest.raises(MLError):
        TopicClassifier().predict(["text"])
