"""Unit tests for the seeded chaos harness (scheduling mechanics only;
consensus-facing behavior is covered in tests/chain/test_chaos_audit.py)."""

import pytest

from repro.simnet import (
    ChaosSchedule,
    FixedLatency,
    Message,
    Network,
    NetworkNode,
    ScaledLatency,
    Simulator,
    VoteFlooder,
)


class Recorder(NetworkNode):
    def __init__(self, node_id: str):
        super().__init__(node_id)
        self.received: list[Message] = []

    def on_message(self, message: Message) -> None:
        self.received.append(message)


def build(n: int = 4):
    sim = Simulator()
    net = Network(sim, latency=FixedLatency(0.05))
    nodes = [Recorder(f"n{i}") for i in range(n)]
    for node in nodes:
        net.add_node(node)
    return sim, net, nodes


def test_latency_spike_installs_and_restores():
    sim, net, nodes = build(2)
    base = net.latency
    chaos = ChaosSchedule(sim, net, seed=1)
    chaos.latency_spike_at(1.0, duration=2.0, factor=10.0)
    sim.run(until=1.5)
    assert isinstance(net.latency, ScaledLatency)
    nodes[0].send("n1", "slow", None)
    sim.run(until=1.9)
    assert nodes[1].received == []  # the 0.05 s link now takes 0.5 s
    sim.run(until=8.0)
    assert net.latency is base
    assert len(nodes[1].received) == 1
    actions = [e.action for e in chaos.log]
    assert actions == ["latency-spike", "latency-restore"]


def test_scaled_latency_validates_factor():
    with pytest.raises(ValueError):
        ScaledLatency(FixedLatency(0.1), 0.0)


def test_flooder_lifecycle_and_log():
    sim, net, nodes = build(3)
    chaos = ChaosSchedule(sim, net, seed=3)
    flooder = chaos.flooder_at(1.0, duration=3.0, period=0.5, modes=("forge",))
    assert flooder.node_id in net.node_ids()
    sim.run(until=10.0)
    assert not flooder.active
    assert flooder.messages_flooded > 0
    # Every other node saw forged pbft traffic from the rogue.
    for node in nodes:
        assert any(m.src == flooder.node_id for m in node.received)
    actions = [e.action for e in chaos.log]
    assert actions == ["rogue-start", "rogue-stop"]


def test_flooder_echo_dedups_and_tracks_view():
    sim, net, nodes = build(2)
    flooder = VoteFlooder("rogue", modes=("echo",))
    net.add_node(flooder)
    payload = {"view": 3, "height": 9, "digest": "d" * 64}
    for _ in range(5):
        nodes[0].broadcast("pbft-prepare", payload)
    sim.run()
    assert flooder.seen_view == 3 and flooder.seen_height == 9
    # Five identical observations echo exactly once.
    echoes = [m for m in nodes[1].received if m.src == "rogue"]
    assert len(echoes) == 1


def test_plan_is_deterministic_per_seed():
    def plan_log(seed):
        sim, net, _ = build(4)
        chaos = ChaosSchedule(sim, net, seed=seed)
        chaos.plan(duration=20.0, validators=net.node_ids())
        sim.run(until=60.0)
        return [(e.time, e.action, e.target) for e in chaos.log]

    assert plan_log(11) == plan_log(11)
    assert plan_log(11) != plan_log(12)


def test_plan_undoes_every_fault_before_duration():
    """Crashes recover, partitions heal, spikes end: a settle period
    after the plan must always see a fully healthy network."""
    for seed in range(8):
        sim, net, nodes = build(5)
        chaos = ChaosSchedule(sim, net, seed=seed)
        chaos.plan(duration=30.0, validators=net.node_ids())
        sim.run(until=31.0)
        assert all(not node.crashed for node in nodes)
        assert net._partition is None
        assert not isinstance(net.latency, ScaledLatency)
        assert all(not f.active for f in chaos.flooders)
