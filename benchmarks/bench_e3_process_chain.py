"""E3 — Fig. 3: conventional process supply chain (the baseline).

Workload: 40 batches pushed through the fixed 5-stage workflow on a
LocalChain.  Reports throughput and the structural signature of the
resulting provenance graph — strictly linear, bounded depth — which E4
contrasts with the news supply chain.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.chain import LocalChain
from repro.core.process_chain import (
    PROCESS_STAGES,
    ProcessSupplyChainContract,
    graph_shape,
    process_chain_graph,
)

N_BATCHES = 40


def _run():
    chain = LocalChain(seed=50)
    chain.install_contract(ProcessSupplyChainContract())
    actor = chain.new_account()
    for batch in range(N_BATCHES):
        chain.invoke(actor, "process-chain", "register_batch",
                     {"batch_id": f"b-{batch}", "description": "produce"})
        for _ in range(len(PROCESS_STAGES) - 1):
            chain.invoke(actor, "process-chain", "advance", {"batch_id": f"b-{batch}"})
    return chain


def test_e3_process_supply_chain(benchmark):
    chain = benchmark.pedantic(_run, rounds=1, iterations=1)
    graph = process_chain_graph(chain.ledger)
    shape = graph_shape(graph)
    txs = chain.ledger.total_transactions()
    rows = [
        f"batches={N_BATCHES} stages={len(PROCESS_STAGES)} transactions={txs}",
        shape.as_row("process-chain"),
        "signature: max_fanout=1, branching=0, depth bounded by stage count "
        "(the 'pre-fixed network architecture' of Fig. 3)",
    ]
    emit(benchmark, "E3 Fig.3 — process supply chain structure", rows)
    assert shape.max_fanout == 1
    assert shape.branching_nodes == 0
    assert shape.max_depth == len(PROCESS_STAGES) - 1
