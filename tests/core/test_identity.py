"""Identity registration, verification web-of-trust, role gating."""

import pytest

from repro.chain import LocalChain
from repro.core import IdentityContract
from repro.errors import ContractError


@pytest.fixture
def chain():
    c = LocalChain(seed=1)
    c.install_contract(IdentityContract())
    return c


def test_register_and_get(chain):
    alice = chain.new_account()
    record = chain.invoke(alice, "identity", "register",
                          {"display_name": "alice", "role": "journalist"}).return_value
    assert record["verified"] is False
    fetched = chain.query("identity", "get_identity", {"address": alice.address})
    assert fetched["display_name"] == "alice"


def test_register_rejects_unknown_role(chain):
    alice = chain.new_account()
    with pytest.raises(ContractError, match="unknown role"):
        chain.invoke(alice, "identity", "register", {"display_name": "a", "role": "emperor"})


def test_register_rejects_empty_name(chain):
    alice = chain.new_account()
    with pytest.raises(ContractError):
        chain.invoke(alice, "identity", "register", {"display_name": "", "role": "consumer"})


def test_double_registration_rejected(chain):
    alice = chain.new_account()
    chain.invoke(alice, "identity", "register", {"display_name": "a", "role": "consumer"})
    with pytest.raises(ContractError, match="already registered"):
        chain.invoke(alice, "identity", "register", {"display_name": "a2", "role": "consumer"})


def test_first_verifier_becomes_governance_root(chain):
    root = chain.new_account()
    alice = chain.new_account()
    chain.invoke(alice, "identity", "register", {"display_name": "a", "role": "consumer"})
    chain.invoke(root, "identity", "verify", {"address": alice.address})
    record = chain.query("identity", "get_identity", {"address": alice.address})
    assert record["verified"] and record["verified_by"] == root.address


def test_unverified_cannot_attest(chain):
    root = chain.new_account()
    alice, bob, mallory = chain.new_account(), chain.new_account(), chain.new_account()
    for account, name in ((alice, "a"), (bob, "b"), (mallory, "m")):
        chain.invoke(account, "identity", "register", {"display_name": name, "role": "consumer"})
    chain.invoke(root, "identity", "verify", {"address": alice.address})  # root bootstrap
    with pytest.raises(ContractError, match="only verified"):
        chain.invoke(mallory, "identity", "verify", {"address": bob.address})


def test_verified_can_attest_chain_of_trust(chain):
    root, alice, bob = chain.new_account(), chain.new_account(), chain.new_account()
    chain.invoke(alice, "identity", "register", {"display_name": "a", "role": "consumer"})
    chain.invoke(bob, "identity", "register", {"display_name": "b", "role": "consumer"})
    chain.invoke(root, "identity", "verify", {"address": alice.address})
    chain.invoke(alice, "identity", "verify", {"address": bob.address})
    assert chain.query("identity", "get_identity", {"address": bob.address})["verified"]


def test_double_verification_rejected(chain):
    root, alice = chain.new_account(), chain.new_account()
    chain.invoke(alice, "identity", "register", {"display_name": "a", "role": "consumer"})
    chain.invoke(root, "identity", "verify", {"address": alice.address})
    with pytest.raises(ContractError, match="already verified"):
        chain.invoke(root, "identity", "verify", {"address": alice.address})


def test_verify_unregistered_rejected(chain):
    root = chain.new_account()
    with pytest.raises(ContractError, match="no identity"):
        chain.invoke(root, "identity", "verify", {"address": "acct:" + "0" * 40})


def test_events_on_ledger(chain):
    root, alice = chain.new_account(), chain.new_account()
    chain.invoke(alice, "identity", "register", {"display_name": "a", "role": "checker"})
    chain.invoke(root, "identity", "verify", {"address": alice.address})
    kinds = [e["kind"] for e in chain.ledger.events(contract="identity")]
    assert kinds == ["identity-registered", "identity-verified"]
