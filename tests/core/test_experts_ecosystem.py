"""Expert mining from the ledger; ecosystem economy and token contract."""

import random

import pytest

from repro.chain import LocalChain
from repro.core import (
    EcosystemSimulator,
    ExpertFinder,
    IdentityContract,
    SupplyChainContract,
    TokenContract,
    build_supply_chain_graph,
)
from repro.errors import ContractError


# -- expert identification ------------------------------------------------------


@pytest.fixture
def expert_world():
    """Ledger with one planted expert, one bot, one casual user in 'health'."""
    chain = LocalChain(seed=6)
    chain.install_contract(IdentityContract())
    chain.install_contract(SupplyChainContract())
    accounts = {}
    for name in ("expert", "bot", "casual"):
        account = chain.new_account()
        chain.invoke(account, "identity", "register", {"display_name": name, "role": "creator"})
        accounts[name] = account

    def record(account, article_id, parents=(), degree=0.0, fact_roots=(), topic="health"):
        chain.invoke(account, "supplychain", "record_node",
                     {"article_id": article_id, "content_hash": "h", "parents": list(parents),
                      "modification_degree": degree, "topic": topic, "op": "publish",
                      "fact_roots": list(fact_roots)})

    # Expert: six articles rooted in facts, minimal modification.
    for index in range(6):
        record(accounts["expert"], f"e-{index}", fact_roots=[f"f-{index}"], degree=0.02)
    # Bot: six heavily modified derivations of the expert's work.
    for index in range(6):
        record(accounts["bot"], f"b-{index}", parents=[f"e-{index}"], degree=0.7)
    # Casual: one good article (below min_articles).
    record(accounts["casual"], "c-0", fact_roots=["f-9"], degree=0.0)
    return chain, accounts


def test_expert_ranked_first(expert_world):
    chain, accounts = expert_world
    finder = ExpertFinder(build_supply_chain_graph(chain.ledger))
    scores = finder.scores("health")
    assert scores[0].author == accounts["expert"].address
    assert scores[0].mean_provenance > 0.9


def test_bot_excluded_from_panel(expert_world):
    chain, accounts = expert_world
    finder = ExpertFinder(build_supply_chain_graph(chain.ledger))
    panel = finder.suggest_panel("health", k=5, min_quality=0.6)
    assert accounts["expert"].address in panel
    assert accounts["bot"].address not in panel


def test_min_articles_gate(expert_world):
    chain, accounts = expert_world
    finder = ExpertFinder(build_supply_chain_graph(chain.ledger), min_articles=2)
    authors = [s.author for s in finder.scores("health")]
    assert accounts["casual"].address not in authors


def test_unknown_topic_empty(expert_world):
    chain, _ = expert_world
    finder = ExpertFinder(build_supply_chain_graph(chain.ledger))
    assert finder.scores("sports") == []
    assert finder.suggest_panel("sports") == []


# -- token contract ----------------------------------------------------------------


@pytest.fixture
def token_chain():
    chain = LocalChain(seed=8)
    chain.install_contract(TokenContract())
    return chain


def test_mint_transfer_balance(token_chain):
    root, alice = token_chain.new_account(), token_chain.new_account()
    token_chain.invoke(root, "token", "mint", {"to": alice.address, "amount": 100})
    token_chain.invoke(alice, "token", "transfer", {"to": root.address, "amount": 30})
    assert token_chain.query("token", "balance_of", {"address": alice.address}) == 70
    assert token_chain.query("token", "balance_of", {"address": root.address}) == 30


def test_only_root_mints(token_chain):
    root, mallory = token_chain.new_account(), token_chain.new_account()
    token_chain.invoke(root, "token", "mint", {"to": root.address, "amount": 1})
    with pytest.raises(ContractError, match="token root"):
        token_chain.invoke(mallory, "token", "mint", {"to": mallory.address, "amount": 100})


def test_overdraft_rejected(token_chain):
    root = token_chain.new_account()
    token_chain.invoke(root, "token", "mint", {"to": root.address, "amount": 10})
    with pytest.raises(ContractError, match="insufficient"):
        token_chain.invoke(root, "token", "transfer", {"to": "acct:" + "0" * 40, "amount": 11})


def test_positive_amounts_only(token_chain):
    root = token_chain.new_account()
    with pytest.raises(ContractError):
        token_chain.invoke(root, "token", "mint", {"to": root.address, "amount": 0})


# -- ecosystem economy ----------------------------------------------------------------


def test_economy_role_mix():
    sim = EcosystemSimulator.generate(n_agents=300, seed=1, dishonest_fraction=0.25)
    roles = {a.role for a in sim.agents}
    assert roles == {"consumer", "creator", "checker", "developer", "publisher"}
    dishonest = sum(not a.honest for a in sim.agents)
    assert 50 < dishonest < 110  # ~25%


def test_honest_creators_outearn_dishonest():
    sim = EcosystemSimulator.generate(n_agents=300, seed=2, dishonest_fraction=0.3)
    sim.run(n_rounds=30)
    earnings = sim.earnings_by(role="creator")
    assert earnings["honest"] > earnings["dishonest"]


def test_dishonest_creators_lose_money_in_expectation():
    sim = EcosystemSimulator.generate(n_agents=300, seed=3, dishonest_fraction=0.3)
    sim.run(n_rounds=30)
    assert sim.earnings_by(role="creator")["dishonest"] < 0


def test_honest_checkers_profit():
    sim = EcosystemSimulator.generate(n_agents=300, seed=4, dishonest_fraction=0.3)
    sim.run(n_rounds=30)
    earnings = sim.earnings_by(role="checker")
    assert earnings["honest"] > 0
    assert earnings["honest"] > earnings["dishonest"]


def test_round_log_records_flows():
    sim = EcosystemSimulator.generate(n_agents=100, seed=5)
    sim.run(n_rounds=5)
    assert len(sim.round_log) == 5
    assert all(flow["fees"] >= 0 for flow in sim.round_log)


def test_economy_deterministic():
    a = EcosystemSimulator.generate(n_agents=100, seed=6)
    b = EcosystemSimulator.generate(n_agents=100, seed=6)
    a.run(10)
    b.run(10)
    assert [x.balance for x in a.agents] == [x.balance for x in b.agents]


def test_recruit_pool_seeds_experts(expert_world):
    import random

    from repro.core import ExpertFinder, build_supply_chain_graph

    chain, accounts = expert_world
    finder = ExpertFinder(build_supply_chain_graph(chain.ledger))
    rng = random.Random(5)
    pool = finder.recruit_pool("health", rng, pool_size=10)
    assert len(pool.validators) == 10
    expert_validators = [v for v in pool.validators if v.address is not None]
    assert expert_validators, "ledger expert should be recruited"
    assert accounts["expert"].address in {v.validator_id for v in expert_validators}
    # Experts carry elevated weight and accuracy.
    recruits = [v for v in pool.validators if v.address is None]
    assert all(e.weight > r.weight for e in expert_validators for r in recruits)
    assert all(e.accuracy > r.accuracy for e in expert_validators for r in recruits)


def test_expert_seeded_pool_outperforms_cold_pool(expert_world):
    import random

    from repro.core import ExpertFinder, ValidatorPool, build_supply_chain_graph

    chain, accounts = expert_world
    finder = ExpertFinder(build_supply_chain_graph(chain.ledger))
    rng_a, rng_b = random.Random(6), random.Random(6)
    seeded = finder.recruit_pool("health", rng_a, pool_size=9)
    cold = ValidatorPool.generate(9, rng_b, accuracy_range=(0.64, 0.80))
    seeded_correct = cold_correct = 0
    trials = 60
    for trial in range(trials):
        truth = trial % 2 == 0
        votes_seeded = seeded.collect_votes(truth, rng_a)
        votes_cold = cold.collect_votes(truth, rng_b)
        seeded_correct += int((ValidatorPool.weighted_share(votes_seeded) >= 0.5) == truth)
        cold_correct += int((ValidatorPool.weighted_share(votes_cold) >= 0.5) == truth)
    assert seeded_correct >= cold_correct
    assert seeded_correct / trials > 0.9
