"""Latency models and failure scheduling."""

import random

import pytest

from repro.simnet import (
    FailureSchedule,
    FixedLatency,
    GeoLatency,
    LogNormalLatency,
    Network,
    NetworkNode,
    Simulator,
)


class Sink(NetworkNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def test_fixed_latency_constant():
    model = FixedLatency(0.07)
    rng = random.Random(0)
    assert all(model.sample("a", "b", rng) == 0.07 for _ in range(5))


def test_fixed_latency_rejects_negative():
    with pytest.raises(ValueError):
        FixedLatency(-1.0)


def test_lognormal_latency_positive_with_expected_median():
    model = LogNormalLatency(median=0.08, sigma=0.4)
    rng = random.Random(1)
    samples = sorted(model.sample("a", "b", rng) for _ in range(2001))
    assert all(s > 0 for s in samples)
    median = samples[len(samples) // 2]
    assert 0.06 < median < 0.10


def test_lognormal_rejects_bad_median():
    with pytest.raises(ValueError):
        LogNormalLatency(median=0.0)


def test_geo_latency_intra_faster_than_inter():
    regions = {"a": "us", "b": "us", "c": "eu"}
    model = GeoLatency(regions, intra_base=0.01, inter_base=0.12, jitter_sigma=0.1)
    rng = random.Random(2)
    intra = sum(model.sample("a", "b", rng) for _ in range(300)) / 300
    inter = sum(model.sample("a", "c", rng) for _ in range(300)) / 300
    assert inter > intra * 5


def test_failure_schedule_crash_and_recover():
    sim = Simulator()
    net = Network(sim)
    node = Sink("n0")
    sender = Sink("n1")
    net.add_node(node)
    net.add_node(sender)
    schedule = FailureSchedule(sim, net)
    schedule.crash_at(1.0, "n0")
    schedule.recover_at(3.0, "n0")
    sim.schedule_at(2.0, lambda: sender.send("n0", "while-down", None))
    sim.schedule_at(4.0, lambda: sender.send("n0", "after-up", None))
    sim.run()
    assert [m.kind for m in node.received] == ["after-up"]
    assert [e.action for e in schedule.log] == ["crash", "recover"]


def test_failure_schedule_partition_and_heal():
    sim = Simulator()
    net = Network(sim)
    a, b = Sink("a"), Sink("b")
    net.add_node(a)
    net.add_node(b)
    schedule = FailureSchedule(sim, net)
    schedule.partition_at(1.0, {"a"})
    schedule.heal_at(3.0)
    sim.schedule_at(2.0, lambda: a.send("b", "split", None))
    sim.schedule_at(4.0, lambda: a.send("b", "healed", None))
    sim.run()
    assert [m.kind for m in b.received] == ["healed"]
    actions = [e.action for e in schedule.log]
    assert actions == ["partition", "heal"]
