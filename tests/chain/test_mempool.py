"""Mempool admission, FIFO, capacity."""

import random

import pytest

from repro.chain import Mempool
from repro.chain.transaction import Transaction
from repro.crypto import KeyPair
from repro.errors import ChainError


def _tx(nonce):
    return Transaction.create(KeyPair.generate(random.Random(nonce)), "c", "m", {}, nonce=nonce)


def test_add_and_take_fifo():
    pool = Mempool()
    txs = [_tx(i) for i in range(5)]
    for tx in txs:
        assert pool.add(tx)
    batch = pool.take(3)
    assert [t.tx_id for t in batch] == [t.tx_id for t in txs[:3]]
    assert len(pool) == 2


def test_duplicate_rejected():
    pool = Mempool()
    tx = _tx(1)
    assert pool.add(tx)
    assert not pool.add(tx)
    assert pool.rejected_duplicate == 1


def test_capacity_enforced():
    pool = Mempool(capacity=2)
    assert pool.add(_tx(1)) and pool.add(_tx(2))
    assert not pool.add(_tx(3))
    assert pool.rejected_full == 1


def test_take_more_than_available():
    pool = Mempool()
    pool.add(_tx(1))
    assert len(pool.take(10)) == 1
    assert len(pool) == 0


def test_take_requires_positive():
    with pytest.raises(ChainError):
        Mempool().take(0)


def test_remove_committed():
    pool = Mempool()
    txs = [_tx(i) for i in range(3)]
    for tx in txs:
        pool.add(tx)
    pool.remove([txs[0].tx_id, txs[2].tx_id, "unknown"])
    assert len(pool) == 1
    assert txs[1].tx_id in pool
