"""Exporter round-trips: JSONL ↔ records ↔ markdown, perf records."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    append_perf_record,
    export_jsonl,
    markdown_report,
    read_jsonl,
    report_from_records,
    write_perf_record,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _populated():
    clock = FakeClock()
    registry = MetricsRegistry()
    tracer = Tracer(clock, registry=registry)
    registry.counter("peer.txs_committed_valid", peer="p0").inc(7)
    for peer, values in (("p0", [0.1, 0.2, 0.3]), ("p1", [0.4, 0.5])):
        hist = registry.histogram("phase.commit_latency", peer=peer)
        for v in values:
            hist.observe(v)
    span = tracer.start("commit", peer="p0")
    clock.now = 0.5
    tracer.finish(span)
    return registry, tracer


def test_jsonl_round_trip(tmp_path):
    registry, tracer = _populated()
    path = tmp_path / "trace.jsonl"
    written = export_jsonl(path, registry, tracer, meta={"run": "test"})
    records = read_jsonl(path)
    assert len(records) == written
    assert records[0]["type"] == "meta"
    assert records[0]["run"] == "test"
    # Every line is valid standalone JSON (already proven by read_jsonl,
    # but assert the span + metric mix survived).
    types = {r["type"] for r in records}
    assert types == {"meta", "span", "metric"}


def test_report_reconstructed_from_file_matches_live(tmp_path):
    registry, tracer = _populated()
    live = markdown_report(registry, tracer, title="t")
    path = tmp_path / "trace.jsonl"
    export_jsonl(path, registry, tracer)
    rebuilt = report_from_records(read_jsonl(path), title="t")
    assert rebuilt == live


def test_report_pools_phase_across_labels():
    registry, tracer = _populated()
    report = markdown_report(registry, tracer)
    # commit_latency has 3 + 2 observations across two peers.
    line = next(l for l in report.splitlines() if l.startswith("| commit_latency"))
    cells = [c.strip() for c in line.split("|")]
    assert cells[2] == "5"  # pooled count
    assert float(cells[3]) == (0.1 + 0.2 + 0.3 + 0.4 + 0.5) / 5  # pooled mean
    # p50 of the pooled reservoir {0.1..0.5}.
    assert abs(float(cells[4]) - 0.3) < 1e-9
    assert "| peer.txs_committed_valid | 7 |" in report


def test_empty_phase_rows_are_omitted():
    registry = MetricsRegistry()
    registry.histogram("phase.sync_fetch", peer="p0")  # registered, never observed
    registry.histogram("phase.commit_latency", peer="p0").observe(0.2)
    report = markdown_report(registry)
    assert "commit_latency" in report
    assert "sync_fetch" not in report


def test_write_and_append_perf_records(tmp_path):
    path = tmp_path / "obs.json"
    write_perf_record(path, {"a": 1})
    assert json.loads(path.read_text()) == {"a": 1}

    arr_path = tmp_path / "latest_obs.json"
    append_perf_record(arr_path, {"run": 1}, reset=True)
    result = append_perf_record(arr_path, {"run": 2})
    assert [r["run"] for r in result] == [1, 2]
    assert [r["run"] for r in json.loads(arr_path.read_text())] == [1, 2]
    result = append_perf_record(arr_path, {"run": 3}, reset=True)
    assert [r["run"] for r in result] == [3]


def test_jsonable_handles_non_json_values(tmp_path):
    registry = MetricsRegistry()
    clock = FakeClock()
    tracer = Tracer(clock)
    span = tracer.start("x", payload=b"\x01\x02", who={"a", "b"})
    tracer.finish(span)
    path = tmp_path / "t.jsonl"
    export_jsonl(path, registry, tracer)
    record = next(r for r in read_jsonl(path) if r["type"] == "span")
    assert record["attrs"]["payload"] == "0102"
    assert sorted(record["attrs"]["who"]) == ["a", "b"]
