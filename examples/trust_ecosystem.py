"""The governance layer end to end: charters, media provenance, the tool
market, and the Management Act.

Walks the mechanisms of §V that surround the core publishing pipeline:

1. a publisher petitions for a distribution platform; checkers review;
   the charter is finalized on-chain;
2. a camera operator registers a capture fingerprint; a deepfaked copy
   of the clip condemns the article that attaches it;
3. a developer lists a detection tool, earns royalties per invocation,
   and builds a public accuracy record;
4. a serial fabricator accumulates conduct strikes and is suspended —
   then can no longer publish anywhere.

Run:  python examples/trust_ecosystem.py
"""

import numpy as np

from repro import TrustingNewsPlatform
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.ml import capture_signal, tamper_signal


def main() -> None:
    platform = TrustingNewsPlatform(seed=17)
    gen = CorpusGenerator(seed=17)
    rng = np.random.default_rng(17)

    # --- 1. crowd-reviewed platform charter --------------------------------
    platform.register_participant("founder", role="publisher")
    for index in range(3):
        platform.register_participant(f"checker-{index}", role="checker")
    platform.petition_platform("founder", "daily-ledger",
                               charter="independent, source-transparent daily", quorum=3)
    for index in range(3):
        platform.review_petition(f"checker-{index}", "daily-ledger", approve=True)
    status = platform.finalize_petition("daily-ledger")
    print(f"charter petition for 'daily-ledger': {status} "
          f"(chartered={platform.is_chartered('daily-ledger')})")
    platform.create_distribution_platform("founder", "daily-ledger")
    platform.create_news_room("founder", "daily-ledger", "newsdesk", "politics")

    # --- 2. media provenance ------------------------------------------------
    fact = gen.factual(topic="politics")
    platform.seed_fact("f-1", fact.text, "public-record", "politics")
    platform.register_participant("camera-op", role="journalist")
    platform.authenticate_journalist("daily-ledger", "camera-op")
    signal = capture_signal(rng)
    platform.register_media("camera-op", "rally-clip", signal, "campaign rally capture")
    text = relay(fact, "camera-op", 1.0).text
    clean = platform.publish_article("camera-op", "daily-ledger", "newsdesk",
                                     "story-clean", text, "politics",
                                     media=[("rally-clip", signal)])
    deepfaked, _ = tamper_signal(signal, rng, n_segments=6)
    faked = platform.publish_article("camera-op", "daily-ledger", "newsdesk",
                                     "story-faked", text + " exclusive update", "politics",
                                     media=[("rally-clip", deepfaked)])
    print(f"authentic clip: rank {platform.rank_article('story-clean').score:.3f}   "
          f"deepfaked clip: rank {platform.rank_article('story-faked').score:.3f}")

    # --- 3. the tool market ---------------------------------------------------
    platform.register_participant("dev", role="developer")
    platform.chain.invoke(platform.account("dev"), "toolmarket", "register_tool",
                          {"tool_id": "stylometer-v1", "description": "stylometric scorer",
                           "fee": 0.25, "stake": 20.0})
    verdicts = [("story-clean", 0.1, False), ("story-faked", 0.8, True)]
    for article_id, score, final_fake in verdicts:
        platform.chain.invoke(platform.governance, "toolmarket", "record_invocation",
                              {"tool_id": "stylometer-v1", "article_id": article_id,
                               "score": score})
        platform.chain.invoke(platform.governance, "toolmarket", "record_outcome",
                              {"tool_id": "stylometer-v1", "article_id": article_id,
                               "final_fake": final_fake})
    tool = platform.chain.query("toolmarket", "get_tool", {"tool_id": "stylometer-v1"})
    print(f"tool 'stylometer-v1': {tool['calls']} calls, accuracy "
          f"{tool['correct']}/{tool['calls']}, royalties {tool['royalties_accrued']:.2f}")

    # --- 4. the Management Act -------------------------------------------------
    platform.register_participant("fabricator", role="journalist")
    platform.authenticate_journalist("daily-ledger", "fabricator")
    for strike in range(3):
        platform.chain.invoke(platform.account("checker-0"), "conduct", "file_report",
                              {"report_id": f"rep-{strike}",
                               "accused": platform.address_of("fabricator"),
                               "article_id": "story-faked", "category": "fake-news",
                               "stake": 1.0})
        platform.chain.invoke(platform.governance, "conduct", "adjudicate",
                              {"report_id": f"rep-{strike}", "upheld": True})
    standing = platform.chain.query("conduct", "standing",
                                    {"address": platform.address_of("fabricator")})
    print(f"fabricator standing: {standing}")
    try:
        platform.publish_article("fabricator", "daily-ledger", "newsdesk",
                                 "blocked", "anything", "politics")
    except Exception as error:  # noqa: BLE001 - demo output
        print(f"suspended account publishing attempt: {error}")

    # Every one of the above is reconstructable from the ledger.
    audit = platform.export_audit("story-faked")
    print(f"audit bundle for story-faked: ranking={audit['ranking']['final_score']:.3f}, "
          f"traceable={audit['trace']['traceable']}")
    print("platform stats:", platform.stats())


if __name__ == "__main__":
    main()
