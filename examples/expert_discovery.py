"""Expert discovery and pre-propagation risk scoring from ledger history.

Builds a ledger where a handful of accounts consistently author
fact-rooted health reporting while bots churn out mutations, then:

1. mines the supply-chain graph for per-topic experts (§VI),
2. suggests a dynamic fact-checking panel for an emerging story,
3. trains the pre-propagation fake-risk predictor on content + author
   ledger history (§VII) and scores brand-new articles.

Run:  python examples/expert_discovery.py
"""

import numpy as np

from repro import TrustingNewsPlatform
from repro.core import ExpertFinder, FakeRiskPredictor
from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.ml import roc_auc


def main() -> None:
    platform = TrustingNewsPlatform(seed=13)
    gen = CorpusGenerator(seed=13)

    platform.register_participant("lancet", role="publisher")
    platform.create_distribution_platform("lancet", "lancet-news")
    platform.create_news_room("lancet", "lancet-news", "trials", "health")

    # Seed ground-truth facts.
    facts = [gen.factual(topic="health") for _ in range(6)]
    for index, fact in enumerate(facts):
        platform.seed_fact(f"trial-{index}", fact.text, "medical-registry", "health")

    # Two genuine experts file faithful, fact-rooted reports.
    articles_by_author: dict[str, list[str]] = {}
    for expert in ("dr-amara", "dr-lindgren"):
        platform.register_participant(expert, role="journalist")
        platform.authenticate_journalist("lancet-news", expert)
        for index, fact in enumerate(facts[:4]):
            article_id = f"{expert}-a{index}"
            platform.publish_article(
                expert, "lancet-news", "trials", article_id,
                relay(fact, expert, float(index)).text, "health",
            )
            articles_by_author.setdefault(expert, []).append(article_id)

    # A content mill floods mutations of the experts' work.
    platform.register_participant("healthbuzz", role="journalist")
    platform.authenticate_journalist("lancet-news", "healthbuzz")
    for index in range(5):
        source = relay(facts[index % 4], "x", 0.0)
        fake = gen.insertion_fake(source, "healthbuzz", 10.0 + index, n_insertions=3)
        platform.publish_article(
            "healthbuzz", "lancet-news", "trials", f"buzz-{index}", fake.text, "health"
        )

    # 1-2. Mine experts and suggest a panel for an emerging health story.
    finder = ExpertFinder(platform.graph)
    print("expert standings in 'health':")
    for standing in finder.scores("health"):
        label = {platform.address_of(n): n for n in platform.accounts}.get(standing.author, "?")
        print(f"  {label:12} articles={standing.articles} "
              f"mean_provenance={standing.mean_provenance:.2f} score={standing.score:.2f}")
    panel = finder.suggest_panel("health", k=3)
    names = {platform.address_of(n): n for n in platform.accounts}
    print("suggested fact-checking panel:", [names.get(a, a) for a in panel])

    # 3. Train the risk predictor on a labeled corpus plus this ledger.
    train = gen.labeled_corpus(n_factual=150, n_fake=150)
    predictor = FakeRiskPredictor().fit(train.articles, platform.graph)
    test = CorpusGenerator(seed=14).labeled_corpus(n_factual=60, n_fake=60)
    risks = predictor.risk(test.articles, platform.graph)
    labels = np.array([int(a.label_fake) for a in test.articles])
    print(f"\npre-propagation fake-risk AUC on held-out articles: "
          f"{roc_auc(labels, risks):.3f}")
    riskiest = test.articles[int(np.argmax(risks))]
    print(f"riskiest unseen article (truth: {'fake' if riskiest.label_fake else 'factual'}): "
          f"{riskiest.text[:100]}...")


if __name__ == "__main__":
    main()
