"""Every rule family fires on its known-bad fixture and stays quiet on
the matching known-clean one.

Fixtures live in ``tests/analysis/fixtures/`` as real ``.py`` files (so
``compileall`` keeps them syntactically honest) but are excluded from
directory walks via ``AnalysisConfig.exclude_dir_names`` — these tests
feed them to :func:`repro.analysis.analyze_source` directly.
"""

import pathlib

import pytest

from repro.analysis import AnalysisConfig, analyze_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def fixture_findings(name: str, module: str = "", config: AnalysisConfig | None = None):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    # Absolute-ish fixture path: keeps findings out of the tests/ warn cap.
    return analyze_source(source, path=f"fixture/{name}", module=module, config=config)


def rule_ids(findings) -> set[str]:
    return {f.rule for f in findings}


# -- DET --------------------------------------------------------------------

def test_det_fires_on_bad():
    findings = fixture_findings("det_bad.py")
    ids = rule_ids(findings)
    assert {"DET001", "DET002", "DET003", "DET004"} <= ids
    assert sum(1 for f in findings if f.rule == "DET001") == 2
    assert sum(1 for f in findings if f.rule == "DET002") == 2
    assert sum(1 for f in findings if f.rule == "DET003") == 3
    assert sum(1 for f in findings if f.rule == "DET004") == 2
    assert all(f.severity == "error" for f in findings if f.rule != "DET004")
    assert all(f.severity == "warn" for f in findings if f.rule == "DET004")


def test_det_quiet_on_clean():
    assert fixture_findings("det_clean.py") == []


def test_det003_reports_chain_once():
    findings = analyze_source(
        "import secrets\n\ndef token():\n    return secrets.token_hex(8)\n",
        path="one_chain.py",
    )
    assert [f.rule for f in findings] == ["DET003"]


def test_det005_flags_ambient_numpy_random():
    findings = analyze_source(
        "import numpy as np\n\ndef draw():\n    return np.random.random(8)\n",
        path="np_ambient.py",
    )
    assert [f.rule for f in findings] == ["DET005"]
    assert findings[0].severity == "error"


def test_det005_flags_unseeded_default_rng():
    findings = analyze_source(
        "import numpy as np\n\nrng = np.random.default_rng()\n",
        path="np_unseeded.py",
    )
    assert [f.rule for f in findings] == ["DET005"]


def test_det005_sees_through_import_aliases():
    findings = analyze_source(
        "from numpy.random import default_rng as mk\n\nrng = mk()\n",
        path="np_aliased.py",
    )
    assert [f.rule for f in findings] == ["DET005"]


def test_det005_sanctions_seeded_generator():
    # The vectorized cascade engine's spelling: explicit seed, drawn
    # through the returned Generator — no findings of any kind.
    findings = analyze_source(
        "import numpy as np\n\n"
        "rng = np.random.default_rng(42)\n"
        "x = rng.random(4)\n"
        "y = np.random.default_rng(seed=7).integers(0, 10)\n",
        path="np_seeded.py",
    )
    assert findings == []


# -- SIM --------------------------------------------------------------------

def test_sim_fires_inside_domain():
    findings = fixture_findings("sim_bad.py", module="repro.chain.fixture")
    assert sum(1 for f in findings if f.rule == "SIM001") == 3
    assert sum(1 for f in findings if f.rule == "SIM002") == 1
    assert all(f.severity == "error" for f in findings)


def test_sim_silent_outside_domain():
    # The identical source is fine in a module with no sim clock.
    findings = fixture_findings("sim_bad.py", module="repro.ml.fixture")
    assert not rule_ids(findings) & {"SIM001", "SIM002"}


def test_sim_exempt_module_allows_wall_time():
    # repro.obs deliberately measures host wall time.
    findings = fixture_findings("sim_bad.py", module="repro.obs.fixture")
    assert not rule_ids(findings) & {"SIM001", "SIM002"}


def test_sim_quiet_on_clean():
    assert fixture_findings("sim_clean.py", module="repro.chain.fixture") == []


# -- ALIAS ------------------------------------------------------------------

def test_alias_fires_on_bad():
    findings = fixture_findings("alias_bad.py")
    assert sum(1 for f in findings if f.rule == "ALIAS001") == 2
    assert sum(1 for f in findings if f.rule == "ALIAS002") == 2
    assert all(f.severity == "error" for f in findings if f.rule == "ALIAS001")
    assert all(f.severity == "warn" for f in findings if f.rule == "ALIAS002")


def test_alias_quiet_on_clean():
    # Copies, None defaults, and non-boundary classes are all fine.
    assert fixture_findings("alias_clean.py") == []


# -- PYF --------------------------------------------------------------------

def test_pyf_fires_on_bad():
    findings = fixture_findings("pyf_bad.py")
    assert sum(1 for f in findings if f.rule == "PYF001") == 1  # math
    assert sum(1 for f in findings if f.rule == "PYF002") == 2  # recods, math_pow
    assert sum(1 for f in findings if f.rule == "PYF003") == 1  # dup json
    assert sum(1 for f in findings if f.rule == "PYF004") == 1
    undefined = sorted(f.message for f in findings if f.rule == "PYF002")
    assert "math_pow" in undefined[0] and "recods" in undefined[1]


def test_pyf_quiet_on_clean():
    # Comprehensions, walrus, class scope, globals, decorators, lambdas,
    # try/except import fallbacks: all legal, none flagged.
    assert fixture_findings("pyf_clean.py") == []


def test_pyf_class_scope_not_visible_in_methods():
    source = (
        "class C:\n"
        "    LIMIT = 3\n"
        "    def ok(self):\n"
        "        return self.LIMIT\n"
        "    def bad(self):\n"
        "        return LIMIT\n"
    )
    findings = analyze_source(source, path="scope.py")
    assert [f.rule for f in findings] == ["PYF002"]
    assert "LIMIT" in findings[0].message


def test_pyf_star_import_bails_out():
    source = "from os.path import *\n\nprint(join('a', 'b'))\n"
    assert analyze_source(source, path="star.py") == []


def test_pyf_init_imports_are_reexports():
    source = "from repro.chain import Peer\n"
    assert analyze_source(source, path="pkg/__init__.py") == []
    assert rule_ids(analyze_source(source, path="pkg/mod.py")) == {"PYF001"}


def test_pyf_import_as_self_is_reexport():
    source = "import numpy as numpy\n"
    assert analyze_source(source, path="reexport.py") == []


# -- OBS --------------------------------------------------------------------

def test_obs_fires_on_bad():
    findings = fixture_findings("obs_bad.py")
    assert sum(1 for f in findings if f.rule == "OBS001") == 1
    assert sum(1 for f in findings if f.rule == "OBS002") == 1
    kind_conflict = next(f for f in findings if f.rule == "OBS001")
    assert "chain.commits" in kind_conflict.message
    assert kind_conflict.severity == "error"


def test_obs_quiet_on_clean():
    # Distinct names per kind, stable label keys, **splat skipped.
    assert fixture_findings("obs_clean.py") == []


# -- severity cap outside src ----------------------------------------------

@pytest.mark.parametrize("root", ["tests", "benchmarks", "examples"])
def test_non_src_roots_are_warn_mode(root):
    source = "import math\n"  # unused import: PYF001, normally error
    findings = analyze_source(source, path=f"{root}/thing.py")
    assert [f.rule for f in findings] == ["PYF001"]
    assert findings[0].severity == "warn"


def test_src_keeps_error_severity():
    findings = analyze_source("import math\n", path="src/repro/thing.py")
    assert findings[0].severity == "error"
