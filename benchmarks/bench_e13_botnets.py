"""E13 — §II: bot-driven spread, and catching it from the ledger.

Grinberg et al. [36] (the paper's threat model): fake-news spread is
"driven substantially by bots and cyborgs", and the concentration of
sources "offers … a promise for more targeted interventions".

Workload: 300-agent worlds with a planted 8-account amplification ring
(mutual follows + near-deterministic mutual re-sharing), 6 trials.
Reports:

- the amplification effect: cascade reach with vs without the farm,
- detection quality: ring precision/recall from ledger share events,
- behavioural score separation between planted and organic accounts.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.core import bot_scores, detect_bot_rings
from repro.corpus import CorpusGenerator
from repro.social import (
    FastCascadeRunner,
    bind_agents,
    interconnect,
    make_botnet,
    make_population,
    scale_free_follow_graph,
)

N_TRIALS = 6
N_AGENTS = 300
FARM_SIZE = 8


def _world(seed: int, with_farm: bool):
    rng = random.Random(seed)
    graph = scale_free_follow_graph(N_AGENTS, seed=seed)
    agents = make_population(N_AGENTS, rng, bot_fraction=0.0)
    bind_agents(graph, agents)
    recruits = []
    if with_farm:
        recruits = make_botnet(agents, size=FARM_SIZE, rng=rng, ring_id="farm")
        interconnect(graph, recruits)
    corpus = CorpusGenerator(seed=seed + 1)
    author = recruits[0].agent_id if recruits else "agent-00000"
    fake = corpus.insertion_fake(corpus.factual(), author, 0.0)
    start = next(
        node for node, attrs in graph.nodes(data=True)
        if attrs["agent"].agent_id == author
    )
    # The botnet workload rides the vectorized engine (the same path the
    # scaling benchmarks measure); compilation snapshots agents *after*
    # make_botnet so the ring state lands in the struct-of-arrays form.
    result = FastCascadeRunner(graph, corpus, seed=seed).run([(start, fake)], n_rounds=8)
    return result, recruits, fake


def _sweep():
    reach_with = reach_without = 0.0
    true_positive = false_positive = false_negative = 0
    score_gap = 0.0
    for trial in range(N_TRIALS):
        seed = 2200 + trial * 11
        result_farm, recruits, fake_farm = _world(seed, with_farm=True)
        result_plain, _, fake_plain = _world(seed, with_farm=False)
        reach_with += result_farm.reach(fake_farm.article_id)
        reach_without += result_plain.reach(fake_plain.article_id)
        planted = {agent.agent_id for agent in recruits}
        rings = detect_bot_rings(result_farm.events)
        detected = set().union(*rings) if rings else set()
        true_positive += len(detected & planted)
        false_positive += len(detected - planted)
        false_negative += len(planted - detected)
        scores = bot_scores(result_farm.events)
        planted_scores = [scores[a] for a in planted if a in scores]
        organic_scores = [s for a, s in scores.items() if a not in planted]
        if planted_scores and organic_scores:
            score_gap += (sum(planted_scores) / len(planted_scores)
                          - sum(organic_scores) / len(organic_scores))
    precision = true_positive / max(1, true_positive + false_positive)
    recall = true_positive / max(1, true_positive + false_negative)
    return (reach_with / N_TRIALS, reach_without / N_TRIALS,
            precision, recall, score_gap / N_TRIALS)


def test_e13_botnet_amplification_and_detection(benchmark):
    reach_with, reach_without, precision, recall, score_gap = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    rows = [
        f"planted farm: {FARM_SIZE} accounts in {N_AGENTS}-agent worlds, {N_TRIALS} trials",
        f"fake reach with farm:    {reach_with:7.1f}",
        f"fake reach without farm: {reach_without:7.1f} "
        f"(amplification {reach_with / max(1, reach_without):.2f}x)",
        f"ring detection from ledger: precision={precision:.2f} recall={recall:.2f}",
        f"mean bot-score gap (planted - organic): {score_gap:+.2f}",
    ]
    emit(benchmark, "E13 — bot-farm amplification and ledger-based detection", rows)
    assert reach_with > reach_without
    assert precision >= 0.95 and recall >= 0.9
    assert score_gap > 0.4
