"""Merkle tree construction, proofs, and tamper detection."""

import pytest

from repro.crypto import EMPTY_ROOT, MerkleProof, MerkleTree
from repro.crypto.hashing import sha256_hex


def _leaves(n: int) -> list[str]:
    return [sha256_hex(f"leaf-{i}".encode()) for i in range(n)]


def test_empty_tree_has_sentinel_root():
    assert MerkleTree([]).root == EMPTY_ROOT


def test_single_leaf_proof():
    tree = MerkleTree(_leaves(1))
    assert tree.prove(0).verify(tree.root)


@pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 16, 33])
def test_all_proofs_verify(n):
    tree = MerkleTree(_leaves(n))
    for index in range(n):
        assert tree.prove(index).verify(tree.root), f"proof {index}/{n} failed"


def test_proof_fails_against_wrong_root():
    tree_a = MerkleTree(_leaves(5))
    tree_b = MerkleTree(_leaves(6))
    assert not tree_a.prove(2).verify(tree_b.root)


def test_proof_for_tampered_leaf_fails():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    proof = tree.prove(3)
    tampered = MerkleProof(leaf=_leaves(9)[8], index=3, path=proof.path)
    assert not tampered.verify(tree.root)


def test_root_changes_with_any_leaf():
    leaves = _leaves(8)
    base_root = MerkleTree(leaves).root
    for index in range(8):
        mutated = list(leaves)
        mutated[index] = sha256_hex(b"evil")
        assert MerkleTree(mutated).root != base_root


def test_root_changes_with_leaf_order():
    leaves = _leaves(4)
    swapped = [leaves[1], leaves[0]] + leaves[2:]
    assert MerkleTree(leaves).root != MerkleTree(swapped).root


def test_leaf_interior_domain_separation():
    """A single leaf's root must differ from a tree whose 'leaf' equals
    that root — the classic second-preimage confusion."""
    single = MerkleTree(_leaves(1))
    nested = MerkleTree([single.root])
    assert nested.root != single.root


def test_prove_out_of_range():
    tree = MerkleTree(_leaves(3))
    with pytest.raises(IndexError):
        tree.prove(3)
    with pytest.raises(IndexError):
        tree.prove(-1)


def test_root_of_matches_tree():
    leaves = _leaves(10)
    assert MerkleTree.root_of(leaves) == MerkleTree(leaves).root


def test_len():
    assert len(MerkleTree(_leaves(7))) == 7
