"""Mempool admission, FIFO, capacity."""

import random

import pytest

from repro.chain import Mempool
from repro.chain.transaction import Transaction
from repro.crypto import KeyPair
from repro.errors import ChainError


def _tx(nonce):
    return Transaction.create(KeyPair.generate(random.Random(nonce)), "c", "m", {}, nonce=nonce)


def test_add_and_take_fifo():
    pool = Mempool()
    txs = [_tx(i) for i in range(5)]
    for tx in txs:
        assert pool.add(tx)
    batch = pool.take(3)
    assert [t.tx_id for t in batch] == [t.tx_id for t in txs[:3]]
    assert len(pool) == 2


def test_duplicate_rejected():
    pool = Mempool()
    tx = _tx(1)
    assert pool.add(tx)
    assert not pool.add(tx)
    assert pool.rejected_duplicate == 1


def test_capacity_enforced():
    pool = Mempool(capacity=2)
    assert pool.add(_tx(1)) and pool.add(_tx(2))
    assert not pool.add(_tx(3))
    assert pool.rejected_full == 1


def test_take_more_than_available():
    pool = Mempool()
    pool.add(_tx(1))
    assert len(pool.take(10)) == 1
    assert len(pool) == 0


def test_take_requires_positive():
    with pytest.raises(ChainError):
        Mempool().take(0)


def test_remove_committed():
    pool = Mempool()
    txs = [_tx(i) for i in range(3)]
    for tx in txs:
        pool.add(tx)
    pool.remove([txs[0].tx_id, txs[2].tx_id, "unknown"])
    assert len(pool) == 1
    assert txs[1].tx_id in pool


def test_remove_accepts_any_iterable():
    pool = Mempool()
    txs = [_tx(i) for i in range(4)]
    for tx in txs:
        pool.add(tx)
    # Generators are what the consensus layer actually passes.
    pool.remove(tx.tx_id for tx in txs[:2])
    assert len(pool) == 2
    pool.remove({txs[2].tx_id})
    assert len(pool) == 1
    pool.remove(iter([txs[3].tx_id]))
    assert len(pool) == 0


def test_backpressure_recovers_after_take():
    pool = Mempool(capacity=3)
    txs = [_tx(i) for i in range(5)]
    assert [pool.add(tx) for tx in txs[:4]] == [True, True, True, False]
    assert pool.rejected_full == 1
    # Draining frees capacity; admission resumes.
    pool.take(2)
    assert pool.add(txs[3])
    assert pool.add(txs[4])
    assert not pool.add(_tx(99))
    assert pool.rejected_full == 2


def test_fifo_preserved_across_remove():
    pool = Mempool()
    txs = [_tx(i) for i in range(5)]
    for tx in txs:
        pool.add(tx)
    pool.remove([txs[1].tx_id, txs[3].tx_id])
    batch = pool.take(10)
    assert [t.tx_id for t in batch] == [txs[0].tx_id, txs[2].tx_id, txs[4].tx_id]


def test_duplicate_counting_accumulates():
    pool = Mempool()
    tx_a, tx_b = _tx(1), _tx(2)
    pool.add(tx_a)
    pool.add(tx_b)
    for _ in range(3):
        assert not pool.add(tx_a)
    assert not pool.add(tx_b)
    assert pool.rejected_duplicate == 4
    # Removal clears the dedup entry: the tx may be re-admitted.
    pool.remove([tx_a.tx_id])
    assert pool.add(tx_a)
    assert pool.rejected_duplicate == 4
