"""Known-bad corpus for the DET family (every hazard, one per line-ish)."""

import os
import random
import secrets
import uuid

from repro.crypto import MerkleTree, hash_json


def ambient_jitter() -> float:
    return random.random() * 0.5  # DET001


def ambient_pick(options):
    return random.choice(options)  # DET001


def fresh_rng():
    return random.Random()  # DET002


def system_rng():
    return random.SystemRandom()  # DET002


def entropy_id() -> str:
    return uuid.uuid4().hex  # DET003


def entropy_seed() -> bytes:
    return os.urandom(32)  # DET003


def entropy_token() -> str:
    return secrets.token_hex(8)  # DET003


def unordered_root(digests):
    return MerkleTree(set(digests))  # DET004


def unordered_payload(tags):
    return hash_json({tag for tag in tags})  # DET004
