"""Transaction admission outcomes and receipt stability.

Two seed bugs are pinned here:

- ``Peer.submit`` / ``BlockchainNetwork.submit`` conflated every
  rejection into one ``False``: a *duplicate* submission (the tx is
  already pending or committed — success, no retry needed) walked the
  try-every-peer fallback and could raise ``ChainError`` for a
  transaction that was happily in flight.  :class:`~repro.chain.peer.
  Admission` now distinguishes the cases, and truthiness still means
  "newly admitted" so seed-era call sites keep their semantics.

- a gossip echo of an already-committed tx could be re-admitted, land
  in a later block, fail MVCC there, and *clobber the original valid
  receipt* with a failure.  Admission now rejects committed ids
  outright, and the commit path never downgrades a valid receipt.
"""

from __future__ import annotations

import pytest

from repro.chain import Admission, BlockchainNetwork, Mempool
from repro.errors import ChainError


def _network(seed: int = 31, consensus: str = "pbft") -> BlockchainNetwork:
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus=consensus, block_interval=0.5, seed=seed,
    )
    network.install_contract(CounterContract)
    return network


def _endorsed_tx(network: BlockchainNetwork):
    client = network.client()
    return network.endorse_transaction(client, "counter", "increment", {"amount": 1})


def test_admission_truthiness_matches_seed_api():
    assert bool(Admission.ADMITTED) is True
    for outcome in (Admission.DUPLICATE, Admission.COMMITTED, Admission.FULL,
                    Admission.INVALID, Admission.CRASHED):
        assert bool(outcome) is False
    for outcome in (Admission.ADMITTED, Admission.DUPLICATE, Admission.COMMITTED):
        assert outcome.accepted
    for outcome in (Admission.FULL, Admission.INVALID, Admission.CRASHED):
        assert not outcome.accepted


def test_duplicate_submit_is_not_an_error():
    """Submitting the same pending tx twice must not raise — the second
    submit reports DUPLICATE (accepted, falsy) instead of walking every
    peer and blowing up as the seed code did."""
    network = _network()
    tx = _endorsed_tx(network)
    peer = network.peers[1]
    assert peer.submit(tx, gossip=False) is Admission.ADMITTED
    again = peer.submit(tx, gossip=False)
    assert again is Admission.DUPLICATE
    assert not again and again.accepted
    # Network-level: every peer now has it pending (or will); repeated
    # network.submit is a no-op success, never a ChainError.
    outcome = network.submit(tx)
    assert outcome.accepted
    network.stop()


def test_committed_tx_rejected_at_admission():
    """A gossip echo arriving after commit must not re-enter the mempool."""
    network = _network()
    tx = _endorsed_tx(network)
    network.submit(tx)
    receipt = network.wait_for_receipt(tx.tx_id)
    assert receipt.success
    network.run_for(10.0)
    for peer in network.peers:
        outcome = peer.submit(tx, gossip=False)
        assert outcome is Admission.COMMITTED
        assert outcome.accepted and not outcome
        assert tx.tx_id not in peer.mempool
    # And the duplicate-aware network entry point treats it as success.
    assert network.submit(tx) is Admission.COMMITTED
    network.stop()


def test_receipt_never_downgraded_by_recommitted_duplicate():
    """If a duplicate copy of a committed-valid tx sneaks into a later
    block (here: forced past admission, as a buggy peer could), its MVCC
    failure there must not overwrite the original valid receipt."""
    network = _network()
    tx = _endorsed_tx(network)
    network.submit(tx)
    receipt = network.wait_for_receipt(tx.tx_id)
    assert receipt.success
    network.run_for(10.0)
    original = {p.node_id: p.receipts[tx.tx_id] for p in network.peers}
    assert all(r.success for r in original.values())
    # Bypass the admission guard (the seed bug's effect) on one peer so
    # consensus re-proposes the tx in a later block.
    forced = network.peers[0]
    assert forced.mempool.add(tx)
    forced.engine.on_transaction_admitted()
    network.run_for(15.0)
    network.stop()
    for peer in network.peers:
        final = peer.receipts[tx.tx_id]
        assert final.success, f"{peer.node_id} downgraded a valid receipt"
        assert final.block_height == original[peer.node_id].block_height
    # The duplicate's re-execution was still counted as an invalid commit
    # somewhere (it did land in a block and fail MVCC) — the point is the
    # receipt, not the block contents.
    assert sum(p.metrics.txs_committed_invalid for p in network.peers) >= 1


def test_crashed_peer_reports_crashed_and_network_fails_over():
    network = _network()
    tx = _endorsed_tx(network)
    victim = network.peers[2]
    victim.crashed = True
    assert victim.submit(tx, gossip=False) is Admission.CRASHED
    assert tx.tx_id not in victim.mempool
    # The network entry point fails over to a live peer.
    outcome = network.submit(tx)
    assert outcome is Admission.ADMITTED
    network.stop()


def test_full_mempool_reports_full_and_only_total_rejection_raises():
    network = _network()
    tx = _endorsed_tx(network)
    for peer in network.peers:
        peer.mempool = Mempool(capacity=0)
    assert network.peers[0].submit(tx, gossip=False) is Admission.FULL
    with pytest.raises(ChainError) as excinfo:
        network.submit(tx)
    # The error names each peer's actual rejection reason.
    assert "full" in str(excinfo.value)
    network.stop()
