"""Multinomial Naive Bayes — the classic fake-news text baseline.

Works on non-negative count/TF-IDF matrices.  Log-space throughout with
Laplace smoothing; binary or multiclass.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError

__all__ = ["MultinomialNaiveBayes"]


class MultinomialNaiveBayes:
    """NB over term counts with Laplace (add-alpha) smoothing."""

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise MLError("smoothing alpha must be positive")
        self.alpha = alpha
        self.classes_: np.ndarray | None = None
        self._log_prior: np.ndarray | None = None
        self._log_likelihood: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MultinomialNaiveBayes":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise MLError("X must be 2-D with one row per label")
        if np.any(X < 0):
            raise MLError("multinomial NB requires non-negative features")
        self.classes_ = np.unique(y)
        n_classes, n_features = len(self.classes_), X.shape[1]
        self._log_prior = np.zeros(n_classes)
        self._log_likelihood = np.zeros((n_classes, n_features))
        for index, label in enumerate(self.classes_):
            rows = X[y == label]
            self._log_prior[index] = np.log(len(rows) / len(X))
            term_counts = rows.sum(axis=0) + self.alpha
            self._log_likelihood[index] = np.log(term_counts / term_counts.sum())
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        if self._log_prior is None or self._log_likelihood is None:
            raise MLError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return X @ self._log_likelihood.T + self._log_prior

    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None or self._joint_log_likelihood(X) is not None
        joint = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(joint, axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities via log-sum-exp normalization."""
        joint = self._joint_log_likelihood(X)
        joint -= joint.max(axis=1, keepdims=True)
        exp = np.exp(joint)
        return exp / exp.sum(axis=1, keepdims=True)

    def score_fake(self, X: np.ndarray) -> np.ndarray:
        """P(class == 1) — the platform's 'probability fake' contract."""
        if self.classes_ is None:
            raise MLError("model is not fitted")
        proba = self.predict_proba(X)
        positive = np.where(self.classes_ == 1)[0]
        if len(positive) == 0:
            return np.zeros(len(proba))
        return proba[:, positive[0]]
