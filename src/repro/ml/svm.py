"""Linear SVM trained with Pegasos-style SGD on the hinge loss.

The third classical text baseline alongside NB and logistic regression.
Labels are {0, 1} at the API (mapped to ±1 internally).  A Platt-style
sigmoid squash of the margin provides the [0, 1] fake-score the platform
consumes (uncalibrated, which is fine for ranking use).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError

__all__ = ["LinearSVM"]


class LinearSVM:
    """L2-regularized hinge-loss linear classifier (Pegasos SGD)."""

    def __init__(self, l2: float = 1e-4, n_epochs: int = 30, seed: int = 0):
        if l2 <= 0 or n_epochs < 1:
            raise MLError("l2 must be > 0 and n_epochs >= 1")
        self.l2 = l2
        self.n_epochs = n_epochs
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise MLError("X must be 2-D with one row per label")
        if not set(np.unique(y)) <= {0.0, 1.0}:
            raise MLError("labels must be 0/1")
        signs = np.where(y > 0, 1.0, -1.0)
        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features)
        bias = 0.0
        step = 0
        for _ in range(self.n_epochs):
            for index in rng.permutation(n_samples):
                step += 1
                eta = 1.0 / (self.l2 * step)
                margin = signs[index] * (X[index] @ weights + bias)
                weights *= 1.0 - eta * self.l2
                if margin < 1.0:
                    weights += eta * signs[index] * X[index]
                    bias += eta * signs[index]
        self.weights_ = weights
        self.bias_ = bias
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise MLError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != len(self.weights_):
            raise MLError(
                f"feature dimension mismatch: fitted {len(self.weights_)}, got {X.shape[1]}"
            )
        return X @ self.weights_ + self.bias_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)

    def score_fake(self, X: np.ndarray) -> np.ndarray:
        """Sigmoid-squashed margin as an uncalibrated P(fake)."""
        margins = self.decision_function(X)
        return 1.0 / (1.0 + np.exp(-np.clip(margins, -35.0, 35.0)))
