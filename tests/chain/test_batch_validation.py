"""Batched verification threaded through the chain layer.

The feature flag must be behavior-neutral: identical committed blocks,
receipts, and state digests with batching on or off — only the
verification schedule (and the metrics) differ.  PBFT commit votes are
now Ed25519-signed whenever the validator-key directory is registered,
so stored certificates are cryptographically checkable, and forged
certificates that would pass the legacy name-set check are rejected.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import BlockchainNetwork, LocalChain
from repro.chain.consensus.pbft import PBFTEngine, _vote_message
from repro.crypto import KeyPair, ed25519
from repro.crypto.batch import batch_verification, verify_many
from repro.obs import MetricsRegistry
from repro.simnet import FixedLatency
from tests.conftest import CounterContract


@pytest.fixture(autouse=True)
def clean_crypto_state():
    ed25519.verify_cache_clear()
    ed25519.batch_stats_clear()
    yield
    ed25519.verify_cache_clear()
    ed25519.batch_stats_clear()


def _run_network(n_txs: int = 3, consensus: str = "pbft", seed: int = 21):
    network = BlockchainNetwork(
        n_peers=4, consensus=consensus, block_interval=0.5,
        latency=FixedLatency(0.02), seed=seed, view_timeout=5.0,
    )
    network.install_contract(CounterContract)
    client = network.client()
    receipts = []
    for _ in range(n_txs):
        receipts.append(client.invoke("counter", "increment", {"amount": 1}))
    network.run_for(3.0)
    network.stop()
    return network, receipts


def test_flag_off_and_on_produce_identical_chains():
    with batch_verification(False):
        off_net, off_receipts = _run_network()
    off_hashes = [off_net.peers[0].ledger.block(h).block_hash
                  for h in range(off_net.peers[0].ledger.height + 1)]
    off_digest = off_net.peers[0].state.state_digest()

    ed25519.verify_cache_clear()
    with batch_verification(True):
        on_net, on_receipts = _run_network()
    on_hashes = [on_net.peers[0].ledger.block(h).block_hash
                 for h in range(on_net.peers[0].ledger.height + 1)]

    assert off_hashes == on_hashes
    assert on_net.peers[0].state.state_digest() == off_digest
    assert [r.success for r in off_receipts] == [r.success for r in on_receipts]
    on_net.assert_convergence()


def test_batch_mode_populates_phase_and_counters():
    with batch_verification(True):
        network, receipts = _run_network(n_txs=2, consensus="poa")
    # Receipts may legitimately carry MVCC conflicts (hot counter key);
    # what matters here is that blocks committed through the batch path.
    assert all(r.block_height is not None for r in receipts)
    merged = network.obs.merged_histogram("phase.verify_batch")
    assert merged.count > 0
    assert network.obs.total("crypto.batch_calls") > 0
    assert network.obs.total("crypto.batch_items") >= network.obs.total("crypto.batch_calls")
    assert network.obs.total("crypto.batch_bisections") == 0  # honest run


def test_localchain_flag_equivalence():
    def run():
        chain = LocalChain(seed=9)
        chain.install_contract(CounterContract())
        account = chain.new_account()
        for _ in range(3):
            chain.invoke(account, "counter", "increment")
        return chain.state.state_digest(), chain.ledger.height

    with batch_verification(False):
        off = run()
    with batch_verification(True):
        on = run()
    assert off == on


def test_verify_many_modes_agree_and_label():
    keypair = KeyPair.generate(random.Random(3))
    items = []
    for i in range(4):
        msg = f"m{i}".encode()
        items.append((keypair.public_key, msg, keypair.sign(msg)))
    items.append((keypair.public_key, b"forged", bytes(64)))
    registry = MetricsRegistry()
    with batch_verification(True):
        batched = verify_many(items, registry=registry, peer="p0")
    ed25519.verify_cache_clear()
    with batch_verification(False):
        sequential = verify_many(items, registry=registry, peer="p0")
    assert batched == sequential == [True, True, True, True, False]
    modes = {h.labels["mode"] for h in registry.histograms("phase.verify_batch")}
    assert modes == {"batch", "sequential"}


# -- signed PBFT certificates ------------------------------------------------

def test_pbft_records_signed_certificates():
    network, receipts = _run_network()
    assert all(r.success for r in receipts)
    committed = max(p.ledger.height for p in network.peers)
    assert committed > 0
    peer = max(network.peers, key=lambda p: p.ledger.height)
    engine = peer.engine
    for height in range(1, peer.ledger.height + 1):
        digest, certificate = engine.commit_certificates[height]
        signatures = engine.commit_signatures.get(height, {})
        # Every certificate signer with a registered key carries a
        # verifiable vote signature.
        assert set(signatures) <= set(certificate)
        assert len(signatures) >= engine.quorum
        for signer, sig_hex in signatures.items():
            key = engine.validator_keys[signer]
            assert ed25519.verify(
                key, _vote_message(signer, height, digest), bytes.fromhex(sig_hex)
            )


def test_pbft_sync_proof_round_trip():
    network, _ = _run_network()
    source = max(network.peers, key=lambda p: p.ledger.height)
    other = next(p for p in network.peers if p is not source)
    for height in range(1, source.ledger.height + 1):
        proof = source.engine.sync_proof(height)
        assert isinstance(proof, dict) and proof["signatures"]
        block = source.ledger.block(height)
        assert other.engine.verify_synced_block(block, proof)


def test_pbft_forged_certificate_rejected():
    """A name-set that would satisfy the legacy check is worthless
    without valid vote signatures once keys are registered."""
    network, _ = _run_network()
    source = max(network.peers, key=lambda p: p.ledger.height)
    verifier = next(p for p in network.peers if p is not source).engine
    block = source.ledger.block(1)
    validators = list(verifier.validators)
    # Bare name list: every signer has a registered key but no signature.
    assert not verifier.verify_synced_block(block, validators)
    # Dict proof with garbage signatures.
    forged = {
        "signers": validators,
        "signatures": {v: (b"\x00" * 64).hex() for v in validators},
    }
    assert not verifier.verify_synced_block(block, forged)
    # Valid signatures for a DIFFERENT block don't transfer.
    real = source.engine.sync_proof(1)
    if source.ledger.height >= 2:
        other_block = source.ledger.block(2)
        assert not verifier.verify_synced_block(other_block, real)
    # The genuine proof still verifies.
    assert verifier.verify_synced_block(block, real)


def test_pbft_keyless_engine_keeps_legacy_semantics():
    """Standalone engines (no key directory) behave exactly as the seed:
    name-set certificates verify, votes need no signatures."""
    engine = PBFTEngine(["v0", "v1", "v2", "v3"])
    from repro.chain.block import Block

    block = Block.build(1, "genesis", 0.0, "v0", [])
    assert engine.verify_synced_block(block, ["v0", "v1", "v2"])
    assert not engine.verify_synced_block(block, ["v0", "v1"])
    assert not engine.verify_synced_block(block, ["v0", "ghost-1", "ghost-2"])
    assert engine.verify_synced_block(
        block, {"signers": ["v0", "v1", "v2"], "signatures": {}}
    )


def test_pbft_bad_vote_signature_rejected():
    network, _ = _run_network(n_txs=1)
    peer = network.peers[0]
    engine = peer.engine
    before = engine.votes_rejected_bad_signature
    height = peer.ledger.height + 1
    # A vote claiming to be from peer-1 (whose key is registered) with a
    # wrong signature must be dropped, not counted toward quorum.
    engine._on_commit(engine.view, height, "some-digest", "peer-1", b"\x00" * 64)
    assert engine.votes_rejected_bad_signature == before + 1
    assert network.obs.total("pbft.votes_rejected_bad_signature") >= 1
    # And an unsigned vote from a registered validator is equally dropped.
    engine._on_commit(engine.view, height, "some-digest", "peer-1", None)
    assert engine.votes_rejected_bad_signature == before + 2
