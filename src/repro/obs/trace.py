"""Sim-time-aware spans for the transaction lifecycle.

A :class:`Span` measures one phase of work on the *simulated* clock —
the clock the scalability claims are about — and additionally carries a
wall-clock duration attribute for phases that are synchronous in sim
time (endorsement is a zero-sim-time RPC but real CPU work).

Spans are explicitly started and finished rather than scoped to a
``with`` block because the interesting lifecycles cross event-loop
callbacks: a sync fetch starts when the request is sent and finishes
when the response (or timeout) arrives several simulated seconds later.
A context-manager form is provided for the synchronous phases.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "Tracer"]

#: Finished spans kept in memory per tracer; the oldest are evicted
#: (and counted) beyond this, so long chaos runs cannot OOM the tracer.
DEFAULT_MAX_SPANS = 20_000


class Span:
    """One timed phase: name, sim-time window, free-form attributes."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs", "_wall_start")

    def __init__(self, name: str, span_id: int, start: float,
                 parent_id: int | None = None, attrs: dict[str, Any] | None = None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, Any] = dict(attrs or {})
        self._wall_start = time.perf_counter()

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Sim-time duration (0.0 while unfinished)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def as_record(self) -> dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Produces and collects :class:`Span` objects against one clock.

    ``clock`` is any zero-arg callable returning the current simulated
    time (typically ``lambda: sim.now``).  When a *registry* is given,
    every finished span also feeds a ``span`` histogram labelled by span
    name, so percentiles are available without replaying the timeline.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        registry: "MetricsRegistry | None" = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        self.clock = clock
        self.registry = registry
        self.max_spans = max_spans
        self.finished: list[Span] = []
        self.dropped = 0
        self._ids = itertools.count(1)
        self._open = 0

    # -- span lifecycle ----------------------------------------------------

    def start(self, name: str, parent: Span | None = None, **attrs: Any) -> Span:
        span = Span(
            name,
            span_id=next(self._ids),
            start=self.clock(),
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._open += 1
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Close *span* at the current sim time and record it."""
        if span.finished:
            return span
        span.end = self.clock()
        span.attrs.update(attrs)
        span.attrs.setdefault("wall_ms", (time.perf_counter() - span._wall_start) * 1e3)
        self._open = max(0, self._open - 1)
        self.finished.append(span)
        if len(self.finished) > self.max_spans:
            overflow = len(self.finished) - self.max_spans
            del self.finished[:overflow]
            self.dropped += overflow
        if self.registry is not None:
            self.registry.histogram("span", phase=span.name).observe(span.duration)
            self.registry.counter("spans_finished", phase=span.name).inc()
        return span

    @contextmanager
    def trace(self, name: str, parent: Span | None = None, **attrs: Any) -> Iterator[Span]:
        """Scope a span over a synchronous block (endorse, commit apply)."""
        span = self.start(name, parent=parent, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    # -- read side ---------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        if name is None:
            return list(self.finished)
        return [s for s in self.finished if s.name == name]

    def records(self) -> list[dict[str, Any]]:
        return [span.as_record() for span in self.finished]
