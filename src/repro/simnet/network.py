"""Simulated message-passing network connecting protocol nodes.

A :class:`Network` registers :class:`NetworkNode` subclasses (blockchain
peers live in :mod:`repro.chain.peer`), and delivers messages through the
shared :class:`~repro.simnet.events.Simulator` with delays drawn from a
:class:`~repro.simnet.latency.LatencyModel`.  Partitions, message drops,
and crashed nodes are all modelled at delivery time, which is where real
networks lose messages too.
"""

from __future__ import annotations

import dataclasses
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError
from repro.obs import MetricsRegistry, ObsView, metric_attr
from repro.simnet.events import Simulator
from repro.simnet.latency import FixedLatency, LatencyModel

__all__ = ["Message", "NetworkNode", "Network", "estimate_payload_size"]

#: Fixed per-message framing overhead (addresses, kind, timestamps)
#: charged on top of the payload estimate.
_WIRE_OVERHEAD = 64
#: Traversal cap for the payload-size estimator: pathological payloads
#: (deep graphs, huge batches) are charged a floor instead of stalling
#: the hot transmit path.
_SIZE_VISIT_CAP = 20_000


def estimate_payload_size(payload: Any) -> int:
    """Rough wire size of *payload* in bytes.

    Walks dicts/sequences/dataclasses iteratively, charging scalar
    leaves their natural encoded size.  The walk is capped at
    ``_SIZE_VISIT_CAP`` nodes, so the estimate is a lower bound for
    enormous payloads — good enough for the bandwidth numbers the
    scalability benchmarks report, and cheap enough for ``transmit``.
    """
    total = 0
    stack = [payload]
    visited = 0
    while stack and visited < _SIZE_VISIT_CAP:
        obj = stack.pop()
        visited += 1
        if obj is None or isinstance(obj, bool):
            total += 1
        elif isinstance(obj, (int, float)):
            total += 8
        elif isinstance(obj, str):
            total += len(obj)
        elif isinstance(obj, (bytes, bytearray)):
            total += len(obj)
        elif isinstance(obj, dict):
            for key, value in obj.items():
                stack.append(key)
                stack.append(value)
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif dataclasses.is_dataclass(obj):
            stack.extend(getattr(obj, f.name) for f in dataclasses.fields(obj))
        elif hasattr(obj, "__dict__"):
            stack.extend(vars(obj).values())
        else:
            total += 8
    return total


@dataclass(frozen=True)
class Message:
    """An application message in flight between two nodes."""

    src: str
    dst: str
    kind: str
    payload: Any
    sent_at: float


class NetworkNode(ABC):
    """Base class for anything addressable on the simulated network."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.network: "Network | None" = None
        self.crashed = False

    @property
    def sim(self) -> Simulator:
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached to a network")
        return self.network.sim

    @abstractmethod
    def on_message(self, message: Message) -> None:
        """Handle a delivered message."""

    def send(self, dst: str, kind: str, payload: Any) -> None:
        """Send a message to one peer."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached to a network")
        self.network.transmit(self.node_id, dst, kind, payload)

    def broadcast(self, kind: str, payload: Any, include_self: bool = False) -> None:
        """Send a message to every node on the network.

        The payload is sized once for the whole fan-out and the
        destination list is the network's cached id tuple — at 10k
        peers, neither cost scales with the peer count per message.
        """
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached to a network")
        size = estimate_payload_size(payload)
        for dst in self.network.all_node_ids():
            if include_self or dst != self.node_id:
                self.network.transmit(self.node_id, dst, kind, payload, _size=size)


class NetworkStats(ObsView):
    """Counters the scalability benchmarks read out.

    The attribute API (``stats.sent``, ``stats.delivered += 1``, …) is
    unchanged from the seed dataclass, but the values now live in a
    :class:`~repro.obs.MetricsRegistry` (the network's, when given one)
    so exports report transport counters next to chain metrics."""

    sent = metric_attr("net.sent")
    delivered = metric_attr("net.delivered")
    dropped_partition = metric_attr("net.dropped_partition")
    dropped_random = metric_attr("net.dropped_random")
    dropped_crashed = metric_attr("net.dropped_crashed")
    total_latency = metric_attr("net.total_latency")
    bytes_estimate = metric_attr("net.bytes_estimate")

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0


class Network:
    """The message fabric: nodes, latency, partitions, and drops."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        seed: int = 0,
        obs: MetricsRegistry | None = None,
    ):
        if not 0 <= drop_probability < 1:
            raise SimulationError("drop_probability must be in [0, 1)")
        self.sim = sim
        self.latency = latency or FixedLatency()
        self.drop_probability = drop_probability
        self.rng = random.Random(seed)
        self.stats = NetworkStats(registry=obs)
        self._nodes: dict[str, NetworkNode] = {}
        self._partition: list[frozenset[str]] | None = None
        self._node_id_cache: tuple[str, ...] = ()

    def add_node(self, node: NetworkNode) -> None:
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self._nodes[node.node_id] = node
        self._node_id_cache = tuple(self._nodes)

    def node(self, node_id: str) -> NetworkNode:
        return self._nodes[node_id]

    def node_ids(self) -> list[str]:
        return list(self._node_id_cache)

    def all_node_ids(self) -> tuple[str, ...]:
        """Every node id, as the cached tuple broadcast iterates —
        rebuilt only when the membership changes, never per call."""
        return self._node_id_cache

    def __len__(self) -> int:
        return len(self._nodes)

    # -- fault injection ------------------------------------------------

    def partition(self, *groups: set[str]) -> None:
        """Split the network: messages only flow within a group.

        Nodes not named in any group form an implicit final group.
        Groups must be disjoint — with overlapping groups, side
        membership would be resolved by whichever group happens to be
        checked first, making ``_same_side`` asymmetric (a→b deliverable
        while b→a drops).
        """
        named: set[str] = set()
        for group in groups:
            overlap = named & set(group)
            if overlap:
                raise SimulationError(
                    f"partition groups overlap on {sorted(overlap)}"
                )
            named |= set(group)
        rest = frozenset(set(self._nodes) - named)
        self._partition = [frozenset(g) for g in groups]
        if rest:
            self._partition.append(rest)

    def heal(self) -> None:
        """Remove any partition."""
        self._partition = None

    def _same_side(self, a: str, b: str) -> bool:
        if self._partition is None:
            return True
        for group in self._partition:
            if a in group:
                return b in group
        return False  # unreachable: every node is in some group

    # -- transmission ---------------------------------------------------

    def transmit(
        self, src: str, dst: str, kind: str, payload: Any, _size: int | None = None
    ) -> None:
        """Queue a message for delivery (or silently drop it).

        ``_size`` lets :meth:`NetworkNode.broadcast` estimate a fanned-out
        payload once instead of once per destination.  Bytes are charged
        at send time (dropped messages still consumed sender bandwidth),
        but the partition/drop early-outs come first, so a message that
        dies on the wire never pays for latency sampling, a
        :class:`Message` allocation, or a scheduler entry — with a
        precomputed ``_size`` the drop path is pure counter updates.
        """
        if dst not in self._nodes:
            raise SimulationError(f"unknown destination node {dst!r}")
        self.stats.sent += 1
        if not self._same_side(src, dst):
            if _size is None:
                _size = estimate_payload_size(payload)
            self.stats.bytes_estimate += _WIRE_OVERHEAD + len(kind) + _size
            self.stats.dropped_partition += 1
            return
        if self.drop_probability and self.rng.random() < self.drop_probability:
            if _size is None:
                _size = estimate_payload_size(payload)
            self.stats.bytes_estimate += _WIRE_OVERHEAD + len(kind) + _size
            self.stats.dropped_random += 1
            return
        if _size is None:
            _size = estimate_payload_size(payload)
        self.stats.bytes_estimate += _WIRE_OVERHEAD + len(kind) + _size
        delay = self.latency.sample(src, dst, self.rng)
        message = Message(src=src, dst=dst, kind=kind, payload=payload, sent_at=self.sim.now)
        self.sim.schedule(
            delay, self._deliver, label=f"{kind}:{src}->{dst}", args=(message,)
        )

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or node.crashed:
            self.stats.dropped_crashed += 1
            return
        self.stats.delivered += 1
        self.stats.total_latency += self.sim.now - message.sent_at
        node.on_message(message)
