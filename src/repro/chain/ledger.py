"""The append-only ledger: the chain of blocks plus query indexes.

Beyond storage, the ledger is the platform's *audit substrate*: the
supply-chain graph (§VI), expert mining, and accountability experiments
all reconstruct history by scanning committed transactions and events,
so the ledger keeps secondary indexes by transaction id, sender, and
contract.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Iterator

from repro.chain.block import Block, make_genesis_block
from repro.chain.transaction import Transaction
from repro.errors import InvalidBlockError

__all__ = ["Ledger", "CommittedTx"]


@dataclass(frozen=True)
class CommittedTx:
    """A transaction in its final resting place, with commit verdict."""

    transaction: Transaction
    block_height: int
    tx_index: int
    valid: bool  # False => failed MVCC validation, recorded but not applied


class Ledger:
    """One peer's copy of the chain."""

    def __init__(self, genesis: Block | None = None):
        self._blocks: list[Block] = [genesis or make_genesis_block()]
        self._tx_locator: dict[str, tuple[int, int]] = {}
        self._validity: dict[str, bool] = {}
        self._by_sender: dict[str, list[str]] = defaultdict(list)
        self._by_contract: dict[str, list[str]] = defaultdict(list)

    # -- growth ------------------------------------------------------------

    def append(self, block: Block, validity: list[bool]) -> None:
        """Append a block whose per-tx validity verdicts are *validity*."""
        head = self.head
        if block.height != head.height + 1:
            raise InvalidBlockError(
                f"block height {block.height} does not extend head {head.height}"
            )
        if block.prev_hash != head.block_hash:
            raise InvalidBlockError(f"block {block.height} prev_hash mismatch")
        block.verify_structure()
        if len(validity) != len(block.transactions):
            raise InvalidBlockError("validity vector length mismatch")
        self._blocks.append(block)
        for index, tx in enumerate(block.transactions):
            self._tx_locator[tx.tx_id] = (block.height, index)
            self._validity[tx.tx_id] = validity[index]
            self._by_sender[tx.sender].append(tx.tx_id)
            self._by_contract[tx.contract].append(tx.tx_id)

    # -- access ------------------------------------------------------------

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    @property
    def height(self) -> int:
        return self.head.height

    def block(self, height: int) -> Block:
        return self._blocks[height]

    def blocks(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __len__(self) -> int:
        """Number of blocks, including genesis."""
        return len(self._blocks)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._tx_locator

    def get_transaction(self, tx_id: str) -> CommittedTx | None:
        locator = self._tx_locator.get(tx_id)
        if locator is None:
            return None
        height, index = locator
        return CommittedTx(
            transaction=self._blocks[height].transactions[index],
            block_height=height,
            tx_index=index,
            valid=self._validity[tx_id],
        )

    def transactions(self, valid_only: bool = True) -> Iterator[CommittedTx]:
        """All committed transactions, in chain order."""
        for block in self._blocks:
            for index, tx in enumerate(block.transactions):
                valid = self._validity[tx.tx_id]
                if valid or not valid_only:
                    yield CommittedTx(tx, block.height, index, valid)

    def transactions_by_sender(self, sender: str) -> list[CommittedTx]:
        found = [self.get_transaction(tx_id) for tx_id in self._by_sender.get(sender, [])]
        return [c for c in found if c is not None]

    def transactions_by_contract(self, contract: str) -> list[CommittedTx]:
        found = [self.get_transaction(tx_id) for tx_id in self._by_contract.get(contract, [])]
        return [c for c in found if c is not None]

    def events(self, contract: str | None = None, kind: str | None = None) -> Iterator[dict[str, Any]]:
        """All events emitted by valid transactions, optionally filtered.

        Each yielded event dict is augmented with ``_tx_id``, ``_sender``
        and ``_height`` so consumers can attribute it.
        """
        for committed in self.transactions(valid_only=True):
            tx = committed.transaction
            if contract is not None and tx.contract != contract:
                continue
            for event in tx.events:
                if kind is not None and event.get("kind") != kind:
                    continue
                enriched = dict(event)
                enriched["_tx_id"] = tx.tx_id
                enriched["_sender"] = tx.sender
                enriched["_height"] = committed.block_height
                yield enriched

    def total_transactions(self) -> int:
        return len(self._tx_locator)

    def verify_chain(self) -> bool:
        """Full-chain audit: hashes link and every block is internally
        consistent.  Returns True on success, raises on tampering."""
        for prev, current in zip(self._blocks, self._blocks[1:]):
            current.verify_structure()
            if current.prev_hash != prev.block_hash:
                raise InvalidBlockError(f"chain broken at height {current.height}")
        return True

    def replay_state(self):
        """Rebuild the world state by replaying valid write sets in order.

        This is how a light node bootstraps (or how an auditor checks a
        peer): the committed chain fully determines the state, so the
        replayed :class:`~repro.chain.state.WorldState` must produce the
        same ``state_digest()`` as any honest peer at this height.
        """
        from repro.chain.state import WorldState

        state = WorldState()
        for committed in self.transactions(valid_only=True):
            state.apply_write_set(committed.transaction.write_set)
        return state
