PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos bench recovery

# Tier-1: fast default suite (chaos-marked sweeps excluded via addopts).
test:
	$(PYTHON) -m pytest -x -q

# Extended seeded chaos/invariant-audit sweeps (slow, opt-in).
chaos:
	$(PYTHON) -m pytest -m chaos

bench:
	$(PYTHON) -m pytest benchmarks -q

# Crash-recovery: deep catch-up tests + the recovery benchmark
# (writes benchmarks/latest_recovery.json).
recovery:
	$(PYTHON) -m pytest tests/chain/test_sync_recovery.py benchmarks/bench_recovery.py -q
