"""LocalChain: the synchronous single-node pipeline."""

import pytest

from repro.chain import LocalChain
from repro.errors import ContractError


@pytest.fixture
def chain(counter_contract_cls):
    c = LocalChain(seed=3)
    c.install_contract(counter_contract_cls())
    return c


def test_invoke_commits_one_block(chain):
    alice = chain.new_account()
    receipt = chain.invoke(alice, "counter", "increment", {"amount": 4})
    assert receipt.success and receipt.return_value == 4
    assert chain.ledger.height == 1
    assert chain.query("counter", "read") == 4


def test_sequential_invokes_accumulate(chain):
    alice = chain.new_account()
    for expected in (1, 2, 3):
        receipt = chain.invoke(alice, "counter", "increment")
        assert receipt.return_value == expected
    assert chain.ledger.height == 3


def test_contract_abort_raises_and_commits_nothing(chain):
    alice = chain.new_account()
    with pytest.raises(ContractError, match="deliberate"):
        chain.invoke(alice, "counter", "fail")
    assert chain.ledger.height == 0
    assert chain.query("counter", "read") == 0


def test_query_does_not_commit(chain):
    chain.query("counter", "read")
    assert chain.ledger.height == 0


def test_events_reach_ledger(chain):
    alice = chain.new_account()
    chain.invoke(alice, "counter", "increment", {"amount": 7})
    events = list(chain.ledger.events(contract="counter", kind="incremented"))
    assert len(events) == 1
    assert events[0]["amount"] == 7
    assert events[0]["_sender"] == alice.address


def test_clock_advance(chain):
    assert chain.now == 0.0
    chain.advance_time(2.5)
    assert chain.now == 2.5
    with pytest.raises(ValueError):
        chain.advance_time(-1)


def test_ledger_audits_clean(chain):
    alice = chain.new_account()
    for _ in range(5):
        chain.invoke(alice, "counter", "increment")
    assert chain.ledger.verify_chain()


def test_deterministic_accounts():
    a = LocalChain(seed=9).new_account()
    b = LocalChain(seed=9).new_account()
    assert a.address == b.address


def test_sharded_executor_attached():
    chain = LocalChain(seed=1, n_shards=4)
    from tests.conftest import CounterContract

    chain.install_contract(CounterContract())
    alice = chain.new_account()
    chain.invoke(alice, "counter", "increment")
    assert chain.sharded_executor is not None
    assert chain.sharded_executor.blocks_planned == 1
