"""Chaos/invariant-audit sweep: violations found and recovery cost.

Runs the seeded chaos harness (crash windows, partitions, latency
spikes, rogue vote-flooders) against a 4-validator PBFT network with
the ``InvariantAuditor`` watching every commit, then reports per seed:

- invariant violations by class (agreement / certificate / durability /
  convergence) — all must be zero with the membership fix in place,
- forged votes rejected by the membership check (proof the rogue
  traffic actually reached the quorum logic and was turned away),
- recovery latency: time from each injected fault to the next honest
  commit, i.e. how quickly consensus resumes making progress.
"""

from __future__ import annotations

import random
import statistics

from benchmarks.conftest import emit
from repro.chain import BlockchainNetwork, InvariantAuditor, recovery_latencies
from repro.simnet import ChaosSchedule, UniformLatency

SEEDS = range(10)
DURATION = 30.0
N_TXS = 16


def _run(seed: int):
    from tests.conftest import CounterContract

    rng = random.Random(seed)
    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=UniformLatency(0.01, 0.08), seed=seed,
        view_timeout=4.0,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network, strict=False)  # collect, don't raise
    chaos = ChaosSchedule(network.sim, network.net, seed=seed)
    chaos.plan(DURATION, validators=[p.node_id for p in network.peers])
    client = network.client()
    for _ in range(N_TXS):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.run_for(rng.uniform(0.8, 2.0))
    network.run_for(max(DURATION + 45.0 - network.sim.now, 1.0))
    auditor.final_check()
    network.stop()
    rejected = sum(
        getattr(p.engine, "votes_rejected_nonvalidator", 0) for p in network.peers
    )
    recoveries = [
        latency for _, latency in recovery_latencies(network, chaos.log)
        if latency is not None
    ]
    height = max(p.ledger.height for p in network.peers)
    return seed, len(auditor.violations), rejected, len(chaos.log), height, recoveries


def _sweep():
    return [_run(seed) for seed in SEEDS]


def test_chaos_audit(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [f"{'seed':>4} {'violations':>10} {'votes-rejected':>14} "
            f"{'faults':>6} {'height':>6} {'recovery p50(s)':>15}"]
    all_recoveries: list[float] = []
    total_violations = 0
    for seed, violations, rejected, faults, height, recoveries in results:
        all_recoveries.extend(recoveries)
        total_violations += violations
        p50 = f"{statistics.median(recoveries):.2f}" if recoveries else "-"
        rows.append(f"{seed:>4} {violations:>10} {rejected:>14} "
                    f"{faults:>6} {height:>6} {p50:>15}")
    if all_recoveries:
        rows.append(
            f"recovery latency over {len(all_recoveries)} faults: "
            f"p50={statistics.median(all_recoveries):.2f}s "
            f"max={max(all_recoveries):.2f}s"
        )
    rows.append("shape: zero invariant violations on every seed; rejected vote "
                "counts show the rogue traffic was real; recovery stays bounded")
    emit(benchmark, "Chaos audit — invariants under seeded fault storms", rows)
    assert total_violations == 0
    # The rogue scenario fired somewhere in the sweep and was rebuffed.
    assert any(rejected > 0 for _, _, rejected, _, _, _ in results)
    # Every run made progress despite the fault storm.
    assert all(height > 0 for _, _, _, _, height, _ in results)
