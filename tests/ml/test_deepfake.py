"""Simulated multimedia tamper detection."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import DeepfakeDetector, MediaFingerprint, capture_signal, tamper_signal


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def signal(rng):
    return capture_signal(rng, length=2048)


@pytest.fixture
def fingerprint(signal):
    return MediaFingerprint.of(signal)


def test_authentic_signal_scores_zero(fingerprint, signal):
    assert DeepfakeDetector().tamper_score(fingerprint, signal) == 0.0


def test_honest_reencode_below_threshold(fingerprint, signal, rng):
    noisy = signal + rng.normal(0, 0.01, len(signal))
    detector = DeepfakeDetector()
    assert not detector.is_tampered(fingerprint, noisy)


def test_tampered_signal_detected(fingerprint, signal, rng):
    tampered, mask = tamper_signal(signal, rng, n_segments=3)
    detector = DeepfakeDetector()
    assert mask.any()
    assert detector.is_tampered(fingerprint, tampered)
    assert detector.tamper_score(fingerprint, tampered) > 0.05


def test_score_scales_with_tampering(fingerprint, signal, rng):
    light, _ = tamper_signal(signal, rng, n_segments=1, segment_length=64)
    heavy, _ = tamper_signal(signal, rng, n_segments=8, segment_length=128)
    detector = DeepfakeDetector()
    assert detector.tamper_score(fingerprint, heavy) > detector.tamper_score(fingerprint, light)


def test_truncation_penalized(fingerprint, signal):
    truncated = signal[: len(signal) // 2]
    assert DeepfakeDetector().tamper_score(fingerprint, truncated) >= 0.5


def test_tamper_mask_matches_strength(signal, rng):
    tampered, mask = tamper_signal(signal, rng, n_segments=2, segment_length=100)
    changed = np.where(signal != tampered)[0]
    assert set(changed) <= set(np.where(mask)[0])


def test_fingerprint_block_size_validation(signal):
    with pytest.raises(MLError):
        MediaFingerprint.of(signal, block_size=1)


def test_short_signal_rejected():
    with pytest.raises(MLError):
        MediaFingerprint.of(np.zeros(10), block_size=64)


def test_tamper_requires_segments(signal, rng):
    with pytest.raises(MLError):
        tamper_signal(signal, rng, n_segments=0)
