"""NetworkedChain adapter semantics and world-state digests."""

import pytest

from repro.chain import BlockchainNetwork, LocalChain, NetworkedChain
from repro.chain.state import WorldState
from repro.errors import ContractError
from repro.simnet import FixedLatency


@pytest.fixture
def chain(counter_contract_cls):
    network = BlockchainNetwork(n_peers=4, consensus="poa", block_interval=0.2,
                                latency=FixedLatency(0.01), seed=31)
    adapter = NetworkedChain(network)
    adapter.install_contract(counter_contract_cls())
    return adapter


def test_invoke_commits_and_returns_receipt(chain):
    account = chain.new_account()
    receipt = chain.invoke(account, "counter", "increment", {"amount": 2})
    assert receipt.success and receipt.return_value == 2
    assert chain.query("counter", "read") == 2


def test_sequential_invokes_no_mvcc_churn(chain):
    """The commit barrier makes back-to-back dependent txs just work."""
    account = chain.new_account()
    for expected in (1, 2, 3, 4):
        receipt = chain.invoke(account, "counter", "increment")
        assert receipt.return_value == expected
    assert chain.query("counter", "read") == 4


def test_contract_abort_raises(chain):
    account = chain.new_account()
    with pytest.raises(ContractError, match="deliberate"):
        chain.invoke(account, "counter", "fail")


def test_ledger_property_tracks_freshest_peer(chain):
    account = chain.new_account()
    chain.invoke(account, "counter", "increment")
    assert chain.ledger.height >= 1
    assert chain.ledger.verify_chain()


def test_advance_time(chain):
    before = chain.now
    chain.advance_time(3.0)
    assert chain.now == pytest.approx(before + 3.0)
    with pytest.raises(ValueError):
        chain.advance_time(-1)


def test_interface_parity_with_localchain(counter_contract_cls):
    """The same client code produces the same ledger-visible outcome on
    both backends."""
    local = LocalChain(seed=5)
    local.install_contract(counter_contract_cls())
    account = local.new_account()
    local_value = local.invoke(account, "counter", "increment", {"amount": 7}).return_value

    network = BlockchainNetwork(n_peers=4, consensus="poa", block_interval=0.2, seed=5)
    adapter = NetworkedChain(network)
    adapter.install_contract(counter_contract_cls())
    networked_value = adapter.invoke(
        adapter.new_account(), "counter", "increment", {"amount": 7}
    ).return_value
    assert local_value == networked_value == 7


# -- state digests ---------------------------------------------------------------


def test_state_digest_deterministic():
    a, b = WorldState(), WorldState()
    a.apply_write_set({"x": 1, "y": [1, 2]})
    b.apply_write_set({"x": 1, "y": [1, 2]})
    assert a.state_digest() == b.state_digest()


def test_state_digest_detects_value_difference():
    a, b = WorldState(), WorldState()
    a.apply_write_set({"x": 1})
    b.apply_write_set({"x": 2})
    assert a.state_digest() != b.state_digest()


def test_state_digest_detects_version_skew():
    """Same values via different commit schedules must differ."""
    a, b = WorldState(), WorldState()
    a.apply_write_set({"x": 1})
    b.apply_write_set({"y": 0})
    b.apply_write_set({"x": 1, "y": None})
    assert a.state_digest() != b.state_digest()


def test_network_convergence_includes_state_digest(counter_contract_cls):
    network = BlockchainNetwork(n_peers=4, consensus="poa", block_interval=0.2, seed=41)
    network.install_contract(counter_contract_cls)
    client = network.client()
    client.invoke("counter", "increment", {"amount": 3})
    network.run_for(3)
    network.assert_convergence()  # block hashes AND state digests agree
    digests = {p.state.state_digest() for p in network.peers}
    assert len(digests) == 1
